"""Tests for ``repro.scenarios`` — degraders, matrix, curriculum, transfer.

The load-bearing assertion is the identity law: a scenario with no
transforms must rebuild the clean ``build_samples`` output bit-for-bit,
because the benchmark's whole gate structure (floors measured relative to
the identity row) rests on it.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import RNTrajRec, RNTrajRecConfig
from repro.roadnet import CityConfig, generate_city
from repro.scenarios import (
    CurriculumPhase,
    FixedRate,
    NoiseBurst,
    Outage,
    RateCurriculum,
    Scenario,
    VariableRate,
    build_scenario_samples,
    evaluate_matrix,
    fit_rate_curriculum,
    replay_streaming,
    standard_scenarios,
    transfer_model,
    transfer_state,
)
from repro.stream import StreamConfig
from repro.train import PiecewiseConstant, TrainConfig
from repro.trajectory import (
    DatasetConfig,
    SimulationConfig,
    TrajectorySimulator,
    build_samples,
    downsample_indices,
    make_batch,
)

TINY = RNTrajRecConfig(hidden_dim=16, num_heads=2, dropout=0.0,
                       receptive_delta=300.0, max_subgraph_nodes=24)


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))


@pytest.fixture(scope="module")
def pairs(city):
    sim = TrajectorySimulator(
        city, SimulationConfig(target_points=25, sample_interval=12, seed=2))
    return sim.simulate(8)


@pytest.fixture(scope="module")
def config():
    return DatasetConfig(keep_every=8, seed=201)


def _sample_equal(a, b) -> bool:
    if not (np.array_equal(a.raw_low.xy, b.raw_low.xy)
            and np.array_equal(a.raw_low.times, b.raw_low.times)
            and np.array_equal(a.observed_steps, b.observed_steps)
            and a.hour == b.hour and a.holiday == b.holiday
            and len(a.constraints) == len(b.constraints)):
        return False
    for ca, cb in zip(a.constraints, b.constraints):
        if (ca is None) != (cb is None):
            return False
        if ca is not None and not all(
                np.array_equal(np.asarray(x), np.asarray(y))
                for x, y in zip(ca, cb)):
            return False
    return True


# ---------------------------------------------------------------------------
# Transforms
# ---------------------------------------------------------------------------
class TestTransforms:
    def test_identity_scenario_is_bit_identical_to_build_samples(
            self, pairs, city, config):
        clean = build_samples(pairs, city, config)
        ident = build_scenario_samples(pairs, city,
                                       Scenario(name="identity"), config)
        assert len(clean) == len(ident)
        assert all(_sample_equal(a, b) for a, b in zip(clean, ident))

    def test_scenarios_are_deterministic(self, pairs, city, config):
        for scenario in standard_scenarios(config.keep_every):
            once = build_scenario_samples(pairs, city, scenario, config)
            twice = build_scenario_samples(pairs, city, scenario, config)
            assert all(_sample_equal(a, b) for a, b in zip(once, twice))

    def test_fixed_rate_matches_downsample_indices(self, pairs, city, config):
        scenario = Scenario(name="x2", transforms=(FixedRate(16),), seed=1)
        samples = build_scenario_samples(pairs, city, scenario, config)
        for (raw, _), sample in zip(pairs, samples):
            assert np.array_equal(sample.observed_steps,
                                  downsample_indices(len(raw), 16))

    def test_variable_rate_keeps_endpoints_and_stride_bounds(
            self, pairs, city, config):
        scenario = Scenario(name="vr", transforms=(VariableRate((4, 8)),),
                            seed=1)
        samples = build_scenario_samples(pairs, city, scenario, config)
        for (raw, _), sample in zip(pairs, samples):
            steps = sample.observed_steps
            assert steps[0] == 0 and steps[-1] == len(raw) - 1
            assert np.all(np.diff(steps) >= 1)
            assert np.all(np.diff(steps) <= 8)

    def test_outage_never_drops_endpoints(self, pairs, city, config):
        scenario = Scenario(name="out",
                            transforms=(Outage(gaps=3, min_span=6,
                                               max_span=12),),
                            seed=1)
        samples = build_scenario_samples(pairs, city, scenario, config)
        for (raw, _), sample in zip(pairs, samples):
            steps = sample.observed_steps
            assert steps[0] == 0 and steps[-1] == len(raw) - 1
            assert len(steps) >= 2

    def test_outage_drops_interior_fixes(self, pairs, city, config):
        clean = build_samples(pairs, city, config)
        scenario = Scenario(name="out",
                            transforms=(Outage(gaps=2, min_span=6,
                                               max_span=12),),
                            seed=1)
        degraded = build_scenario_samples(pairs, city, scenario, config)
        assert sum(s.input_length for s in degraded) < \
            sum(s.input_length for s in clean)

    def test_noise_burst_perturbs_only_a_window(self, pairs, city, config):
        clean = build_samples(pairs, city, config)
        scenario = Scenario(name="nb",
                            transforms=(NoiseBurst(std=50.0, span=8),),
                            seed=1)
        noisy = build_scenario_samples(pairs, city, scenario, config)
        for a, b in zip(clean, noisy):
            # Same observation pattern, some (not necessarily all)
            # coordinates moved; times untouched.
            assert np.array_equal(a.observed_steps, b.observed_steps)
            assert np.array_equal(a.raw_low.times, b.raw_low.times)
        assert any(not np.array_equal(a.raw_low.xy, b.raw_low.xy)
                   for a, b in zip(clean, noisy))

    def test_transforms_compose_left_to_right(self, pairs, city, config):
        compound = Scenario(name="both",
                            transforms=(Outage(gaps=1, min_span=4, max_span=8),
                                        NoiseBurst(std=40.0, span=6)),
                            seed=5)
        samples = build_scenario_samples(pairs, city, compound, config)
        assert all(s.input_length >= 2 for s in samples)

    def test_transform_validation(self):
        with pytest.raises(ValueError):
            VariableRate(choices=())
        with pytest.raises(ValueError):
            VariableRate(choices=(0,))
        with pytest.raises(ValueError):
            Outage(gaps=0)
        with pytest.raises(ValueError):
            Outage(min_span=5, max_span=4)
        with pytest.raises(ValueError):
            NoiseBurst(std=0.0)
        with pytest.raises(ValueError):
            NoiseBurst(std=10.0, span=0)

    def test_misaligned_pairs_rejected(self, pairs, city, config):
        raw, matched = pairs[0]
        bad = (raw.slice(np.arange(len(raw) - 1)), matched)
        with pytest.raises(ValueError, match="align"):
            build_scenario_samples([bad], city, Scenario(name="i"), config)

    def test_standard_scenarios_shape(self, config):
        scenarios = standard_scenarios(config.keep_every)
        assert scenarios[0].name == "identity"
        assert scenarios[0].transforms == ()
        assert len({s.name for s in scenarios}) == len(scenarios)
        assert all(0.0 <= s.accuracy_floor <= 1.0 for s in scenarios)


# ---------------------------------------------------------------------------
# PiecewiseConstant + curriculum
# ---------------------------------------------------------------------------
class TestPiecewiseConstant:
    def test_step_function_semantics(self):
        schedule = PiecewiseConstant([2, 5], ["a", "b", "c"])
        assert [schedule(e) for e in range(7)] == \
            ["a", "a", "b", "b", "b", "c", "c"]
        assert schedule.value_at(100) == "c"

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseConstant([2], ["only-one"])
        with pytest.raises(ValueError):
            PiecewiseConstant([5, 2], ["a", "b", "c"])
        with pytest.raises(ValueError):
            PiecewiseConstant([2, 2], ["a", "b", "c"])
        with pytest.raises(ValueError):
            PiecewiseConstant([0], ["a", "b"])
        with pytest.raises(ValueError):
            PiecewiseConstant([2], ["a", "b"]).value_at(-1)


class TestCurriculum:
    def test_standard_curriculum_structure(self):
        curriculum = RateCurriculum.standard(keep_every=8, total_epochs=7)
        assert curriculum.total_epochs == 7
        assert [p.rates for p in curriculum.phases] == \
            [(8,), (8, 16), (4, 8, 16)]
        # The remainder epoch lands on the hardest phase.
        assert [p.epochs for p in curriculum.phases] == [2, 2, 3]
        assert curriculum.boundaries() == [2, 4, 7]
        schedule = curriculum.schedule()
        assert schedule.value_at(0) is curriculum.phases[0]
        assert schedule.value_at(3) is curriculum.phases[1]
        assert schedule.value_at(6) is curriculum.phases[2]

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            CurriculumPhase(epochs=0, rates=(4,))
        with pytest.raises(ValueError):
            CurriculumPhase(epochs=1, rates=())
        with pytest.raises(ValueError):
            RateCurriculum(phases=())
        with pytest.raises(ValueError):
            RateCurriculum.standard(total_epochs=2)  # < 1 epoch per phase

    def test_fit_rate_curriculum_trains_through_phases(self, pairs, city,
                                                       config):
        nn.init.seed_everything(0)
        model = RNTrajRec(city, TINY)
        curriculum = RateCurriculum.standard(keep_every=8, total_epochs=3)
        result = fit_rate_curriculum(
            model, pairs, city, curriculum, dataset_config=config,
            train_config=TrainConfig(epochs=3, batch_size=4, validate=False))
        assert len(result.history) == 3
        assert [s.epoch for s in result.history] == [0, 1, 2]

    def test_epoch_mismatch_rejected(self, pairs, city, config):
        nn.init.seed_everything(0)
        model = RNTrajRec(city, TINY)
        curriculum = RateCurriculum.standard(keep_every=8, total_epochs=3)
        with pytest.raises(ValueError, match="total_epochs"):
            fit_rate_curriculum(model, pairs, city, curriculum,
                                train_config=TrainConfig(epochs=5))


# ---------------------------------------------------------------------------
# Cross-city transfer
# ---------------------------------------------------------------------------
class TestTransfer:
    def test_same_city_transfer_is_complete_and_exact(self, pairs, city,
                                                      config):
        nn.init.seed_everything(0)
        source = RNTrajRec(city, TINY).eval()
        nn.init.seed_everything(1)
        clone, report = transfer_model(source, city)
        clone.eval()
        assert report.skipped == []
        assert report.copied_fraction == 1.0
        batch = make_batch(build_samples(pairs[:2], city, config))
        a, _ = source.recover(batch)
        b, _ = clone.recover(batch)
        assert np.array_equal(a, b)

    def test_cross_city_transfer_skips_city_sized_tensors(self, city):
        other = generate_city(CityConfig(width=750, height=1000, block=250,
                                         seed=21))
        assert other.num_segments != city.num_segments
        nn.init.seed_everything(0)
        source = RNTrajRec(city, TINY)
        nn.init.seed_everything(1)
        target, report = transfer_model(source, other)
        assert 0.5 < report.copied_fraction < 1.0
        assert report.skipped  # the |V|-wide head cannot move
        # Skipped tensors kept the fresh model's own (seeded) init: a
        # fresh model built under the same seed matches them exactly.
        nn.init.seed_everything(1)
        control = RNTrajRec(other, TINY)
        control_state = control.state_dict()
        target_state = target.state_dict()
        for name in report.skipped:
            assert np.array_equal(target_state[name], control_state[name])
        for name in report.copied:
            assert np.array_equal(target_state[name],
                                  source.state_dict()[name])

    def test_transfer_state_reports_every_tensor_once(self, city):
        nn.init.seed_everything(0)
        a = RNTrajRec(city, TINY)
        b = RNTrajRec(city, TINY)
        report = transfer_state(a, b)
        assert len(report.copied) + len(report.skipped) == \
            len(b.state_dict())


# ---------------------------------------------------------------------------
# The evaluation matrix
# ---------------------------------------------------------------------------
class TestMatrix:
    def test_matrix_cells_and_streaming_exactness(self, pairs, city, config):
        nn.init.seed_everything(0)
        model = RNTrajRec(city, TINY).eval()
        scenarios = [Scenario(name="identity", accuracy_floor=0.0),
                     Scenario(name="outage",
                              transforms=(Outage(gaps=1, min_span=4,
                                                 max_span=8),),
                              seed=3)]
        cells = evaluate_matrix(model, pairs[:4], city, scenarios,
                                config=config, stream_limit=2)
        assert [c.scenario for c in cells] == ["identity", "outage"]
        for cell in cells:
            for key in ("Recall", "Precision", "F1 Score", "Accuracy",
                        "MAE", "RMSE"):
                assert key in cell.metrics
            streaming = cell.streaming
            assert streaming["sessions"] == 2
            # finalize == one-shot for every replayed degraded session
            assert streaming["exact_finalizes"] == streaming["sessions"]
            assert 0.0 <= streaming["revision_rate"] <= 1.0
        d = cells[1].as_dict()
        assert d["scenario"] == "outage" and "streaming" in d

    def test_replay_streaming_counts_appends(self, pairs, city, config):
        nn.init.seed_everything(0)
        model = RNTrajRec(city, TINY).eval()
        samples = build_samples(pairs[:2], city, config)
        stream_config = StreamConfig(interval=12.0, beta=config.beta,
                                     max_gps_error=config.max_gps_error)
        replay = replay_streaming(model, samples, stream_config, limit=2)
        assert replay.sessions == 2
        assert replay.appends == sum(s.input_length for s in samples[:2])
        assert replay.exact_finalizes == 2
