"""Cross-cutting property-based tests on core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.distance import gaussian_weight, point_along_polyline, project_point_to_polyline
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.roadnet import CityConfig, ShortestPathEngine, generate_city
from repro.trajectory import MatchedTrajectory, RawTrajectory
from repro.trajectory.resample import (
    downsample_indices,
    downsample_matched,
    downsample_raw,
)


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))


@pytest.fixture(scope="module")
def engine(city):
    return ShortestPathEngine(city)


class TestMaskedSoftmaxProperties:
    @given(st.lists(st.floats(-5, 5), min_size=3, max_size=12),
           st.integers(0, 11))
    @settings(max_examples=40, deadline=None)
    def test_hard_mask_zeroes_probability(self, logits, masked_idx):
        logits = np.asarray(logits)
        masked_idx = masked_idx % len(logits)
        mask = np.ones(len(logits))
        mask[masked_idx] = 0.0
        if mask.sum() == 0:
            return
        log_probs = F.masked_log_softmax(Tensor(logits[None, :]), mask[None, :]).data[0]
        probs = np.exp(log_probs)
        assert probs[masked_idx] < 1e-6
        assert np.isclose(probs.sum(), 1.0, atol=1e-6)

    @given(st.lists(st.floats(-5, 5), min_size=2, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_uniform_mask_equals_plain_softmax(self, logits):
        logits = np.asarray(logits)
        plain = F.log_softmax(Tensor(logits[None, :])).data
        masked = F.masked_log_softmax(Tensor(logits[None, :]), np.ones((1, len(logits)))).data
        assert np.allclose(plain, masked, atol=1e-9)


class TestRoadDistanceProperties:
    @given(st.integers(0, 10_000), st.floats(0.0, 0.999), st.floats(0.0, 0.999))
    @settings(max_examples=30, deadline=None)
    def test_position_distance_nonnegative(self, seed, ra, rb):
        rng = np.random.default_rng(seed)
        # Draw segments lazily per example from a shared module city.
        city = generate_city(CityConfig(width=750, height=750, block=250, seed=9))
        engine = ShortestPathEngine(city)
        a = int(rng.integers(0, city.num_segments))
        b = int(rng.integers(0, city.num_segments))
        d = engine.position_distance(a, ra, b, rb)
        assert d >= -1e-9 or not np.isfinite(d)

    def test_identity_distance_zero(self, city, engine):
        for sid in range(0, city.num_segments, 29):
            assert engine.position_distance(sid, 0.3, sid, 0.3) == pytest.approx(0.0)

    def test_triangle_like_monotonicity(self, city, engine):
        """Moving the target forward along one segment increases distance."""
        sid = 0
        nxt = city.out_neighbors[sid][0]
        d_near = engine.position_distance(sid, 0.0, nxt, 0.1)
        d_far = engine.position_distance(sid, 0.0, nxt, 0.9)
        assert d_far > d_near


class TestGeometryProperties:
    @given(st.floats(0, 1), st.floats(10, 500))
    @settings(max_examples=40, deadline=None)
    def test_weight_kernel_bounds(self, ratio, scale):
        distance = ratio * 1000.0
        w = gaussian_weight(distance, scale)
        assert 0.0 <= w <= 1.0

    @given(st.lists(st.tuples(st.floats(-500, 500), st.floats(-500, 500)),
                    min_size=2, max_size=6, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_projection_distance_to_own_vertices_zero(self, vertices):
        poly = np.asarray(vertices)
        # Degenerate polylines (repeated points) are rejected elsewhere.
        if np.linalg.norm(np.diff(poly, axis=0), axis=1).min() < 1e-6:
            return
        for vertex in poly:
            dist, _, _ = project_point_to_polyline(vertex, poly)
            assert dist < 1e-6

    @given(st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_point_along_monotone_in_ratio(self, r1, r2):
        poly = np.array([[0.0, 0.0], [100.0, 0.0], [100.0, 100.0]])
        lo, hi = sorted([r1, r2])
        p_lo = point_along_polyline(poly, lo)
        p_hi = point_along_polyline(poly, hi)
        # Arc-length position is monotone: project back and compare.
        _, ratio_lo, _ = project_point_to_polyline(p_lo, poly)
        _, ratio_hi, _ = project_point_to_polyline(p_hi, poly)
        assert ratio_hi >= ratio_lo - 1e-9


class TestResampleProperties:
    @given(st.integers(1, 400))
    @settings(max_examples=60, deadline=None)
    def test_keep_every_one_is_identity(self, length):
        idx = downsample_indices(length, 1)
        assert np.array_equal(idx, np.arange(length))

    @given(st.integers(1, 60), st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_indices_strictly_increasing_with_endpoints(self, keep_every, length):
        idx = downsample_indices(length, keep_every)
        assert idx[0] == 0 and idx[-1] == length - 1
        assert np.all(np.diff(idx) > 0)
        assert np.all(np.diff(idx) <= keep_every)

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_composition_equals_product_on_aligned_lengths(self, a, b, k):
        """Downsampling by a then b equals one stride of a*b whenever the
        final point lands on the coarse grid (length ≡ 1 mod a*b) — the
        forced always-keep-last endpoint is what breaks it elsewhere."""
        length = a * b * k + 1
        first = downsample_indices(length, a)
        composed = first[downsample_indices(len(first), b)]
        assert np.array_equal(composed, downsample_indices(length, a * b))

    @given(st.integers(2, 120), st.integers(1, 16), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_raw_and_matched_downsample_consistently(self, length, keep_every, seed):
        """Aligned raw/matched pairs stay aligned: both slices take the
        same indices, so times match element-for-element."""
        rng = np.random.default_rng(seed)
        times = np.cumsum(rng.uniform(0.5, 5.0, size=length)) + 10.0
        raw = RawTrajectory(rng.uniform(0, 1000, size=(length, 2)), times)
        matched = MatchedTrajectory(
            rng.integers(0, 50, size=length).astype(np.int64),
            rng.uniform(0, 1, size=length), times)
        low_raw = downsample_raw(raw, keep_every)
        low_matched = downsample_matched(matched, keep_every)
        idx = downsample_indices(length, keep_every)
        assert len(low_raw) == len(low_matched) == len(idx)
        assert np.array_equal(low_raw.times, low_matched.times)
        assert np.array_equal(low_raw.xy, raw.xy[idx])
        assert np.array_equal(low_matched.segments, matched.segments[idx])
        assert np.array_equal(low_matched.ratios, matched.ratios[idx])


class TestConstraintMaskProperties:
    @given(st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_masks_cover_noisy_fix(self, seed):
        """The constraint search radius exceeds 5σ of GPS noise, so the
        mask is essentially never empty near a fix."""
        from repro.trajectory import (DatasetConfig, SimulationConfig,
                                      TrajectorySimulator, build_samples)

        city = generate_city(CityConfig(width=750, height=750, block=250, seed=9))
        sim = TrajectorySimulator(city, SimulationConfig(target_points=9, seed=seed,
                                                         gps_noise_std=12.0))
        pair = sim.simulate_one()
        if pair is None:
            return
        samples = build_samples([pair], city, DatasetConfig(keep_every=4))
        for sample in samples:
            for step in sample.observed_steps:
                entry = sample.constraints[int(step)]
                assert entry is not None
                ids, weights = entry
                assert len(ids) >= 1
                assert np.all(weights > 0)


class TestSlotTableProperties:
    """Random admit/step/retire interleavings over the continuous-batching
    slot table: no slot leaks, no state aliasing between sequences, and
    free-list reuse never perturbs a sequence's result."""

    D, V, L = 4, 6, 5  # hidden dim, vocabulary, encoder length

    def _weights(self, rng):
        from repro.core.decoder import GreedyWeights

        normal = rng.normal
        return GreedyWeights(
            w_h=normal(size=(self.D, self.D)), w_g=normal(size=(self.D, self.D)),
            v=normal(size=self.D),
            w_z=normal(size=(3 * self.D + 1, self.D)), b_z=normal(size=self.D),
            w_r=normal(size=(3 * self.D + 1, self.D)), b_r=normal(size=self.D),
            w_c=normal(size=(3 * self.D + 1, self.D)), b_c=normal(size=self.D),
            head=normal(size=(self.D, self.V)),
            rate_w=normal(size=(2 * self.D, 1)), rate_b=normal(size=1),
            embed_table=normal(size=(self.V, self.D)),
            start=normal(size=self.D),
            num_segments=self.V, hidden_dim=self.D,
        )

    def _job(self, rng, weights, num_steps):
        from repro.core.decoder import GreedyCarry
        from repro.serve.engine import DecodeJob

        carry = GreedyCarry(
            state=rng.normal(size=(1, self.D)),
            prev_embed=rng.normal(size=(1, self.D)),
            prev_rate=rng.uniform(0, 1, size=(1, 1)),
            prev_segments=None,
        )
        return DecodeJob(
            enc=rng.normal(size=(1, self.L, self.D)), carry=carry,
            num_steps=num_steps,
            constraint=rng.uniform(0.1, 1.0, size=(1, num_steps, self.V)),
            weights=weights,
        )

    def _solo(self, job):
        """The reference: batch-of-1 stepping outside any slot table."""
        from repro.core.decoder import greedy_step
        from repro.serve.engine import copy_carry

        keys = job.weights.project_keys(job.enc)
        carry = copy_carry(job.carry)
        segments = np.zeros(job.num_steps, dtype=np.int64)
        rates = np.zeros(job.num_steps)
        for j in range(job.num_steps):
            predicted, step_rates, carry = greedy_step(
                job.weights, job.enc, keys, carry,
                job.constraint[:, j, :], None)
            segments[j] = predicted[0]
            rates[j] = step_rates[0]
        return segments, rates

    @given(st.integers(0, 10_000),
           st.integers(1, 4),
           st.lists(st.tuples(st.booleans(), st.integers(1, 6)),
                    min_size=1, max_size=24))
    @settings(max_examples=40, deadline=None)
    def test_random_interleavings_never_leak_or_alias(self, seed, capacity,
                                                      actions):
        from repro.serve.engine import ContinuousEngine

        rng = np.random.default_rng(seed)
        weights = self._weights(rng)
        engine = ContinuousEngine(capacity=capacity)
        slot_map, results = {}, {}
        jobs = []

        def check_invariants():
            table = engine.table
            if table is None:
                return
            # No leaks: active flags, free list and inflight gauge agree.
            assert table.inflight + table.free_slots == capacity
            assert int(table.active.sum()) == table.inflight
            assert sorted(table._free) == sorted(set(table._free))
            # No aliasing: every active slot's carry rows are its own.
            active = set(int(i) for i in table.active_slots())
            assert active == set(slot_map)
            for i in sorted(active):
                assert table.jobs[i] is jobs[slot_map[i]]

        for admit, steps in actions:
            if admit and engine.free_slots > 0:
                job = self._job(rng, weights, steps)
                slot = engine.admit(job)
                jobs.append(job)
                slot_map[slot] = len(jobs) - 1
            else:
                for retirement in engine.step():
                    assert retirement.error is None
                    index = slot_map.pop(retirement.slot)
                    results[index] = retirement.result
            check_invariants()

        while slot_map:  # drain what's still in flight
            for retirement in engine.step():
                assert retirement.error is None
                results[slot_map.pop(retirement.slot)] = retirement.result
            check_invariants()

        # Free-list reuse preserved every sequence's solo result bitwise.
        assert len(results) == len(jobs)
        assert engine.free_slots == capacity
        for index, job in enumerate(jobs):
            seg_solo, rate_solo = self._solo(job)
            assert np.array_equal(results[index].segments, seg_solo)
            assert np.array_equal(results[index].rates, rate_solo)
