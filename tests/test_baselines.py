"""Tests for all eight baselines: construction, training step, recovery."""

import numpy as np
import pytest

from repro.baselines import BASELINE_NAMES, LinearHMMRecovery, build_baseline
from repro.core import RNTrajRecConfig, TrainConfig, Trainer
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    DatasetConfig,
    SimulationConfig,
    TrajectorySimulator,
    build_samples,
    make_batch,
)

CFG = RNTrajRecConfig(hidden_dim=16, num_heads=2, max_subgraph_nodes=16,
                      receptive_delta=250.0, dropout=0.0)

LEARNED = [n for n in BASELINE_NAMES if n != "linear_hmm"]


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))


@pytest.fixture(scope="module")
def samples(city):
    sim = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=2))
    pairs = sim.simulate(12)
    return build_samples(pairs, city, DatasetConfig(keep_every=8))


@pytest.fixture(scope="module")
def batch(samples):
    return make_batch(samples[:4])


class TestFactory:
    def test_all_names_build(self, city):
        for name in BASELINE_NAMES:
            model = build_baseline(name, city, CFG)
            assert model is not None

    def test_unknown_name_rejected(self, city):
        with pytest.raises(ValueError):
            build_baseline("unknown", city, CFG)


class TestLinearHMM:
    def test_recover_contract(self, city, batch):
        model = LinearHMMRecovery(city)
        out = model.recover_trajectories(batch)
        assert len(out) == batch.size
        for traj, sample in zip(out, batch.samples):
            assert len(traj) == sample.target_length
        segments, ratios = model.recover(batch)
        assert segments.shape == (batch.size, batch.target_length)

    def test_no_parameters(self, city):
        assert LinearHMMRecovery(city).num_parameters() == 0

    def test_eval_train_noops(self, city):
        model = LinearHMMRecovery(city)
        assert model.eval() is model
        assert model.train() is model

    def test_anchors_match_roughly(self, city, batch):
        """At observed timestamps the recovery should be near the fix."""
        model = LinearHMMRecovery(city)
        recovered = model.recover_trajectories(batch)
        for traj, sample in zip(recovered, batch.samples):
            positions = traj.positions(city)
            for input_pos, step in enumerate(sample.observed_steps):
                err = np.linalg.norm(positions[step] - sample.raw_low.xy[input_pos])
                assert err < 250.0


@pytest.mark.parametrize("name", LEARNED)
class TestLearnedBaselines:
    def test_loss_and_gradient_step(self, name, city, batch):
        model = build_baseline(name, city, CFG)
        breakdown = model.compute_loss(batch, teacher_forcing_ratio=1.0)
        assert np.isfinite(breakdown.total.item())
        breakdown.total.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads, "no gradients computed"

    def test_recover_contract(self, name, city, batch):
        model = build_baseline(name, city, CFG)
        model.eval()
        segments, rates = model.recover(batch)
        assert segments.shape == (batch.size, batch.target_length)
        assert np.all((segments >= 0) & (segments < city.num_segments))
        assert np.all((rates >= 0) & (rates < 1))

    def test_one_epoch_training(self, name, city, samples):
        model = build_baseline(name, city, CFG)
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=8, validate=False))
        result = trainer.fit(samples)
        assert len(result.history) == 1
        assert np.isfinite(result.history[0].loss)


class TestDHTRSpecifics:
    def test_coordinate_decoder_output(self, city, batch):
        model = build_baseline("dhtr_hmm", city, CFG)
        coords = model._decode_coordinates(batch)
        assert coords.shape == (batch.size, batch.target_length, 2)

    def test_training_reduces_coordinate_loss(self, city, samples):
        model = build_baseline("dhtr_hmm", city, CFG)
        trainer = Trainer(model, TrainConfig(epochs=5, batch_size=8, learning_rate=5e-3,
                                             validate=False))
        result = trainer.fit(samples)
        assert result.history[-1].loss < result.history[0].loss


class TestParameterCounts:
    def test_models_have_distinct_capacity(self, city):
        counts = {}
        for name in ("mtrajrec", "transformer", "t3s", "gts", "neutraj", "t2vec"):
            counts[name] = build_baseline(name, city, CFG).num_parameters()
        assert all(c > 0 for c in counts.values())
        # The transformer and the GRU encoder should differ in size.
        assert counts["transformer"] != counts["mtrajrec"]
