"""Continuous-batching engine: the equivalence-first test harness.

The engine's contract is absolute: every sequence's output is
bit-identical to a solo run-to-completion ``decode_greedy`` /
``decode_greedy_from`` over the same inputs, **regardless of what else is
in flight** — co-residents, admission order, splice timing and slot reuse
must all be unobservable.  The matrix below drives batch sizes × length
mixes × arrival patterns through the raw engine, then repeats the
guarantee at the scheduler, service and streaming-join layers.

``REPRO_ENGINE_MATRIX=smoke`` trims the matrix for the CI hot-path smoke
(small batch sizes, two arrival patterns) without weakening any single
assertion.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.core import RNTrajRec, RNTrajRecConfig
from repro.core.decoder import GreedyWeights
from repro.nn.tensor import no_grad
from repro.roadnet import CityConfig, generate_city
from repro.serve import (
    ContinuousEngine,
    ContinuousScheduler,
    DecodeJob,
    EngineError,
    RecoveryRequest,
    RecoveryService,
    ServeConfig,
    SlotTable,
    run_to_completion,
)
from repro.stream import StreamConfig, StreamingRecoveryService
from repro.trajectory import (
    DatasetConfig,
    SimulationConfig,
    TrajectorySimulator,
    build_samples,
    make_batch,
)

CFG = RNTrajRecConfig(hidden_dim=16, num_heads=2, max_subgraph_nodes=24,
                      receptive_delta=300.0, dropout=0.0)
_SMOKE = os.environ.get("REPRO_ENGINE_MATRIX", "") == "smoke"

BATCH_SIZES = (1, 3) if _SMOKE else (1, 3, 8)
MIXES = ("uniform", "short_long", "straggler")
PATTERNS = (("all_at_once", "staggered") if _SMOKE
            else ("all_at_once", "staggered", "retire_then_admit"))


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1200, height=1200, block=250,
                                    minor_fraction=0.5, seed=9))


@pytest.fixture(scope="module")
def model(city):
    model = RNTrajRec(city, CFG)
    model.eval()
    return model


@pytest.fixture(scope="module")
def pools(city):
    """Sample pools by duration class — 'short' and 'long' trajectories
    decode on very different ε_ρ grids, which is what the length mixes
    permute."""
    pools = {}
    for label, points, seed in (("short", 9, 2), ("long", 29, 3)):
        sim = TrajectorySimulator(
            city, SimulationConfig(target_points=points, seed=seed))
        pools[label] = build_samples(sim.simulate(8), city,
                                     DatasetConfig(keep_every=4))
    return pools


@pytest.fixture(scope="module")
def solo(model):
    """Memoized solo baselines: the batch-of-1 run-to-completion decode."""
    cache = {}

    def baseline(sample):
        key = id(sample)
        if key not in cache:
            seg, rate = model.recover(make_batch([sample]))
            cache[key] = (seg[0], rate[0])
        return cache[key]

    return baseline


def job_for(model, sample, weights=None, checkpoint_at=-1):
    """The engine admission of one sample — exactly the ops the service's
    ``_prepare_job`` hook runs."""
    batch = make_batch([sample])
    with no_grad():
        encoded = model.encode(batch)
        return DecodeJob(
            enc=encoded.point_features.data,
            carry=model.decoder.initial_carry(encoded.trajectory_feature.data),
            num_steps=batch.target_length,
            constraint=model.decode_constraint(batch),
            weights=weights or GreedyWeights.from_decoder(model.decoder),
            reachability=model.reachability,
            checkpoint_at=checkpoint_at,
        )


@pytest.fixture(scope="module")
def jobs_for(model):
    """Memoized admission jobs: a job is immutable (admission copies the
    carry into the slot row; nothing mutates enc/constraint), so the same
    job can be admitted across matrix cells without re-encoding."""
    weights = GreedyWeights.from_decoder(model.decoder)
    cache = {}

    def build(samples):
        out = []
        for sample in samples:
            key = id(sample)
            if key not in cache:
                cache[key] = job_for(model, sample, weights=weights)
            out.append(cache[key])
        return out

    return build


def pick_mix(pools, mix, size):
    short, long_ = pools["short"], pools["long"]
    if mix == "uniform":
        chosen = [long_[i % len(long_)] for i in range(size)]
    elif mix == "short_long":
        chosen = [(short if i % 2 == 0 else long_)[i % len(short)]
                  for i in range(size)]
    else:  # straggler: one long sequence among shorts
        chosen = [short[i % len(short)] for i in range(size)]
        chosen[size // 2] = long_[0]
    return chosen


def drive(engine, jobs, admit_when):
    """Step the engine to completion, admitting job *i* only once
    ``admit_when(i, engine)`` allows; returns results in ``jobs`` order."""
    results = [None] * len(jobs)
    slot_map = {}
    next_index = 0
    while next_index < len(jobs) or slot_map:
        while (next_index < len(jobs) and engine.free_slots > 0
               and admit_when(next_index, engine)):
            slot_map[engine.admit(jobs[next_index])] = next_index
            next_index += 1
        if not slot_map:  # nothing in flight: force progress
            slot_map[engine.admit(jobs[next_index])] = next_index
            next_index += 1
        for retirement in engine.step():
            assert retirement.error is None, retirement.error
            results[slot_map.pop(retirement.slot)] = retirement.result
    return results


def run_pattern(jobs, pattern):
    if pattern == "all_at_once":
        engine = ContinuousEngine(capacity=len(jobs))
        return drive(engine, jobs, lambda i, e: True)
    if pattern == "staggered":
        # Splice job i in only after i kernel sweeps have already run —
        # every admission lands mid-flight of its predecessors.
        engine = ContinuousEngine(capacity=len(jobs))
        return drive(engine, jobs, lambda i, e: e.steps >= i)
    # retire_then_admit: a saturated 2-slot table; admissions can only
    # ride retirements, exercising free-list reuse under load.
    engine = ContinuousEngine(capacity=min(2, len(jobs)))
    return drive(engine, jobs, lambda i, e: True)


# ---------------------------------------------------------------------------
# The equivalence matrix
# ---------------------------------------------------------------------------
class TestEquivalenceMatrix:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("mix", MIXES)
    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_engine_bit_identical_to_solo_decode(self, pools, solo, jobs_for,
                                                 size, mix, pattern):
        samples = pick_mix(pools, mix, size)
        results = run_pattern(jobs_for(samples), pattern)
        for sample, result in zip(samples, results):
            seg_solo, rate_solo = solo(sample)
            assert np.array_equal(result.segments, seg_solo)
            assert np.array_equal(result.rates, rate_solo)

    def test_run_to_completion_helper_matches(self, model, pools, solo):
        samples = pick_mix(pools, "short_long", 6)
        engine = ContinuousEngine(capacity=3)  # forces splicing
        results = run_to_completion(
            engine, [job_for(model, sample) for sample in samples])
        for sample, result in zip(samples, results):
            seg_solo, rate_solo = solo(sample)
            assert np.array_equal(result.segments, seg_solo)
            assert np.array_equal(result.rates, rate_solo)
        assert engine.inflight == 0
        assert engine.free_slots == engine.capacity


# ---------------------------------------------------------------------------
# Streaming-carry joins: decode_greedy_from equivalence
# ---------------------------------------------------------------------------
class TestStreamingCarryJoins:
    def _split_inputs(self, model, sample, split):
        batch = make_batch([sample])
        with no_grad():
            encoded = model.encode(batch)
            enc = encoded.point_features.data
            constraint = model.decode_constraint(batch)
            carry0 = model.decoder.initial_carry(
                encoded.trajectory_feature.data)
            # The committed prefix: decoded locally, its carry checkpointed.
            _, _, carry = model.decoder.decode_greedy_from(
                enc, carry0, split, constraint[:, :split],
                reachability=model.reachability)
        return batch, enc, constraint, carry

    def test_suffix_job_matches_decode_greedy_from(self, model, pools):
        """A mid-sequence carry spliced into a busy engine decodes its
        suffix bit-identically to a local ``decode_greedy_from``."""
        sample = pools["long"][1]
        batch, enc, constraint, carry = self._split_inputs(model, sample, 5)
        length = batch.target_length
        with no_grad():
            seg_ref, rate_ref, carry_ref = model.decoder.decode_greedy_from(
                enc, carry, length - 5, constraint[:, 5:],
                reachability=model.reachability)

        suffix = DecodeJob(
            enc=enc, carry=carry, num_steps=length - 5,
            constraint=constraint[:, 5:],
            weights=GreedyWeights.from_decoder(model.decoder),
            reachability=model.reachability,
        )
        fresh = [job_for(model, s) for s in pools["short"][:3]]
        engine = ContinuousEngine(capacity=4)
        results = run_to_completion(engine, fresh + [suffix])
        result = results[-1]
        assert np.array_equal(result.segments, seg_ref[0])
        assert np.array_equal(result.rates, rate_ref[0])
        for field in ("state", "prev_embed", "prev_rate", "prev_segments"):
            assert np.array_equal(getattr(result.carry, field),
                                  getattr(carry_ref, field)), field

    def test_checkpoint_carry_matches_split_boundary(self, model, pools):
        """``checkpoint_at`` snapshots in-flight exactly the carry the PR 6
        two-chunk path checkpoints at the commit boundary."""
        sample = pools["long"][2]
        batch = make_batch([sample])
        length = batch.target_length
        boundary = length - 4
        with no_grad():
            encoded = model.encode(batch)
            enc = encoded.point_features.data
            constraint = model.decode_constraint(batch)
            carry0 = model.decoder.initial_carry(
                encoded.trajectory_feature.data)
            _, _, carry_ref = model.decoder.decode_greedy_from(
                enc, carry0, boundary, constraint[:, :boundary],
                reachability=model.reachability)

        job = job_for(model, sample, checkpoint_at=boundary)
        engine = ContinuousEngine(capacity=2)
        result = run_to_completion(engine, [job])[0]
        assert result.checkpoint is not None
        for field in ("state", "prev_embed", "prev_rate", "prev_segments"):
            assert np.array_equal(getattr(result.checkpoint, field),
                                  getattr(carry_ref, field)), field

    def test_checkpoint_at_zero_returns_admitted_carry(self, model, pools):
        job = job_for(model, pools["short"][0], checkpoint_at=0)
        expected = {field: np.array(getattr(job.carry, field))
                    for field in ("state", "prev_embed", "prev_rate")}
        result = run_to_completion(ContinuousEngine(capacity=1), [job])[0]
        assert result.checkpoint is not None
        assert result.checkpoint.prev_segments is None
        for field, value in expected.items():
            assert np.array_equal(getattr(result.checkpoint, field), value)


# ---------------------------------------------------------------------------
# Slot table mechanics
# ---------------------------------------------------------------------------
class TestSlotTableMechanics:
    def test_saturation_raises_and_reuse_is_lifo(self, model, pools):
        jobs = [job_for(model, s) for s in pools["short"][:3]]
        engine = ContinuousEngine(capacity=2)
        first = engine.admit(jobs[0])
        second = engine.admit(jobs[1])
        with pytest.raises(EngineError):
            engine.admit(jobs[2])
        # Retire one by stepping to completion, then the freed slot is
        # reused first (LIFO free list).
        freed = None
        while freed is None:
            for retirement in engine.step():
                freed = retirement.slot
        assert freed in (first, second)
        assert engine.admit(jobs[2]) == freed

    def test_job_validation(self, model, pools):
        engine = ContinuousEngine(capacity=1)
        job = job_for(model, pools["short"][0])
        bad_steps = DecodeJob(enc=job.enc, carry=job.carry, num_steps=0,
                              constraint=None, weights=job.weights)
        with pytest.raises(EngineError):
            engine.admit(bad_steps)
        bad_checkpoint = DecodeJob(enc=job.enc, carry=job.carry,
                                   num_steps=job.num_steps, constraint=None,
                                   weights=job.weights,
                                   checkpoint_at=job.num_steps + 1)
        with pytest.raises(EngineError):
            engine.admit(bad_checkpoint)

    def test_hidden_dim_conflict_defers_until_drain(self, model, pools):
        job = job_for(model, pools["short"][0])
        engine = ContinuousEngine(capacity=4)
        engine.admit(job)
        other = DecodeJob(enc=np.zeros((1, 4, CFG.hidden_dim * 2)),
                          carry=job.carry, num_steps=2, constraint=None,
                          weights=job.weights)
        assert engine.admit(other) is None  # deferred, not crashed
        while engine.inflight:
            engine.step()
        # Table drained: the conflicting dim now rebuilds the table.
        with pytest.raises(Exception):
            engine.admit(other)  # carry shape no longer matches enc dim
        table = SlotTable(capacity=2, hidden_dim=CFG.hidden_dim)
        assert table.free_slots == 2

    def test_retired_rows_are_scrubbed(self, model, pools):
        engine = ContinuousEngine(capacity=1)
        run_to_completion(engine, [job_for(model, pools["short"][0])])
        table = engine.table
        assert not table.active.any()
        assert np.all(table.state == 0.0)
        assert np.all(table.prev_embed == 0.0)
        assert table.jobs == [None]
        assert table.segments_out == [None]


# ---------------------------------------------------------------------------
# ContinuousScheduler: completion-order independence
# ---------------------------------------------------------------------------
class TestContinuousScheduler:
    def test_late_short_request_completes_before_earlier_long(self, model,
                                                              pools, solo):
        """The regression for the FIFO-completion assumption: futures are
        slot-keyed, so a short request admitted *after* a long one resolves
        first — with the right result on each."""
        long_sample, short_sample = pools["long"][0], pools["short"][0]
        order = []
        scheduler = ContinuousScheduler(
            prepare=lambda sample: job_for(model, sample),
            finish=lambda sample, result: (sample, result),
            max_slots=4,
        )
        try:
            futures = {
                "long": scheduler.submit(long_sample),
                "short": scheduler.submit(short_sample),
            }
            for name, future in futures.items():
                future.add_done_callback(
                    lambda _, name=name: order.append(name))
            resolved = {name: future.result(timeout=120.0)
                        for name, future in futures.items()}
        finally:
            scheduler.close()
        assert order == ["short", "long"]
        for name, sample in (("long", long_sample), ("short", short_sample)):
            got_sample, result = resolved[name]
            assert got_sample is sample
            seg_solo, rate_solo = solo(sample)
            assert np.array_equal(result.segments, seg_solo)
            assert np.array_equal(result.rates, rate_solo)

    def test_flush_close_and_pending(self, model, pools):
        scheduler = ContinuousScheduler(
            prepare=lambda sample: job_for(model, sample), max_slots=2)
        futures = [scheduler.submit(s) for s in pools["short"][:4]]
        scheduler.flush()
        assert all(f.done() for f in futures)
        assert scheduler.pending == 0
        stats = scheduler.stats()
        assert stats["admitted"] == 4 and stats["retired"] == 4
        scheduler.close()
        with pytest.raises(RuntimeError):
            scheduler.submit(pools["short"][0])

    def test_close_without_drain_fails_pending_futures(self, model, pools):
        release = threading.Event()

        def slow_prepare(sample):
            release.wait(timeout=60.0)
            return job_for(model, sample)

        scheduler = ContinuousScheduler(prepare=slow_prepare, max_slots=2)
        futures = [scheduler.submit(s) for s in pools["short"][:3]]
        time.sleep(0.05)  # let the worker block inside slow_prepare
        release.set()
        scheduler.close(drain=False)
        for future in futures:
            with pytest.raises((RuntimeError, Exception)):
                future.result(timeout=60.0)
            assert future.done()

    def test_conflicting_dim_job_defers_then_completes(self, model, city,
                                                       pools, solo):
        """Regression for the deferral retry: a hidden-dim conflict behind
        in-flight work must park the already-prepared job and re-attempt
        only the engine admission after the drain.  The broken path called
        ``set_running_or_notify_cancel`` a second time on the RUNNING
        future, which killed the worker thread and hung every request."""
        wide_model = RNTrajRec(city, RNTrajRecConfig(
            hidden_dim=8, num_heads=2, max_subgraph_nodes=24,
            receptive_delta=300.0, dropout=0.0))
        wide_model.eval()
        wide_sample = pools["short"][0]
        wide_job = job_for(wide_model, wide_sample)
        gate = threading.Event()

        def prepare(sample):
            gate.wait(timeout=60.0)
            return job_for(model, sample)

        scheduler = ContinuousScheduler(prepare=prepare, max_slots=4)
        try:
            # The gate holds the worker inside the first prepare, so all
            # three requests queue in order before any admission happens.
            first = scheduler.submit(pools["long"][0])
            wide = scheduler.submit_job(wide_job)     # conflicts in flight
            behind = scheduler.submit(pools["short"][1])
            gate.set()
            result_first = first.result(timeout=300.0)
            result_wide = wide.result(timeout=300.0)
            result_behind = behind.result(timeout=300.0)
            assert scheduler.pending == 0
            assert scheduler.stats()["admitted"] == 3
        finally:
            scheduler.close()
        for sample, result in ((pools["long"][0], result_first),
                               (pools["short"][1], result_behind)):
            seg_solo, rate_solo = solo(sample)
            assert np.array_equal(result.segments, seg_solo)
            assert np.array_equal(result.rates, rate_solo)
        seg_wide, rate_wide = wide_model.recover(make_batch([wide_sample]))
        assert np.array_equal(result_wide.segments, seg_wide[0])
        assert np.array_equal(result_wide.rates, rate_wide[0])

    def test_prepare_error_fails_only_that_future(self, model, pools):
        def prepare(sample):
            if sample is pools["short"][1]:
                raise ValueError("boom")
            return job_for(model, sample)

        scheduler = ContinuousScheduler(prepare=prepare, max_slots=4)
        try:
            good = scheduler.submit(pools["short"][0])
            bad = scheduler.submit(pools["short"][1])
            assert good.result(timeout=120.0) is not None
            with pytest.raises(ValueError):
                bad.result(timeout=120.0)
        finally:
            scheduler.close()


# ---------------------------------------------------------------------------
# Service-level equivalence: mixed-length traffic through RecoveryService
# ---------------------------------------------------------------------------
def _request(sample, request_id):
    return RecoveryRequest(xy=sample.raw_low.xy, times=sample.raw_low.times,
                           hour=sample.hour, holiday=sample.holiday,
                           request_id=request_id)


class TestServiceEquivalence:
    def test_mixed_length_responses_bit_identical_to_solo(self, model, pools,
                                                          city):
        """End to end through ``RecoveryService`` under the continuous
        scheduler: a mixed-length burst, every response bit-identical to
        the solo one-shot recover of its own request."""
        samples = pick_mix(pools, "short_long", 6)
        service = RecoveryService.from_model(
            model, ServeConfig(interval=12.0, beta=15.0, max_gps_error=100.0,
                               max_batch_size=4, cache_capacity=0))
        try:
            requests = [_request(s, f"r{i}") for i, s in enumerate(samples)]
            responses = service.recover_many(requests, timeout=300.0)
            stats = service.stats()
        finally:
            service.close()
        assert stats["scheduler"] == "continuous"
        assert stats["engine"]["admitted"] == len(samples)
        for sample, response in zip(samples, responses):
            seg, rate = model.recover(make_batch([sample]))
            assert np.array_equal(response.trajectory.segments, seg[0])
            assert np.array_equal(response.trajectory.ratios, rate[0])

    def test_microbatch_scheduler_still_selectable(self, model, pools):
        service = RecoveryService.from_model(
            model, ServeConfig(interval=12.0, beta=15.0, max_gps_error=100.0,
                               scheduler="microbatch", max_batch_size=4,
                               max_wait_ms=10.0, cache_capacity=0))
        try:
            response = service.recover(_request(pools["short"][0], "m0"),
                                       timeout=300.0)
            assert service.stats()["scheduler"] == "microbatch"
            assert service.scheduler is None
        finally:
            service.close()
        seg, rate = model.recover(make_batch([pools["short"][0]]))
        assert np.array_equal(response.trajectory.segments, seg[0])

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            ServeConfig(scheduler="magic")


# ---------------------------------------------------------------------------
# Streaming joins at the service layer
# ---------------------------------------------------------------------------
class TestStreamingJoin:
    def test_streaming_appends_identical_with_and_without_join(self, model,
                                                               pools):
        """A streaming session whose suffix decodes join a busy continuous
        scheduler streams exactly the bits a scheduler-less twin streams —
        while one-shot traffic shares the same slot table."""
        serve = RecoveryService.from_model(
            model, ServeConfig(interval=12.0, beta=15.0, max_gps_error=100.0,
                               max_batch_size=8, cache_capacity=0))
        stream_config = StreamConfig(interval=12.0, beta=15.0,
                                     max_gps_error=100.0, commit_horizon=4)
        joined = StreamingRecoveryService.from_model(
            model, stream_config, scheduler=serve.scheduler)
        local = StreamingRecoveryService.from_model(model, stream_config)
        sample = pools["long"][3]
        xy, times = sample.raw_low.xy, sample.raw_low.times
        try:
            sid_j = joined.open(hour=sample.hour)
            sid_l = local.open(hour=sample.hour)
            # Keep one-shot traffic in flight while the session appends.
            noise = [serve.submit(_request(s, f"bg{i}"))
                     for i, s in enumerate(pools["short"][:4])]
            for i in range(len(times)):
                update_j = joined.append(sid_j, xy[i], [times[i]])
                update_l = local.append(sid_l, xy[i], [times[i]])
                if update_l.trajectory is None:
                    assert update_j.trajectory is None
                    continue
                assert np.array_equal(update_j.trajectory.segments,
                                      update_l.trajectory.segments)
                assert np.array_equal(update_j.trajectory.ratios,
                                      update_l.trajectory.ratios)
                assert update_j.committed_steps == update_l.committed_steps
                assert update_j.revised_from == update_l.revised_from
            final_j = joined.finalize(sid_j)
            final_l = local.finalize(sid_l)
            for future in noise:
                future.result(timeout=300.0)
        finally:
            joined.close()
            local.close()
            serve.close()
        assert np.array_equal(final_j.trajectory.segments,
                              final_l.trajectory.segments)
        assert np.array_equal(final_j.trajectory.ratios,
                              final_l.trajectory.ratios)
