"""Cross-module integration tests: the full pipeline on small budgets."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import build_baseline
from repro.core import RNTrajRec, RNTrajRecConfig, TrainConfig, Trainer
from repro.datasets import load_dataset
from repro.eval import evaluate_model, evaluate_sr_at_k
from repro.experiments import get_engine
from repro.trajectory import iterate_batches


@pytest.fixture(scope="module")
def porto():
    return load_dataset("porto", num_trajectories=40)


CFG = RNTrajRecConfig(hidden_dim=16, num_heads=2, max_subgraph_nodes=16,
                      receptive_delta=250.0, dropout=0.0)


class TestFullPipeline:
    def test_train_eval_rntrajrec_on_porto(self, porto):
        model = RNTrajRec(porto.network, CFG)
        result = Trainer(model, TrainConfig(epochs=2, batch_size=8, learning_rate=5e-3,
                                            validate=False)).fit(porto.train)
        assert result.history[-1].loss < result.history[0].loss

        engine = get_engine(porto)
        report = evaluate_model(model, porto.test, engine)
        row = report.metrics.as_row()
        assert 0.0 <= row["Accuracy"] <= 1.0
        assert row["MAE"] > 0.0

        sr = evaluate_sr_at_k(report, porto.network)
        assert set(sr) == {0.4, 0.5, 0.6, 0.7, 0.8}

    def test_two_stage_and_learned_same_interface(self, porto):
        engine = get_engine(porto)
        learned = build_baseline("mtrajrec", porto.network, CFG)
        two_stage = build_baseline("linear_hmm", porto.network, CFG)
        for model in (learned, two_stage):
            report = evaluate_model(model, porto.test[:4], engine)
            assert report.metrics.count == 4

    def test_prediction_times_match_target_grid(self, porto):
        model = RNTrajRec(porto.network, CFG)
        batch = next(iterate_batches(porto.test, 4))
        for pred, sample in zip(model.recover_trajectories(batch), batch.samples):
            assert np.allclose(pred.times, sample.target.times)
            assert pred.interval == sample.target.interval

    def test_recovered_ratio_of_input_points(self, porto):
        """Recovery densifies by the keep_every factor."""
        sample = porto.test[0]
        assert sample.target_length >= sample.input_length * porto.spec.dataset.keep_every // 2


class TestDeterminism:
    def test_same_seed_same_model_predictions(self, porto):
        batch = next(iterate_batches(porto.test, 4))

        def build_and_predict():
            nn.init.seed_everything(123)
            model = RNTrajRec(porto.network, CFG)
            model.eval()
            segments, rates = model.recover(batch)
            return segments, rates

        seg1, rate1 = build_and_predict()
        seg2, rate2 = build_and_predict()
        assert np.array_equal(seg1, seg2)
        assert np.allclose(rate1, rate2)

    def test_training_deterministic(self, porto):
        def train_once():
            nn.init.seed_everything(7)
            model = RNTrajRec(porto.network, CFG)
            result = Trainer(model, TrainConfig(epochs=1, batch_size=8, seed=3,
                                                validate=False)).fit(porto.train[:16])
            return result.history[0].loss

        assert train_once() == pytest.approx(train_once())


class TestFailureInjection:
    def test_decoder_handles_all_zero_mask_row(self, porto):
        """A fully-zero constraint row must not produce NaNs (floor kicks in)."""
        from repro.nn import functional as F
        from repro.nn.tensor import Tensor

        logits = Tensor(np.random.default_rng(0).normal(size=(2, 5)))
        mask = np.zeros((2, 5))
        out = F.masked_log_softmax(logits, mask)
        assert np.all(np.isfinite(out.data))

    def test_gps_fix_far_outside_network(self, porto):
        """Sub-graph generation falls back to the nearest segment."""
        from repro.core import SubGraphGenerator

        gen = SubGraphGenerator(porto.network, CFG)
        sub = gen.point_subgraph(1e6, 1e6)
        assert len(sub.segments) >= 1

    def test_trainer_with_empty_validation(self, porto):
        model = build_baseline("mtrajrec", porto.network, CFG)
        result = Trainer(model, TrainConfig(epochs=1, batch_size=8,
                                            validate=True)).fit(porto.train[:8], [])
        assert result.history[0].val_accuracy is None

    def test_quick_accuracy_empty_samples(self, porto):
        from repro.core import quick_accuracy

        model = build_baseline("mtrajrec", porto.network, CFG)
        assert np.isnan(quick_accuracy(model, []))

    def test_hmm_engine_shared_with_metrics(self, porto):
        """LinearHMM can reuse the evaluation engine without conflicts."""
        from repro.baselines import LinearHMMRecovery

        engine = get_engine(porto)
        model = LinearHMMRecovery(porto.network, engine=engine)
        report = evaluate_model(model, porto.test[:2], engine)
        assert report.metrics.count == 2
