"""Tests for the evaluation metrics (§VI-A2) against hand-computed cases."""

import numpy as np
import pytest

from repro.eval import (
    elevated_window,
    evaluate_model,
    evaluate_recovery,
    f1_score,
    path_precision_recall,
    point_accuracy,
    sr_at_k,
)
from repro.eval.metrics import distance_errors
from repro.roadnet import CityConfig, RoadNetwork, RoadSegment, ShortestPathEngine, generate_city
from repro.trajectory import MatchedTrajectory


def traj(segments, ratios=None, times=None):
    n = len(segments)
    return MatchedTrajectory(
        np.asarray(segments),
        np.asarray(ratios if ratios is not None else np.zeros(n)),
        np.asarray(times if times is not None else np.arange(n, dtype=float)),
    )


class TestPathMetrics:
    def test_precision_recall_exact(self):
        recall, precision = path_precision_recall(np.array([1, 2, 3]), np.array([2, 3, 4, 5]))
        assert np.isclose(recall, 2 / 3)
        assert np.isclose(precision, 2 / 4)

    def test_perfect_match(self):
        recall, precision = path_precision_recall(np.array([1, 2]), np.array([2, 1]))
        assert recall == precision == 1.0

    def test_empty_paths(self):
        assert path_precision_recall(np.array([]), np.array([1])) == (0.0, 0.0)

    def test_f1(self):
        assert np.isclose(f1_score(0.5, 1.0), 2 / 3)
        assert f1_score(0.0, 0.0) == 0.0


class TestPointMetrics:
    def test_accuracy(self):
        a = traj([1, 2, 3, 4])
        b = traj([1, 9, 3, 9])
        assert np.isclose(point_accuracy(a, b), 0.5)

    def test_accuracy_length_mismatch(self):
        with pytest.raises(ValueError):
            point_accuracy(traj([1]), traj([1, 2]))


class TestDistanceErrors:
    def _line_network(self):
        segments = [
            RoadSegment(0, np.array([[0.0, 0.0], [100.0, 0.0]])),
            RoadSegment(1, np.array([[100.0, 0.0], [200.0, 0.0]])),
        ]
        return RoadNetwork(segments, [(0, 1)])

    def test_same_position_zero(self):
        net = self._line_network()
        engine = ShortestPathEngine(net)
        errors = distance_errors(traj([0], [0.5]), traj([0], [0.5]), engine)
        assert np.allclose(errors, 0.0)

    def test_known_distance(self):
        net = self._line_network()
        engine = ShortestPathEngine(net)
        errors = distance_errors(traj([0], [0.5]), traj([1], [0.5]), engine)
        assert np.isclose(errors[0], 100.0)  # 50 m remaining + 50 m into next

    def test_evaluate_recovery_aggregates(self):
        net = self._line_network()
        engine = ShortestPathEngine(net)
        truths = [traj([0, 1], [0.0, 0.0]), traj([0, 0], [0.0, 0.5])]
        preds = [traj([0, 1], [0.0, 0.0]), traj([0, 1], [0.0, 0.5])]
        metrics = evaluate_recovery(truths, preds, engine)
        assert metrics.count == 2
        assert 0.0 <= metrics.recall <= 1.0
        assert metrics.rmse >= metrics.mae

    def test_evaluate_recovery_validation(self):
        net = self._line_network()
        engine = ShortestPathEngine(net)
        with pytest.raises(ValueError):
            evaluate_recovery([], [], engine)
        with pytest.raises(ValueError):
            evaluate_recovery([traj([0])], [], engine)


class TestElevatedMetrics:
    @pytest.fixture(scope="class")
    def city(self):
        return generate_city(CityConfig(width=1000, height=1000, block=250,
                                        elevated_rows=(2,), ramp_every=1, seed=9))

    def test_elevated_window_found(self, city):
        elevated_ids = [s.segment_id for s in city.segments if s.elevated]
        ground_ids = [s.segment_id for s in city.segments if not s.elevated]
        t = traj(ground_ids[:2] + elevated_ids[:2] + ground_ids[2:4])
        window = elevated_window(t, city, pad=1)
        assert window is not None
        assert window.tolist() == [1, 2, 3, 4]

    def test_no_elevated_returns_none(self, city):
        ground_ids = [s.segment_id for s in city.segments if not s.elevated]
        assert elevated_window(traj(ground_ids[:4]), city) is None

    def test_sr_at_k_perfect_prediction(self, city):
        elevated_ids = [s.segment_id for s in city.segments if s.elevated]
        ground_ids = [s.segment_id for s in city.segments if not s.elevated]
        t = traj(ground_ids[:2] + elevated_ids[:3])
        out = sr_at_k([t], [t], city, thresholds=(0.5, 0.8))
        assert out[0.5] == 1.0
        assert out[0.8] == 1.0

    def test_sr_at_k_wrong_prediction(self, city):
        elevated_ids = [s.segment_id for s in city.segments if s.elevated]
        ground_ids = [s.segment_id for s in city.segments if not s.elevated]
        truth = traj(ground_ids[:2] + elevated_ids[:3])
        wrong = traj(ground_ids[4:9])
        out = sr_at_k([truth], [wrong], city, thresholds=(0.4,))
        assert out[0.4] == 0.0

    def test_sr_at_k_no_elevated_trajectories(self, city):
        ground_ids = [s.segment_id for s in city.segments if not s.elevated]
        t = traj(ground_ids[:3])
        out = sr_at_k([t], [t], city, thresholds=(0.5,))
        assert out[0.5] == 0.0  # no windows → zero proportions


class TestEvaluateModelHarness:
    def test_full_pipeline_with_linear_hmm(self):
        from repro.baselines import LinearHMMRecovery
        from repro.trajectory import (
            DatasetConfig,
            SimulationConfig,
            TrajectorySimulator,
            build_samples,
        )

        city = generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))
        sim = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=2))
        samples = build_samples(sim.simulate(6), city, DatasetConfig(keep_every=8))
        engine = ShortestPathEngine(city)
        report = evaluate_model(LinearHMMRecovery(city), samples, engine)
        assert report.metrics.count == 6
        assert report.inference_seconds_per_trajectory > 0
        assert len(report.predictions) == len(report.truths) == 6
