"""Tests for the §VI-I weight-refinement variants (the paper's reported
negative result, reproduced as opt-in configuration)."""

import numpy as np
import pytest

from repro.core import GPSFormer, RNTrajRec, RNTrajRecConfig
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import DatasetConfig, SimulationConfig, TrajectorySimulator, build_samples, make_batch

BASE = RNTrajRecConfig(hidden_dim=16, num_heads=2, max_subgraph_nodes=16,
                       receptive_delta=250.0, dropout=0.0)


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))


@pytest.fixture(scope="module")
def batch(city):
    sim = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=2))
    samples = build_samples(sim.simulate(4), city, DatasetConfig(keep_every=8))
    return make_batch(samples)


@pytest.mark.parametrize("mode", ["sigmoid", "softmax"])
def test_refined_readout_shapes(city, batch, mode):
    encoder = GPSFormer(city, BASE.variant(weight_refinement=mode))
    out = encoder(batch)
    assert out.point_features.shape == (batch.size, batch.input_length, BASE.hidden_dim)
    assert np.all(np.isfinite(out.point_features.data))


def test_invalid_mode_rejected(city):
    with pytest.raises(ValueError):
        GPSFormer(city, BASE.variant(weight_refinement="tanh"))


@pytest.mark.parametrize("mode", ["sigmoid", "softmax"])
def test_refinement_changes_output(city, batch, mode):
    from repro import nn

    nn.init.seed_everything(3)
    plain = GPSFormer(city, BASE)(batch).point_features.data
    nn.init.seed_everything(3)
    refined = GPSFormer(city, BASE.variant(weight_refinement=mode))(batch).point_features.data
    assert not np.allclose(plain, refined)


def test_refinement_trains_end_to_end(city, batch):
    model = RNTrajRec(city, BASE.variant(weight_refinement="softmax"))
    breakdown = model.compute_loss(batch)
    breakdown.total.backward()
    grads = [p.grad for _, p in model.named_parameters() if "weight_head" in _]
    assert grads and all(g is not None for g in grads)
