"""Tests for feed-forward layers (Linear, Embedding, norms, dropout)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(7)


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(5, 3)
        assert layer(Tensor(RNG.normal(size=(7, 5)))).shape == (7, 3)

    def test_batched_3d_input(self):
        layer = nn.Linear(5, 3)
        assert layer(Tensor(RNG.normal(size=(2, 7, 5)))).shape == (2, 7, 3)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_affine_math(self):
        layer = nn.Linear(2, 2)
        layer.weight.data = np.eye(2)
        layer.bias.data = np.array([1.0, -1.0])
        out = layer(Tensor(np.array([[2.0, 3.0]])))
        assert np.allclose(out.data, [[3.0, 2.0]])


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_gradient_accumulates_on_repeats(self):
        emb = nn.Embedding(5, 2)
        emb(np.array([1, 1, 1])).sum().backward()
        assert np.allclose(emb.weight.grad[1], 3.0)
        assert np.allclose(emb.weight.grad[0], 0.0)

    def test_out_of_range_raises(self):
        emb = nn.Embedding(5, 2)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = nn.LayerNorm(8)
        out = ln(Tensor(RNG.normal(size=(4, 8)) * 10 + 3)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gamma_beta_affine(self):
        ln = nn.LayerNorm(4)
        ln.gamma.data = np.full(4, 2.0)
        ln.beta.data = np.full(4, 1.0)
        out = ln(Tensor(RNG.normal(size=(3, 4)))).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_gradient_flows(self):
        ln = nn.LayerNorm(4)
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        ln(x).sum().backward()
        assert x.grad is not None and np.all(np.isfinite(x.grad))


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        bn = nn.BatchNorm(3)
        x = Tensor(RNG.normal(size=(50, 3)) * 5 + 2)
        out = bn(x).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.var(axis=0), 1.0, atol=1e-2)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm(2, momentum=1.0)  # running = last batch
        x = Tensor(np.array([[0.0, 10.0], [2.0, 12.0]]))
        bn(x)  # train step sets running stats
        bn.eval()
        single = bn(Tensor(np.array([[1.0, 11.0]]))).data
        assert np.allclose(single, 0.0, atol=1e-2)

    def test_eval_deterministic_wrt_batch(self):
        bn = nn.BatchNorm(2)
        bn(Tensor(RNG.normal(size=(20, 2))))
        bn.eval()
        a = bn(Tensor(np.ones((1, 2)))).data
        b = bn(Tensor(np.concatenate([np.ones((1, 2)), np.zeros((5, 2))]))).data[:1]
        assert np.allclose(a, b)


class TestDropout:
    def test_eval_is_identity(self):
        drop = nn.Dropout(0.5)
        drop.eval()
        x = Tensor(RNG.normal(size=(10, 10)))
        assert np.allclose(drop(x).data, x.data)

    def test_training_zeroes_and_scales(self):
        drop = nn.Dropout(0.5, seed=3)
        x = Tensor(np.ones((1000,)))
        out = drop(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted dropout scaling

    def test_zero_probability_identity(self):
        drop = nn.Dropout(0.0)
        x = Tensor(RNG.normal(size=(5,)))
        assert np.allclose(drop(x).data, x.data)

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestFeedForward:
    def test_shape_preserved(self):
        ffn = nn.FeedForward(6, 12)
        assert ffn(Tensor(RNG.normal(size=(2, 5, 6)))).shape == (2, 5, 6)

    def test_gradcheck_small(self):
        ffn = nn.FeedForward(3, 6)
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        ffn(x).sum().backward()
        assert np.all(np.isfinite(x.grad))
