"""Tests for the dataset registry and the cached experiment harness."""

import numpy as np
import pytest

from repro.core import RNTrajRecConfig, TrainConfig
from repro.datasets import dataset_names, get_spec, load_dataset
from repro.experiments import METHOD_NAMES, format_table, run_experiment
from repro.experiments.harness import ExperimentResult, load_cached


class TestRegistry:
    def test_all_five_paper_datasets_present(self):
        names = dataset_names()
        for expected in ("chengdu", "porto", "shanghai_l", "shanghai", "chengdu_few"):
            assert expected in names

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_spec("beijing")

    def test_chengdu_few_is_scaled_chengdu(self):
        full = get_spec("chengdu")
        few = get_spec("chengdu_few")
        assert few.num_trajectories == int(full.num_trajectories * 0.2)
        assert few.city == full.city

    def test_spec_scaled_floor(self):
        spec = get_spec("chengdu").scaled(0.0001)
        assert spec.num_trajectories >= 20

    def test_relative_scales_mirror_paper(self):
        """Shanghai-L is the largest area; sample intervals are 12/15/10."""
        chengdu, porto, shl = get_spec("chengdu"), get_spec("porto"), get_spec("shanghai_l")
        assert shl.city.width * shl.city.height > chengdu.city.width * chengdu.city.height
        assert chengdu.simulation.sample_interval == 12.0
        assert porto.simulation.sample_interval == 15.0
        assert shl.simulation.sample_interval == 10.0
        assert shl.dataset.keep_every == 16

    def test_load_dataset_split_and_stats(self):
        data = load_dataset("chengdu", num_trajectories=30)
        total = len(data.train) + len(data.val) + len(data.test)
        assert total == 30
        assert len(data.train) == 21  # 7:2:1 split
        stats = data.statistics()
        assert stats["# Trajectories"] == 30
        assert stats["# Road segments"] == data.network.num_segments
        assert stats["Input interval (s)"] == 96.0

    def test_load_dataset_keep_every_override(self):
        data = load_dataset("chengdu", num_trajectories=20, keep_every=16)
        sample = data.train[0]
        assert sample.input_length == 3  # ceil(25/16)+last

    def test_deterministic_loads(self):
        a = load_dataset("porto", num_trajectories=15)
        b = load_dataset("porto", num_trajectories=15)
        assert np.allclose(a.train[0].raw_low.xy, b.train[0].raw_low.xy)


class TestHarness:
    def test_method_names_complete(self):
        assert "rntrajrec" in METHOD_NAMES
        assert len(METHOD_NAMES) == 9

    def test_run_experiment_and_cache(self, tmp_path):
        config = RNTrajRecConfig(hidden_dim=8, num_heads=2, max_subgraph_nodes=8,
                                 receptive_delta=200.0, dropout=0.0)
        train = TrainConfig(epochs=1, batch_size=8, validate=False)
        kwargs = dict(
            dataset="chengdu", method="mtrajrec", trajectories=20,
            model_config=config, train_config=train, cache_dir=tmp_path,
        )
        first = run_experiment(**kwargs)
        assert set(first.metrics) == {"Recall", "Precision", "F1 Score", "Accuracy", "MAE", "RMSE"}
        assert first.num_parameters > 0
        assert first.train_seconds > 0

        # Second call must come from cache (train_seconds identical object).
        second = run_experiment(**kwargs)
        assert second.metrics == first.metrics
        assert second.train_seconds == first.train_seconds

    def test_linear_hmm_needs_no_training(self, tmp_path):
        result = run_experiment(
            dataset="chengdu", method="linear_hmm", trajectories=20,
            cache_dir=tmp_path,
        )
        assert result.train_seconds == 0.0
        assert result.num_parameters == 0

    def test_variant_tag_changes_cache_key(self, tmp_path):
        config = RNTrajRecConfig(hidden_dim=8, num_heads=2, max_subgraph_nodes=8,
                                 receptive_delta=200.0)
        train = TrainConfig(epochs=1, batch_size=8, validate=False)
        a = run_experiment(dataset="chengdu", method="linear_hmm", trajectories=20,
                           cache_dir=tmp_path, variant_tag="")
        b = run_experiment(dataset="chengdu", method="linear_hmm", trajectories=20,
                           cache_dir=tmp_path, variant_tag="other")
        assert a.method == "linear_hmm"
        assert b.method == "linear_hmm[other]"

    def test_format_table_contains_rows(self):
        result = ExperimentResult(
            dataset="chengdu", method="demo",
            metrics={"Recall": 0.5, "Precision": 0.6, "F1 Score": 0.54,
                     "Accuracy": 0.4, "MAE": 123.4, "RMSE": 200.1},
            sr_at_k={}, inference_ms_per_trajectory=1.0, num_parameters=10,
            train_seconds=0.0, config={},
        )
        table = format_table([result], "Table X")
        assert "Table X" in table
        assert "demo" in table
        assert "123.40" in table
