"""Tests for the road network model, synthetic generator and shortest paths."""

import numpy as np
import pytest

from repro.roadnet import (
    CityConfig,
    NUM_ROAD_LEVELS,
    RoadNetwork,
    RoadSegment,
    ShortestPathEngine,
    generate_city,
)


def tiny_network():
    """0→1→2 chain plus a 2→0 loop closure, unit geometry."""
    segments = [
        RoadSegment(0, np.array([[0.0, 0.0], [100.0, 0.0]]), level=2),
        RoadSegment(1, np.array([[100.0, 0.0], [100.0, 100.0]]), level=2),
        RoadSegment(2, np.array([[100.0, 100.0], [0.0, 0.0]]), level=4),
    ]
    edges = [(0, 1), (1, 2), (2, 0)]
    return RoadNetwork(segments, edges)


class TestRoadSegment:
    def test_length(self):
        seg = RoadSegment(0, np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert np.isclose(seg.length, 5.0)

    def test_position_at(self):
        seg = RoadSegment(0, np.array([[0.0, 0.0], [100.0, 0.0]]))
        assert np.allclose(seg.position_at(0.25), [25.0, 0.0])

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            RoadSegment(0, np.array([[0.0, 0.0]]))

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            RoadSegment(0, np.array([[0.0, 0.0], [1.0, 0.0]]), level=NUM_ROAD_LEVELS)


class TestRoadNetwork:
    def test_adjacency_lists(self):
        net = tiny_network()
        assert net.out_neighbors[0] == [1]
        assert net.in_neighbors[0] == [2]

    def test_duplicate_and_self_edges_dropped(self):
        segments = [
            RoadSegment(0, np.array([[0.0, 0.0], [1.0, 0.0]])),
            RoadSegment(1, np.array([[1.0, 0.0], [2.0, 0.0]])),
        ]
        net = RoadNetwork(segments, [(0, 1), (0, 1), (0, 0)])
        assert net.edges == [(0, 1)]

    def test_bad_segment_numbering(self):
        with pytest.raises(ValueError):
            RoadNetwork([RoadSegment(3, np.array([[0.0, 0.0], [1.0, 0.0]]))], [])

    def test_edge_bounds_checked(self):
        with pytest.raises(IndexError):
            RoadNetwork([RoadSegment(0, np.array([[0.0, 0.0], [1.0, 0.0]]))], [(0, 5)])

    def test_static_features_shape_and_content(self):
        net = tiny_network()
        f = net.static_features()
        assert f.shape == (3, 11)
        assert f[0, 2] == 1.0  # level-2 one-hot
        assert f[2, 4] == 1.0
        assert f[0, NUM_ROAD_LEVELS + 2] == 1.0  # one outgoing edge

    def test_nearest_segment(self):
        net = tiny_network()
        sid, dist, ratio = net.nearest_segment(50.0, 5.0)
        assert sid == 0
        assert np.isclose(dist, 5.0)
        assert np.isclose(ratio, 0.5)

    def test_segments_within_sorted(self):
        net = tiny_network()
        hits = net.segments_within(50.0, 5.0, 500.0)
        dists = [d for _, d in hits]
        assert dists == sorted(dists)
        assert hits[0][0] == 0

    def test_position_projection_roundtrip(self):
        net = tiny_network()
        xy = net.position(1, 0.4)
        dist, ratio = net.project(xy[0], xy[1], 1)
        assert dist < 1e-9
        assert np.isclose(ratio, 0.4)

    def test_subnetwork_remaps(self):
        net = tiny_network()
        sub, mapping = net.subnetwork([1, 2])
        assert sub.num_segments == 2
        assert sub.edges == [(mapping[1], mapping[2])]

    def test_make_grid_covers_bounds(self):
        net = tiny_network()
        grid = net.make_grid(cell_size=50.0)
        x0, y0, x1, y1 = net.bounds()
        assert grid.x0 <= x0 and grid.x1 >= x1


class TestGenerator:
    def test_deterministic(self):
        a = generate_city(CityConfig(width=1000, height=1000, seed=5))
        b = generate_city(CityConfig(width=1000, height=1000, seed=5))
        assert a.num_segments == b.num_segments
        assert a.edges == b.edges

    def test_two_way_pairs_exist(self):
        net = generate_city(CityConfig(width=1000, height=1000, seed=5))
        # For at least one pair of segments, geometry is reversed.
        found = False
        for i in range(0, min(net.num_segments, 20), 2):
            a, b = net.segments[i], net.segments[i + 1]
            if np.allclose(a.polyline, b.polyline[::-1]):
                found = True
                break
        assert found

    def test_elevated_deck_present_and_marked(self):
        net = generate_city(CityConfig(width=1500, height=1500, elevated_rows=(2,), seed=5))
        elevated = [s for s in net.segments if s.elevated]
        assert elevated
        assert any(s.level == 0 for s in elevated)  # expressway deck
        assert any(s.level == 1 for s in elevated)  # ramps

    def test_no_elevated_when_disabled(self):
        net = generate_city(CityConfig(width=1000, height=1000, elevated_rows=(), seed=5))
        assert not any(s.elevated for s in net.segments)

    def test_no_instant_u_turns(self):
        net = generate_city(CityConfig(width=1000, height=1000, seed=5, allow_u_turn=False))
        for a, b in net.edges:
            pa, pb = net.segments[a].polyline, net.segments[b].polyline
            # b must not be exactly a reversed (the opposite twin).
            if pa.shape == pb.shape:
                assert not np.allclose(pa, pb[::-1])

    def test_strong_connectivity_bulk(self):
        net = generate_city(CityConfig(width=1250, height=1250, seed=7))
        engine = ShortestPathEngine(net)
        reachable = np.isfinite(engine.distances_from(0)).mean()
        assert reachable > 0.95

    def test_too_small_city_rejected(self):
        with pytest.raises(ValueError):
            generate_city(CityConfig(width=200, height=200, block=250))


class TestShortestPath:
    def test_chain_distance(self):
        net = tiny_network()
        engine = ShortestPathEngine(net)
        dist = engine.distances_from(0)
        assert np.isclose(dist[0], 0.0)
        assert np.isclose(dist[1], net.segments[1].length)
        assert np.isclose(dist[2], net.segments[1].length + net.segments[2].length)

    def test_route_recovery(self):
        net = tiny_network()
        engine = ShortestPathEngine(net)
        assert engine.route(0, 2) == [0, 1, 2]
        assert engine.route(1, 1) == [1]

    def test_route_unreachable(self):
        segments = [
            RoadSegment(0, np.array([[0.0, 0.0], [1.0, 0.0]])),
            RoadSegment(1, np.array([[5.0, 5.0], [6.0, 5.0]])),
        ]
        engine = ShortestPathEngine(RoadNetwork(segments, []))
        assert engine.route(0, 1) is None

    def test_matches_networkx_reference(self):
        import networkx as nx

        net = generate_city(CityConfig(width=1000, height=1000, seed=3))
        engine = ShortestPathEngine(net)
        g = nx.DiGraph()
        for a, b in net.edges:
            g.add_edge(a, b, weight=net.segments[b].length)
        ref = nx.single_source_dijkstra_path_length(g, 0)
        ours = engine.distances_from(0)
        for node, d in list(ref.items())[:50]:
            assert np.isclose(ours[node], d, atol=1e-6)

    def test_position_distance_same_segment_forward(self):
        net = tiny_network()
        engine = ShortestPathEngine(net)
        d = engine.position_distance(0, 0.2, 0, 0.7)
        assert np.isclose(d, 0.5 * net.segments[0].length)

    def test_position_distance_cross_segment(self):
        net = tiny_network()
        engine = ShortestPathEngine(net)
        d = engine.position_distance(0, 0.5, 1, 0.5)
        expected = 0.5 * net.segments[0].length + 0.5 * net.segments[1].length
        assert np.isclose(d, expected)

    def test_position_distance_backward_routes_around_loop(self):
        net = tiny_network()
        engine = ShortestPathEngine(net)
        d = engine.position_distance(0, 0.7, 0, 0.2)
        loop = net.segments[1].length + net.segments[2].length
        assert np.isclose(d, 0.3 * net.segments[0].length + loop + 0.2 * net.segments[0].length)

    def test_symmetric_distance_finite_fallback(self):
        segments = [
            RoadSegment(0, np.array([[0.0, 0.0], [10.0, 0.0]])),
            RoadSegment(1, np.array([[50.0, 0.0], [60.0, 0.0]])),
        ]
        engine = ShortestPathEngine(RoadNetwork(segments, []))
        d = engine.symmetric_position_distance(0, 0.0, 1, 0.0)
        assert np.isclose(d, 50.0)  # straight-line fallback

    def test_cache_hit_same_array(self):
        net = tiny_network()
        engine = ShortestPathEngine(net)
        a = engine.distances_from(0)
        b = engine.distances_from(0)
        assert a is b

    def test_route_length(self):
        net = tiny_network()
        engine = ShortestPathEngine(net)
        total = engine.route_length([0, 1])
        assert np.isclose(total, net.segments[0].length + net.segments[1].length)
