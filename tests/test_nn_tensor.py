"""Unit + property tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import (
    Tensor,
    concat,
    gather_rows,
    segment_mean,
    segment_softmax,
    segment_sum,
    stack,
    unbroadcast,
    where,
)

RNG = np.random.default_rng(42)


def numeric_gradient(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn() with respect to array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        x[idx] += eps
        up = fn()
        x[idx] -= 2 * eps
        down = fn()
        x[idx] += eps
        grad[idx] = (up - down) / (2 * eps)
    return grad


def check_gradient(build, param_array, tolerance=1e-6):
    """Compare autograd and numeric gradients for scalar output builder."""
    out = build()
    out.backward()
    analytic = param_array.grad.copy()
    numeric = numeric_gradient(lambda: build().item(), param_array.data)
    assert np.allclose(analytic, numeric, atol=tolerance), (
        f"grad mismatch: max err {np.abs(analytic - numeric).max()}"
    )


class TestArithmetic:
    def test_add_broadcast_gradient(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_sub_gradient_sign(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, -1.0)

    def test_mul_gradcheck(self):
        a = Tensor(RNG.normal(size=(3, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3, 3)))
        check_gradient(lambda: (a * b * a).sum(), a)

    def test_div_gradcheck(self):
        a = Tensor(RNG.normal(size=(2, 3)) + 5.0, requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 3)) + 5.0, requires_grad=True)
        check_gradient(lambda: (a / b).sum(), a)

    def test_pow_gradient(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        (a**3).sum().backward()
        assert np.allclose(a.grad, 3 * np.array([4.0, 9.0]))

    def test_neg(self):
        a = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        (-a).sum().backward()
        assert np.allclose(a.grad, -1.0)

    def test_rsub_rdiv(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        assert np.allclose((1.0 - a).data, -1.0)
        assert np.allclose((4.0 / a).data, 2.0)

    def test_scalar_coercion(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (2.0 * a + 1.0).sum()
        out.backward()
        assert np.allclose(a.grad, 2.0)


class TestMatmul:
    def test_matmul_2d_gradcheck(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 2)))
        check_gradient(lambda: (a @ b).sum(), a)

    def test_matmul_batched_gradcheck(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 4, 5)), requires_grad=True)
        check_gradient(lambda: (a @ b).sum(), a)
        a.zero_grad(), b.zero_grad()
        check_gradient(lambda: (a @ b).sum(), b)

    def test_matmul_broadcast_weight(self):
        # (batch, n, k) @ (k, m): weight grad must collapse the batch axis.
        a = Tensor(RNG.normal(size=(2, 3, 4)))
        w = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        check_gradient(lambda: (a @ w).sum(), w)

    def test_matvec(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        v = Tensor(RNG.normal(size=(4,)))
        check_gradient(lambda: (a @ v).sum(), a)


class TestShapes:
    def test_reshape_roundtrip_grad(self):
        a = Tensor(RNG.normal(size=(2, 6)), requires_grad=True)
        a.reshape(3, 4).sum().backward()
        assert a.grad.shape == (2, 6)
        assert np.allclose(a.grad, 1.0)

    def test_transpose_gradient(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 4, 3)))
        check_gradient(lambda: (a.transpose(0, 2, 1) * b).sum(), a)

    def test_default_transpose_reverses(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.T.shape == (4, 3, 2)

    def test_getitem_slice_gradient(self):
        a = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        a[1:3].sum().backward()
        expected = np.zeros((4, 5))
        expected[1:3] = 1.0
        assert np.allclose(a.grad, expected)

    def test_getitem_fancy_duplicate_indices_accumulate(self):
        a = Tensor(np.zeros((3, 2)), requires_grad=True)
        idx = np.array([1, 1, 2])
        a[idx].sum().backward()
        assert np.allclose(a.grad[:, 0], [0.0, 2.0, 1.0])

    def test_negative_step_slice(self):
        a = Tensor(RNG.normal(size=(1, 4, 2)), requires_grad=True)
        a[:, ::-1, :].sum().backward()
        assert np.allclose(a.grad, 1.0)


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_mean_gradient_scaling(self):
        a = Tensor(RNG.normal(size=(5,)), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, 0.2)

    def test_max_gradient_goes_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_evenly(self):
        a = Tensor(np.array([3.0, 3.0]), requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.5, 0.5])


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid"])
    def test_elementwise_gradcheck(self, op):
        base = RNG.uniform(0.5, 2.0, size=(3, 3))
        a = Tensor(base.copy(), requires_grad=True)
        check_gradient(lambda: getattr(a, op)().sum(), a)

    def test_relu_zero_region(self):
        a = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])

    def test_leaky_relu_slope(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        a.leaky_relu(0.1).sum().backward()
        assert np.allclose(a.grad, [0.1, 1.0])

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor(np.array([-1000.0, 1000.0]))
        out = a.sigmoid().data
        assert np.all(np.isfinite(out))
        assert out[0] < 1e-10 and out[1] > 1 - 1e-10

    def test_clip_gradient_masks_out_of_range(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestCombinators:
    def test_concat_gradient_routing(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        concat([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (2, 2)

    def test_stack_gradient(self):
        tensors = [Tensor(RNG.normal(size=(3,)), requires_grad=True) for _ in range(4)]
        stack(tensors, axis=0).sum().backward()
        for t in tensors:
            assert np.allclose(t.grad, 1.0)

    def test_where_selects_and_routes(self):
        cond = np.array([True, False])
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0]), requires_grad=True)
        out = where(cond, a, b)
        assert np.allclose(out.data, [1.0, 20.0])
        out.sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_gather_rows_gradient_scatter(self):
        table = Tensor(RNG.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([[0, 1], [1, 4]])
        out = gather_rows(table, idx)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        assert np.allclose(table.grad[1], 2.0)  # row 1 gathered twice
        assert np.allclose(table.grad[2], 0.0)


class TestSegmentOps:
    def test_segment_sum_values(self):
        values = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = segment_sum(values, np.array([0, 0, 1]), 2)
        assert np.allclose(out.data, [[3.0], [3.0]])

    def test_segment_sum_gradient_is_gather(self):
        values = Tensor(RNG.normal(size=(4, 2)), requires_grad=True)
        seg = np.array([0, 1, 1, 0])
        (segment_sum(values, seg, 2) * Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))).sum().backward()
        assert np.allclose(values.grad[0], [1.0, 2.0])
        assert np.allclose(values.grad[1], [3.0, 4.0])

    def test_segment_mean_empty_segment_zero(self):
        values = Tensor(np.ones((2, 3)))
        out = segment_mean(values, np.array([0, 0]), 3)
        assert np.allclose(out.data[0], 1.0)
        assert np.allclose(out.data[1:], 0.0)

    def test_segment_softmax_normalizes_per_segment(self):
        scores = Tensor(RNG.normal(size=(6,)))
        seg = np.array([0, 0, 0, 1, 1, 2])
        out = segment_softmax(scores, seg, 3).data
        for s in range(3):
            assert np.isclose(out[seg == s].sum(), 1.0)

    def test_segment_softmax_large_scores_stable(self):
        scores = Tensor(np.array([1000.0, 1000.0, -1000.0]))
        out = segment_softmax(scores, np.array([0, 0, 0]), 1).data
        assert np.all(np.isfinite(out))
        assert np.isclose(out.sum(), 1.0)


class TestBackwardMechanics:
    def test_backward_requires_grad_flag(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_backward_shape_check(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            a.backward(np.ones(4))

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3.0
        c = a * 4.0
        (b + c).sum().backward()
        assert np.allclose(a.grad, 7.0)

    def test_reused_tensor_in_two_losses_needs_zero_grad(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 2.0).sum().backward()
        first = a.grad.copy()
        a.zero_grad()
        (a * 2.0).sum().backward()
        assert np.allclose(first, a.grad)

    def test_detach_cuts_graph(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        d = a.detach()
        assert not d.requires_grad


class TestUnbroadcast:
    @given(
        rows=st.integers(1, 4),
        cols=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, rows, cols):
        original = np.ones((1, cols))
        broadcast = np.broadcast_to(original, (rows, cols)).copy()
        collapsed = unbroadcast(broadcast, original.shape)
        assert collapsed.shape == original.shape
        assert np.allclose(collapsed, rows * original)

    def test_unbroadcast_extra_leading_dims(self):
        grad = np.ones((5, 3, 2))
        out = unbroadcast(grad, (3, 2))
        assert out.shape == (3, 2)
        assert np.allclose(out, 5.0)


@given(
    data=st.lists(st.floats(-10, 10), min_size=2, max_size=20),
)
@settings(max_examples=30, deadline=None)
def test_softmax_like_chain_property(data):
    """exp/log/sum chains stay finite and differentiable for modest inputs."""
    x = Tensor(np.array(data), requires_grad=True)
    shifted = x - Tensor(np.max(data))
    out = (shifted.exp().sum() + 1e-9).log()
    out.backward()
    assert np.all(np.isfinite(x.grad))
