"""Tests for the ``repro.serve`` online recovery subsystem."""

import threading
import time

import numpy as np
import pytest

from repro.core import RNTrajRec, RNTrajRecConfig
from repro.datasets import load_dataset
from repro.serve import (
    BatchPolicy,
    LRUCache,
    MicroBatcher,
    ModelRegistry,
    RecoveryRequest,
    RecoveryService,
    RequestError,
    ServeConfig,
    assemble_sample,
    quantize_key,
    save_model_bundle,
)
from repro.trajectory import make_batch, make_padded_batch, pad_sample_target


# ---------------------------------------------------------------------------
# Micro-batching scheduler (no model involved — generic over items)
# ---------------------------------------------------------------------------
class TestMicroBatcher:
    def _batcher(self, max_batch_size=8, max_wait_ms=250.0, group_key=None,
                 runner=None, sizes=None):
        def default_runner(items):
            return [item * 2 for item in items]

        return MicroBatcher(
            runner or default_runner,
            policy=BatchPolicy(max_batch_size=max_batch_size, max_wait_ms=max_wait_ms),
            group_key=group_key,
            on_batch=(sizes.append if sizes is not None else None),
        )

    def test_requests_under_window_coalesce_into_one_batch(self):
        sizes = []
        batcher = self._batcher(max_batch_size=8, max_wait_ms=300.0, sizes=sizes)
        futures = [batcher.submit(i) for i in range(3)]
        results = [f.result(timeout=10.0) for f in futures]
        batcher.close()
        assert results == [0, 2, 4]
        assert sizes == [3]  # one coalesced batch, dispatched at the window

    def test_max_batch_size_enforced_over_window(self):
        sizes = []
        batcher = self._batcher(max_batch_size=4, max_wait_ms=400.0, sizes=sizes)
        futures = [batcher.submit(i) for i in range(10)]
        results = [f.result(timeout=10.0) for f in futures]
        batcher.close()
        assert results == [i * 2 for i in range(10)]
        assert all(size <= 4 for size in sizes)
        assert sizes[0] == 4  # a full batch dispatches before its window
        assert sum(sizes) == 10

    def test_single_request_dispatches_after_window(self):
        sizes = []
        batcher = self._batcher(max_batch_size=16, max_wait_ms=30.0, sizes=sizes)
        start = time.monotonic()
        assert batcher.submit(21).result(timeout=10.0) == 42
        assert time.monotonic() - start >= 0.02  # waited for the window
        batcher.close()
        assert sizes == [1]

    def test_groups_never_mix(self):
        seen = []

        def runner(items):
            seen.append(list(items))
            return items

        batcher = self._batcher(max_batch_size=8, max_wait_ms=150.0,
                                group_key=lambda item: item % 2, runner=runner)
        futures = [batcher.submit(i) for i in range(8)]
        for future in futures:
            future.result(timeout=10.0)
        batcher.close()
        for batch in seen:
            assert len({item % 2 for item in batch}) == 1

    def test_flush_dispatches_immediately(self):
        sizes = []
        batcher = self._batcher(max_batch_size=16, max_wait_ms=10_000.0, sizes=sizes)
        futures = [batcher.submit(i) for i in range(5)]
        start = time.monotonic()
        batcher.flush()
        assert time.monotonic() - start < 5.0  # did not wait the 10s window
        assert [f.result(timeout=1.0) for f in futures] == [0, 2, 4, 6, 8]
        assert sizes == [5]
        batcher.close()

    def test_full_group_preempts_waiting_group(self):
        """A group reaching max_batch_size dispatches immediately even while
        an older, partial group is still inside its wait window."""
        sizes = []
        batcher = self._batcher(max_batch_size=4, max_wait_ms=10_000.0,
                                group_key=lambda item: item % 2, sizes=sizes)
        lone = batcher.submit(1)  # odd group anchors a 10s window
        evens = [batcher.submit(i * 2) for i in range(4)]  # even group fills
        results = [f.result(timeout=5.0) for f in evens]  # must not wait 10s
        assert results == [0, 4, 8, 12]
        assert sizes[0] == 4
        batcher.close(drain=True)  # drains the lone odd request
        assert lone.result(timeout=1.0) == 2

    def test_flush_does_not_disable_coalescing(self):
        sizes = []
        batcher = self._batcher(max_batch_size=8, max_wait_ms=250.0, sizes=sizes)
        first = [batcher.submit(i) for i in range(2)]
        batcher.flush()
        assert [f.result(timeout=1.0) for f in first] == [0, 2]
        # Submissions after a flush must still coalesce into one batch.
        second = [batcher.submit(i) for i in range(3)]
        assert [f.result(timeout=10.0) for f in second] == [0, 2, 4]
        batcher.close()
        assert sizes == [2, 3]

    def test_runner_errors_propagate_to_every_future(self):
        def runner(items):
            raise RuntimeError("boom")

        batcher = self._batcher(max_wait_ms=20.0, runner=runner)
        futures = [batcher.submit(i) for i in range(3)]
        for future in futures:
            with pytest.raises(RuntimeError, match="boom"):
                future.result(timeout=10.0)
        batcher.close()

    def test_close_drains_pending(self):
        batcher = self._batcher(max_batch_size=16, max_wait_ms=10_000.0)
        futures = [batcher.submit(i) for i in range(4)]
        batcher.close(drain=True)
        assert [f.result(timeout=1.0) for f in futures] == [0, 2, 4, 6]
        with pytest.raises(RuntimeError):
            batcher.submit(1)

    def test_concurrent_submitters_share_batches(self):
        sizes = []
        batcher = self._batcher(max_batch_size=32, max_wait_ms=200.0, sizes=sizes)

        def submit_one(i, out):
            out[i] = batcher.submit(i).result(timeout=10.0)

        out = {}
        threads = [threading.Thread(target=submit_one, args=(i, out)) for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batcher.close()
        assert out == {i: i * 2 for i in range(12)}
        assert max(sizes) > 1  # concurrency actually coalesced


# ---------------------------------------------------------------------------
# LRU cache
# ---------------------------------------------------------------------------
class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'
        cache.put("c", 3)           # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_hit_rate(self):
        cache = LRUCache(capacity=4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.get("missing") is None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_quantized_keys_absorb_jitter(self):
        xy = np.array([[100.0, 200.0], [150.0, 260.0]])
        times = np.array([0.0, 96.0])
        base = quantize_key(xy, times, xy_precision=0.5, time_precision=0.5)
        jittered = quantize_key(xy + 0.1, times + 0.1, xy_precision=0.5,
                                time_precision=0.5)
        moved = quantize_key(xy + 5.0, times, xy_precision=0.5, time_precision=0.5)
        assert base == jittered
        assert base != moved

    def test_key_folds_in_extra_context(self):
        xy = np.zeros((2, 2))
        times = np.array([0.0, 10.0])
        assert quantize_key(xy, times, extra=("m1",)) != quantize_key(
            xy, times, extra=("m2",))


# ---------------------------------------------------------------------------
# Model fixtures: a tiny untrained model (eval mode is deterministic)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def data():
    return load_dataset("chengdu", num_trajectories=40)


@pytest.fixture(scope="module")
def model(data):
    config = RNTrajRecConfig(hidden_dim=16, num_heads=2, dropout=0.0,
                             receptive_delta=300.0, max_subgraph_nodes=24)
    return RNTrajRec(data.network, config).eval()


def _request(sample, request_id=""):
    return RecoveryRequest(sample.raw_low.xy, sample.raw_low.times,
                           hour=sample.hour, holiday=sample.holiday,
                           request_id=request_id)


def _serve_config(data, **overrides):
    defaults = dict(max_batch_size=8, max_wait_ms=60.0)
    defaults.update(overrides)
    return ServeConfig.for_dataset(data, **defaults)


# ---------------------------------------------------------------------------
# Raw-GPS ingestion
# ---------------------------------------------------------------------------
class TestAssembleSample:
    def test_matches_offline_pipeline(self, data):
        offline = data.test[0]
        serving = assemble_sample(_request(offline), data.network,
                                  _serve_config(data).ingest())
        assert serving.target_length == offline.target_length
        assert np.array_equal(serving.observed_steps, offline.observed_steps)
        assert np.array_equal(serving.target.times, offline.target.times)
        num_segments = data.network.num_segments
        assert np.allclose(serving.constraint_matrix(num_segments),
                           offline.constraint_matrix(num_segments))

    def test_rejects_degenerate_requests(self, data):
        config = _serve_config(data).ingest()
        with pytest.raises(RequestError):
            assemble_sample(RecoveryRequest(np.zeros((1, 2)), np.zeros(1)),
                            data.network, config)
        with pytest.raises(RequestError):  # two fixes inside one ε_ρ step
            assemble_sample(
                RecoveryRequest(np.zeros((2, 2)), np.array([0.0, 0.001])),
                data.network, config)
        with pytest.raises(RequestError):  # JSON can smuggle NaN through
            assemble_sample(
                RecoveryRequest(np.array([[np.nan, 0.0], [100.0, 100.0]]),
                                np.array([0.0, 96.0])),
                data.network, config)


# ---------------------------------------------------------------------------
# Padded batching and the serving recover path
# ---------------------------------------------------------------------------
class TestPaddedRecovery:
    def test_pad_sample_target_extends_grid(self, data):
        sample = data.test[0]
        padded = pad_sample_target(sample, sample.target_length + 3)
        assert padded.target_length == sample.target_length + 3
        assert padded.constraints[-1] is None
        interval = sample.target.interval
        assert np.allclose(np.diff(padded.target.times), interval)
        with pytest.raises(ValueError):
            pad_sample_target(sample, sample.target_length - 1)

    def test_recover_padded_equals_per_request(self, data, model):
        # Two samples with equal input lengths but different target lengths
        # (one native, one on a longer ε_ρ grid) cannot stack directly ...
        short_sample = data.test[0]
        long_sample = pad_sample_target(data.test[1],
                                        short_sample.target_length + 3)
        with pytest.raises(ValueError):
            make_batch([short_sample, long_sample])

        # ... but the padded path coalesces them into one decode whose
        # truncated outputs match per-request recovery exactly.
        batch, lengths = make_padded_batch([short_sample, long_sample])
        assert lengths == [short_sample.target_length, long_sample.target_length]
        batched = model.recover_padded(batch, lengths)

        for sample, result in zip([short_sample, long_sample], batched):
            direct = model.recover_trajectories(make_batch([sample]))[0]
            assert np.array_equal(direct.segments, result.segments)
            assert np.allclose(direct.ratios, result.ratios)

    def test_recover_padded_validates_lengths(self, data, model):
        batch, lengths = make_padded_batch(data.test[:2])
        with pytest.raises(ValueError):
            model.recover_padded(batch, lengths[:1])


# ---------------------------------------------------------------------------
# RecoveryService end to end
# ---------------------------------------------------------------------------
class TestRecoveryService:
    def test_batched_results_equal_per_request_recover(self, data, model):
        service = RecoveryService.from_model(model, _serve_config(data))
        samples = (data.test + data.val)[:6]
        responses = service.recover_many(
            [_request(s, f"r{i}") for i, s in enumerate(samples)], timeout=120.0)
        stats = service.stats()
        service.close()

        assert stats["max_batch_occupancy"] > 1  # requests were coalesced
        for sample, response in zip(samples, responses):
            direct = model.recover_trajectories(make_batch([sample]))[0]
            assert np.array_equal(direct.segments, response.trajectory.segments)
            assert np.allclose(direct.ratios, response.trajectory.ratios)
            assert np.array_equal(direct.times, response.trajectory.times)

    def test_cache_hit_on_resubmission(self, data, model):
        service = RecoveryService.from_model(
            model, _serve_config(data, max_wait_ms=5.0))
        request = _request(data.test[0], "first")
        first = service.recover(request, timeout=120.0)
        second = service.recover(request, timeout=120.0)
        stats = service.stats()
        service.close()

        assert not first.cached
        assert second.cached
        assert np.array_equal(first.trajectory.segments, second.trajectory.segments)
        assert stats["cache_hits"] == 1
        assert stats["requests"] == 2

    def test_time_shifted_duplicate_hits_cache_with_rebased_times(self, data, model):
        service = RecoveryService.from_model(
            model, _serve_config(data, max_wait_ms=5.0))
        sample = data.test[0]
        original = service.recover(_request(sample, "t0"), timeout=120.0)
        shifted = service.recover(RecoveryRequest(
            sample.raw_low.xy, sample.raw_low.times + 3600.0,
            hour=sample.hour, holiday=sample.holiday, request_id="t1"), timeout=120.0)
        service.close()

        assert shifted.cached  # same geometry, relative times → cache hit
        assert np.array_equal(original.trajectory.segments,
                              shifted.trajectory.segments)
        # ... but the grid is rebased onto the new request's time origin.
        assert np.allclose(shifted.trajectory.times,
                           original.trajectory.times + 3600.0)

    def test_bad_request_fails_future_and_counts_error(self, data, model):
        service = RecoveryService.from_model(
            model, _serve_config(data, max_wait_ms=5.0))
        futures = [
            service.submit(RecoveryRequest(np.zeros((1, 2)), np.zeros(1))),
            service.submit(RecoveryRequest(np.zeros((0, 2)), np.zeros(0))),
        ]
        for future in futures:  # async contract: errors fail the future
            with pytest.raises(RequestError):
                future.result(timeout=10.0)
        assert service.stats()["errors"] == 2
        service.close()

    def test_stats_shape(self, data, model):
        service = RecoveryService.from_model(model, _serve_config(data))
        stats = service.stats()
        service.close()
        for key in ("requests", "qps", "latency_ms_p50", "latency_ms_p95",
                    "cache_hit_rate", "mean_batch_occupancy",
                    "max_batch_occupancy", "active_model", "pending"):
            assert key in stats


# ---------------------------------------------------------------------------
# Model registry: bundles, hot-swap, pinned structures
# ---------------------------------------------------------------------------
class TestModelRegistry:
    def test_bundle_round_trip_reproduces_outputs(self, data, model, tmp_path):
        prefix = str(tmp_path / "bundle")
        save_model_bundle(model, prefix)
        registry = ModelRegistry(data.network)
        registry.register("v1", prefix, activate=True)
        loaded = registry.load("v1")

        assert loaded.config == model.config  # sidecar restored the config
        batch = make_batch(data.test[:2])
        expected_segments, expected_rates = model.recover(batch)
        got_segments, got_rates = loaded.recover(batch)
        assert np.array_equal(expected_segments, got_segments)
        assert np.allclose(expected_rates, got_rates)

    def test_pinned_structures_shared_across_models(self, data, model, tmp_path):
        save_model_bundle(model, str(tmp_path / "a"))
        save_model_bundle(model, str(tmp_path / "b"))
        registry = ModelRegistry(data.network)
        registry.register("a", str(tmp_path / "a"))
        registry.register("b", str(tmp_path / "b"))
        model_a, model_b = registry.load("a"), registry.load("b")
        assert model_a.network is model_b.network
        assert model_a.encoder.grid is model_b.encoder.grid
        assert model_a.reachability is model_b.reachability

    def test_hot_swap_switches_active_model(self, data, model, tmp_path):
        save_model_bundle(model, str(tmp_path / "v1"))
        registry = ModelRegistry(data.network)
        registry.register("v1", str(tmp_path / "v1"), activate=True)
        service = RecoveryService(registry, _serve_config(data, max_wait_ms=5.0))

        request = _request(data.test[0], "swap-check")
        first = service.recover(request, timeout=120.0)
        assert first.model == "v1"

        other = RNTrajRec(data.network, model.config).eval()
        registry.add_loaded("v2", other)
        service.swap_model("v2")
        second = service.recover(request, timeout=120.0)
        service.close()

        assert second.model == "v2"
        assert not second.cached  # cache keys include the model name
        assert registry.active_name == "v2"

    def test_in_flight_requests_finish_on_submit_time_model(self, data, model):
        registry = ModelRegistry(data.network)
        registry.add_loaded("v1", model, activate=True)
        service = RecoveryService(registry, _serve_config(data, max_wait_ms=500.0))

        # Submit while v1 is active, then hot-swap inside the wait window.
        future = service.submit(_request(data.test[0], "inflight"))
        registry.add_loaded("v2", RNTrajRec(data.network, model.config).eval())
        service.swap_model("v2")
        response = future.result(timeout=120.0)
        service.close()

        assert response.model == "v1"
        direct = model.recover_trajectories(make_batch([data.test[0]]))[0]
        assert np.array_equal(direct.segments, response.trajectory.segments)

    def test_reregistering_a_name_invalidates_cached_results(self, data, model):
        registry = ModelRegistry(data.network)
        registry.add_loaded("default", model, activate=True)
        service = RecoveryService(registry, _serve_config(data, max_wait_ms=5.0))

        request = _request(data.test[0], "regen")
        first = service.recover(request, timeout=120.0)
        # Hot-reload an updated model under the *same* name.
        retrained = RNTrajRec(data.network, model.config).eval()
        registry.add_loaded("default", retrained, activate=True)
        second = service.recover(request, timeout=120.0)
        service.close()

        assert not first.cached
        assert not second.cached  # generation tag invalidated the old entry
        direct = retrained.recover_trajectories(make_batch([data.test[0]]))[0]
        assert np.array_equal(direct.segments, second.trajectory.segments)

    def test_unknown_model_raises(self, data):
        registry = ModelRegistry(data.network)
        with pytest.raises(KeyError):
            registry.load("nope")
