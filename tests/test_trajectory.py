"""Tests for trajectory data structures, simulator, resampling, datasets."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.roadnet import CityConfig, ShortestPathEngine, generate_city
from repro.trajectory import (
    DatasetConfig,
    MatchedTrajectory,
    RawTrajectory,
    SimulationConfig,
    TrajectorySimulator,
    build_samples,
    downsample_indices,
    downsample_raw,
    epsilon_grid,
    iterate_batches,
    linear_interpolate,
    make_batch,
    train_val_test_split,
)


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))


@pytest.fixture(scope="module")
def pairs(city):
    sim = TrajectorySimulator(city, SimulationConfig(target_points=17, sample_interval=12, seed=2))
    return sim.simulate(12)


class TestRawTrajectory:
    def test_validation(self):
        with pytest.raises(ValueError):
            RawTrajectory(np.zeros((3, 3)), np.arange(3.0))
        with pytest.raises(ValueError):
            RawTrajectory(np.zeros((3, 2)), np.array([0.0, 2.0, 1.0]))

    def test_mean_interval(self):
        traj = RawTrajectory(np.zeros((3, 2)), np.array([0.0, 10.0, 30.0]))
        assert np.isclose(traj.mean_interval, 15.0)
        assert np.isclose(traj.duration, 30.0)

    def test_slice(self):
        traj = RawTrajectory(np.arange(8.0).reshape(4, 2), np.arange(4.0))
        sub = traj.slice([0, 2])
        assert len(sub) == 2
        assert np.allclose(sub.times, [0.0, 2.0])


class TestMatchedTrajectory:
    def test_ratio_bounds_checked(self):
        with pytest.raises(ValueError):
            MatchedTrajectory(np.array([0]), np.array([1.5]), np.array([0.0]))

    def test_travel_path_dedupes_in_order(self):
        traj = MatchedTrajectory(
            np.array([3, 3, 5, 3, 7]), np.zeros(5), np.arange(5.0)
        )
        assert traj.travel_path().tolist() == [3, 5, 7]

    def test_positions_and_to_raw(self, city):
        traj = MatchedTrajectory(np.array([0, 0]), np.array([0.0, 0.5]), np.array([0.0, 12.0]))
        xy = traj.positions(city)
        assert xy.shape == (2, 2)
        raw = traj.to_raw(city, noise_std=0.0)
        assert np.allclose(raw.xy, xy)

    def test_to_raw_noise_applied(self, city):
        traj = MatchedTrajectory(np.array([0, 1]), np.array([0.2, 0.4]), np.array([0.0, 12.0]))
        rng = np.random.default_rng(0)
        noisy = traj.to_raw(city, noise_std=10.0, rng=rng)
        assert not np.allclose(noisy.xy, traj.positions(city))

    def test_interval(self):
        traj = MatchedTrajectory(np.array([0, 0, 0]), np.zeros(3), np.array([0.0, 12.0, 24.0]))
        assert traj.interval == 12.0


class TestSimulator:
    def test_output_shapes_and_alignment(self, pairs):
        for raw, matched in pairs:
            assert len(raw) == len(matched) == 17
            assert np.allclose(raw.times, matched.times)

    def test_fixed_sample_interval(self, pairs):
        for raw, _ in pairs:
            assert np.allclose(np.diff(raw.times), 12.0)

    def test_ratios_valid(self, pairs):
        for _, matched in pairs:
            assert np.all(matched.ratios >= 0.0)
            assert np.all(matched.ratios < 1.0)

    def test_consecutive_segments_connected(self, city, pairs):
        """The true trajectory must follow road connectivity."""
        for _, matched in pairs:
            for a, b in zip(matched.segments, matched.segments[1:]):
                if a == b:
                    continue
                # b must be reachable from a within a couple of hops
                hop1 = set(city.out_neighbors[a])
                hop2 = {n for s in hop1 for n in city.out_neighbors[s]}
                hop3 = {n for s in hop2 for n in city.out_neighbors[s]}
                assert int(b) in hop1 | hop2 | hop3

    def test_noise_statistics(self, city):
        sim = TrajectorySimulator(
            city, SimulationConfig(target_points=17, gps_noise_std=20.0, seed=4)
        )
        raw, matched = sim.simulate(1)[0]
        errors = np.linalg.norm(raw.xy - matched.positions(city), axis=1)
        assert 5.0 < errors.mean() < 60.0

    def test_deterministic_given_seed(self, city):
        a = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=5)).simulate(2)
        b = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=5)).simulate(2)
        assert np.allclose(a[0][0].xy, b[0][0].xy)
        assert np.array_equal(a[1][1].segments, b[1][1].segments)

    def test_seed_determinism_bit_identical(self, city):
        """Regression: same seed → *bit-identical* fixes, every field.

        The scenario suite (repro.scenarios) derives every degraded
        regime deterministically from simulator pairs; any float-level
        drift here would silently change scenario matrices and
        curriculum training streams."""
        config = SimulationConfig(target_points=17, sample_interval=12,
                                  gps_noise_std=12.0, seed=5)
        a = TrajectorySimulator(city, config).simulate(4)
        b = TrajectorySimulator(city, config).simulate(4)
        assert len(a) == len(b)
        for (raw_a, matched_a), (raw_b, matched_b) in zip(a, b):
            assert np.array_equal(raw_a.xy, raw_b.xy)
            assert np.array_equal(raw_a.times, raw_b.times)
            assert np.array_equal(matched_a.segments, matched_b.segments)
            assert np.array_equal(matched_a.ratios, matched_b.ratios)
            assert np.array_equal(matched_a.times, matched_b.times)

    def test_different_seeds_diverge(self, city):
        a = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=5)).simulate(2)
        b = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=6)).simulate(2)
        assert not all(np.array_equal(ra.xy, rb.xy)
                       for (ra, _), (rb, _) in zip(a, b))

    def test_elevated_preference_runs(self, city):
        sim = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=6))
        assert sim.simulate(2, prefer_elevated=True)


class TestResample:
    def test_downsample_indices_keep_first_last(self):
        idx = downsample_indices(25, 8)
        assert idx[0] == 0
        assert idx[-1] == 24
        assert idx.tolist() == [0, 8, 16, 24]

    def test_downsample_indices_non_divisible(self):
        idx = downsample_indices(23, 8)
        assert idx.tolist() == [0, 8, 16, 22]

    def test_downsample_validation(self):
        with pytest.raises(ValueError):
            downsample_indices(10, 0)

    def test_downsample_raw(self):
        traj = RawTrajectory(np.random.default_rng(0).normal(size=(17, 2)), np.arange(17.0))
        low = downsample_raw(traj, 8)
        assert len(low) == 3

    def test_linear_interpolate_endpoints(self):
        low = RawTrajectory(np.array([[0.0, 0.0], [100.0, 0.0]]), np.array([0.0, 10.0]))
        dense = linear_interpolate(low, [0.0, 5.0, 10.0])
        assert np.allclose(dense.xy, [[0.0, 0.0], [50.0, 0.0], [100.0, 0.0]])

    def test_epsilon_grid(self):
        grid = epsilon_grid(0.0, 48.0, 12.0)
        assert np.allclose(grid, [0, 12, 24, 36, 48])
        with pytest.raises(ValueError):
            epsilon_grid(0.0, 10.0, 0.0)

    @given(st.integers(2, 40), st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_downsample_indices_properties(self, length, keep):
        idx = downsample_indices(length, keep)
        assert idx[0] == 0 and idx[-1] == length - 1
        assert np.all(np.diff(idx) > 0)
        assert np.all(np.diff(idx) <= keep)


class TestDataset:
    def test_build_samples_alignment(self, city, pairs):
        samples = build_samples(pairs, city, DatasetConfig(keep_every=8))
        for sample in samples:
            assert sample.input_length == 3
            assert sample.target_length == 17
            # Observed steps index into the target grid.
            assert np.allclose(
                sample.raw_low.times, sample.target.times[sample.observed_steps]
            )

    def test_constraint_masks_only_at_observed(self, city, pairs):
        samples = build_samples(pairs, city, DatasetConfig(keep_every=8))
        sample = samples[0]
        for step, entry in enumerate(sample.constraints):
            if step in sample.observed_steps:
                assert entry is not None
                ids, weights = entry
                assert len(ids) == len(weights)
                assert np.all(weights > 0)
            else:
                assert entry is None

    def test_constraint_matrix_dense(self, city, pairs):
        samples = build_samples(pairs, city, DatasetConfig(keep_every=8))
        mat = samples[0].constraint_matrix(city.num_segments)
        assert mat.shape == (17, city.num_segments)
        unobserved = [j for j in range(17) if j not in samples[0].observed_steps]
        assert np.allclose(mat[unobserved], 1.0)

    def test_ground_truth_usually_in_mask(self, city, pairs):
        """With σ=12 m noise the true segment should usually be inside the
        100 m constraint radius."""
        samples = build_samples(pairs, city, DatasetConfig(keep_every=8))
        hits = total = 0
        for sample in samples:
            mat = sample.constraint_matrix(city.num_segments)
            for step in sample.observed_steps:
                total += 1
                hits += bool(mat[step, sample.target.segments[step]] > 0)
        assert hits / total > 0.9

    def test_split_ratios(self, city, pairs):
        samples = build_samples(pairs, city, DatasetConfig(keep_every=8))
        train, val, test = train_val_test_split(samples, (0.5, 0.25, 0.25), seed=3)
        assert len(train) + len(val) + len(test) == len(samples)
        with pytest.raises(ValueError):
            train_val_test_split(samples, (0.5, 0.2, 0.2))

    def test_make_batch_stacks(self, city, pairs):
        samples = build_samples(pairs, city, DatasetConfig(keep_every=8))
        batch = make_batch(samples[:4])
        assert batch.size == 4
        assert batch.input_xy.shape == (4, 3, 2)
        assert batch.target_segments.shape == (4, 17)
        assert batch.constraint_tensor(city.num_segments).shape == (4, 17, city.num_segments)

    def test_make_batch_rejects_mixed_shapes(self, city, pairs):
        samples = build_samples(pairs, city, DatasetConfig(keep_every=8))
        other = build_samples(pairs, city, DatasetConfig(keep_every=4))
        with pytest.raises(ValueError):
            make_batch([samples[0], other[0]])

    def test_iterate_batches_covers_all(self, city, pairs):
        samples = build_samples(pairs, city, DatasetConfig(keep_every=8))
        seen = sum(b.size for b in iterate_batches(samples, 5))
        assert seen == len(samples)

    def test_iterate_batches_buckets_heterogeneous(self, city, pairs):
        a = build_samples(pairs[:6], city, DatasetConfig(keep_every=8))
        b = build_samples(pairs[6:], city, DatasetConfig(keep_every=4))
        batches = list(iterate_batches(a + b, 16))
        assert len(batches) == 2  # one bucket per shape
        for batch in batches:
            assert len({s.input_length for s in batch.samples}) == 1

    def test_drop_last(self, city, pairs):
        samples = build_samples(pairs, city, DatasetConfig(keep_every=8))
        batches = list(iterate_batches(samples, 5, drop_last=True))
        assert all(b.size == 5 for b in batches)
