"""Tests for the process-based replica backend (``repro.cluster.workers``).

The contract under test, in order of importance:

1. **bit-identity** — a process-backed shard returns exactly the bytes an
   in-process shard returns for the same weights and requests;
2. **lifecycle** — a kill -9 mid-request never hangs a future (typed
   retry/dead-letter, respawn), repeated crashes degrade the backend
   instead of respawn-looping, timeouts surface typed, close drains;
3. **operations** — deploy/swap broadcasts reach every worker (acked with
   the new tag) and no request is ever served by a half-swapped worker.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.cluster import (
    BackendDegraded,
    RecoveryCluster,
    ShardMap,
    ShardSpec,
    WorkerCrashed,
    WorkerError,
    WorkerPool,
    WorkerTimeout,
)
from repro.cluster.workers import (
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.core import RNTrajRec, RNTrajRecConfig
from repro.datasets import get_spec, load_dataset
from repro.serve import (
    ModelRegistry,
    RecoveryRequest,
    RecoveryResponse,
    RecoveryService,
    ServeConfig,
)
from repro.trajectory import MatchedTrajectory

TINY = RNTrajRecConfig(hidden_dim=16, num_heads=2, dropout=0.0,
                       receptive_delta=300.0, max_subgraph_nodes=24)


@pytest.fixture(scope="module")
def data():
    return load_dataset("chengdu", num_trajectories=24)


@pytest.fixture(scope="module")
def model(data):
    return RNTrajRec(data.network, TINY).eval()


@pytest.fixture(scope="module")
def requests(data):
    return [RecoveryRequest(s.raw_low.xy, s.raw_low.times, hour=s.hour,
                            holiday=s.holiday, request_id=f"r{i}")
            for i, s in enumerate(data.train[:6])]


def one_shard_map(replicas=2, backend="process", **kwargs):
    return ShardMap(shards=(ShardSpec(name="chengdu", dataset="chengdu",
                                      replicas=replicas, backend=backend,
                                      **kwargs),))


def build_cluster(data, model, **spec_kwargs):
    return RecoveryCluster(one_shard_map(**spec_kwargs),
                           model_factory=lambda spec, network: model,
                           network_factory=lambda spec: data.network)


def make_pool(data, model, workers=1, **kwargs):
    """A bare WorkerPool over the shared tiny model (lifecycle tests)."""
    config = ServeConfig.for_spec(get_spec("chengdu"))
    network = data.network
    state = model.state_dict()
    model_config = model.config

    def factory():
        registry = ModelRegistry(network)
        child = RNTrajRec(network, model_config,
                          grid=registry._shared_grid(model_config))
        child.load_state_dict(state, copy=False)
        registry.add_loaded("default", child, activate=True)
        return RecoveryService(registry, config, shard="pool")

    return WorkerPool(factory, workers=workers, label="pool", **kwargs)


def wait_for(condition, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return True
        time.sleep(interval)
    return False


def assert_same_trajectory(a: MatchedTrajectory, b: MatchedTrajectory):
    np.testing.assert_array_equal(a.segments, b.segments)
    np.testing.assert_array_equal(a.ratios, b.ratios)
    np.testing.assert_array_equal(a.times, b.times)


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------
class TestFrameCodec:
    def test_request_roundtrip(self):
        request = RecoveryRequest(
            xy=np.array([[1.5, -2.25], [1e6, 0.125]]),
            times=np.array([0.0, 17.5]), hour=23, holiday=True,
            request_id="req/样本-1")
        seq, decoded = decode_request(encode_request(41, request))
        assert seq == 41
        np.testing.assert_array_equal(decoded.xy, request.xy)
        np.testing.assert_array_equal(decoded.times, request.times)
        assert (decoded.hour, decoded.holiday, decoded.request_id) == (
            23, True, "req/样本-1")

    def test_response_roundtrip(self):
        response = RecoveryResponse(
            request_id="r9",
            trajectory=MatchedTrajectory(np.array([3, 1, 4]),
                                         np.array([0.0, 0.5, 0.999]),
                                         np.array([0.0, 12.0, 24.0])),
            cached=True, latency_ms=3.25, model="v2", model_tag="v2#7")
        seq, decoded = decode_response(encode_response(7, response),
                                       shard="cd", latency_ms=9.5)
        assert seq == 7
        assert_same_trajectory(decoded.trajectory, response.trajectory)
        assert decoded.cached and decoded.model == "v2"
        assert decoded.model_tag == "v2#7"
        assert decoded.shard == "cd" and decoded.latency_ms == 9.5
        # Decoded arrays are private copies, not views of the frame.
        assert decoded.trajectory.segments.flags.writeable


# ---------------------------------------------------------------------------
# Drop-in equivalence
# ---------------------------------------------------------------------------
class TestProcessBackend:
    def test_spec_validates_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ShardSpec(name="x", dataset="chengdu", backend="threads")
        with pytest.raises(ValueError, match="worker_timeout"):
            ShardSpec(name="x", dataset="chengdu", worker_timeout=-1.0)

    def test_bit_identical_to_inproc(self, data, model, requests):
        with build_cluster(data, model, backend="inproc") as inproc:
            reference = inproc.recover_many(requests)
        with build_cluster(data, model, backend="process") as cluster:
            results = cluster.recover_many(requests)
            assert all(r.ok for r in reference) and all(r.ok for r in results)
            for ref, out in zip(reference, results):
                assert_same_trajectory(ref.response.trajectory,
                                       out.response.trajectory)
                assert out.response.model_tag == ref.response.model_tag
                assert out.response.shard == "chengdu"

            stats = cluster.stats()
            shard = stats["shards"]["chengdu"]
            assert shard["backend"] == "process"
            assert shard["requests"] == len(requests)
            assert not shard["degraded"] and shard["crashes"] == 0
            workers = shard["worker_stats"]
            assert len(workers) == 2
            assert all(w["alive"] and w["rss_mb"] > 0 for w in workers)
            assert sum(w["requests"] for w in workers) == len(requests)
            # Children-aware memory: the rollup covers the worker tree.
            memory = stats["memory"]
            assert memory["processes"] == 3
            assert memory["children_rss_mb"] > 0
            assert memory["rss_mb"] > memory["children_rss_mb"]

    def test_bit_identical_over_artifacts(self, data, model, requests,
                                          tmp_path):
        """Workers mmap-load the same frozen city the parent built; the
        PR 9 equivalence (artifact-loaded ≡ built) must survive IPC."""
        artifact_dir = str(tmp_path / "artifacts")

        def build(backend):
            return RecoveryCluster(one_shard_map(backend=backend),
                                   model_factory=lambda spec, network: model,
                                   network_factory=lambda spec: data.network,
                                   artifact_dir=artifact_dir)

        with build("inproc") as inproc:
            reference = inproc.recover_many(requests)
            assert inproc.shard("chengdu").artifact_info()["source"] == "built"
        with build("process") as cluster:
            assert cluster.shard("chengdu").warm().artifact_source == "loaded"
            results = cluster.recover_many(requests)
        for ref, out in zip(reference, results):
            assert ref.ok and out.ok
            assert_same_trajectory(ref.response.trajectory,
                                   out.response.trajectory)

    def test_request_errors_stay_typed(self, data, model):
        with build_cluster(data, model, replicas=1) as cluster:
            sample = data.train[0]  # routable xy, invalid (reversed) times
            bad = RecoveryRequest(xy=sample.raw_low.xy,
                                  times=sample.raw_low.times[::-1].copy(),
                                  request_id="bad")
            result = cluster.recover_many([bad])[0]
            assert result.status == "error"
            assert result.error  # the worker's RequestError text, verbatim

    def test_close_drains_inflight(self, data, model, requests):
        cluster = build_cluster(data, model, replicas=2)
        shard = cluster.shard("chengdu")
        futures = [shard.submit(r) for r in requests]
        cluster.close()  # close must let already-admitted work finish
        for future, request in zip(futures, requests):
            response = future.result(timeout=60)
            assert response.request_id == request.request_id


# ---------------------------------------------------------------------------
# Hot-swap propagation
# ---------------------------------------------------------------------------
class TestHotSwap:
    @pytest.fixture(scope="class")
    def model_v2(self, data, model):
        rng = np.random.default_rng(11)
        v2 = RNTrajRec(data.network, TINY)
        v2.load_state_dict({k: v + 0.05 * rng.standard_normal(v.shape)
                            for k, v in model.state_dict().items()})
        return v2.eval()

    def test_deploy_and_swap_reach_workers(self, data, model, model_v2,
                                           requests):
        with build_cluster(data, model, replicas=2) as cluster:
            first = cluster.recover_many(requests[:2])
            assert {r.response.model_tag for r in first} == {"default#1"}

            ack = cluster.deploy_model("chengdu", "v2", model_v2,
                                       activate=True)
            assert ack == {"model": "v2", "model_tag": "v2#1"}
            swapped = cluster.recover_many(requests[:2])
            assert {r.response.model_tag for r in swapped} == {"v2#1"}

            ack = cluster.swap_model("chengdu", "default")
            assert ack == {"model": "default", "model_tag": "default#1"}
            back = cluster.recover_many(requests[:2])
            assert {r.response.model_tag for r in back} == {"default#1"}
            for a, b in zip(first, back):
                assert_same_trajectory(a.response.trajectory,
                                       b.response.trajectory)

    def test_rolling_swap_under_load_never_half_swapped(self, data, model,
                                                        model_v2, requests):
        """Every response produced while a swap rolls through the pool
        must be bit-identical to exactly one of the two generations —
        a half-swapped worker would produce a trajectory matching
        neither reference."""
        config = ServeConfig.for_spec(get_spec("chengdu"))
        expected = {}
        for tag, reference_model in (("default#1", model), ("v2#1", model_v2)):
            with RecoveryService.from_model(reference_model,
                                            config) as service:
                expected[tag] = [service.recover(r).trajectory
                                 for r in requests]

        with build_cluster(data, model, replicas=2,
                           max_inflight=64) as cluster:
            shard = cluster.shard("chengdu")
            shard.warm()
            futures = []
            for wave in range(4):
                futures.extend((i, shard.submit(r))
                               for i, r in enumerate(requests))
                if wave == 1:  # mid-load: roll the new generation out
                    shard.deploy("v2", model_v2, activate=True)
            responses = [(i, f.result(timeout=120)) for i, f in futures]

        tags_seen = {r.model_tag for _, r in responses}
        assert tags_seen == {"default#1", "v2#1"}  # the swap landed mid-load
        for i, response in responses:
            reference = expected[response.model_tag][i]
            assert_same_trajectory(response.trajectory, reference)


# ---------------------------------------------------------------------------
# Worker failure paths
# ---------------------------------------------------------------------------
class TestWorkerFailures:
    def test_kill9_mid_request_recovers_every_future(self, data, model,
                                                     requests):
        """kill -9 under load: every pending future resolves (sibling
        retry or typed WorkerCrashed — never a hang), the slot respawns,
        and subsequent traffic is bit-identical to the reference."""
        with build_cluster(data, model, backend="inproc") as inproc:
            reference = inproc.recover_many(requests)

        with build_cluster(data, model, replicas=2,
                           max_inflight=64) as cluster:
            shard = cluster.shard("chengdu")
            shard.warm()
            pids = shard.worker_pids()
            assert len(pids) == 2
            futures = [shard.submit(r) for r in requests * 3]
            os.kill(pids[0], signal.SIGKILL)

            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=120))
                except (WorkerCrashed, WorkerTimeout) as exc:
                    outcomes.append(exc)
            # No future hangs, and failures (if any) are typed.
            assert all(isinstance(o, (RecoveryResponse, WorkerError))
                       for o in outcomes)
            served = [o for o in outcomes if isinstance(o, RecoveryResponse)]
            assert served  # the sibling kept serving through the crash

            assert wait_for(lambda: len(shard.worker_pids()) == 2)
            assert pids[0] not in shard.worker_pids()
            stats = shard.stats()
            assert stats["crashes"] >= 1 and stats["respawns"] >= 1
            assert not stats["degraded"]

            after = cluster.recover_many(requests)
            for ref, out in zip(reference, after):
                assert ref.ok and out.ok
                assert_same_trajectory(ref.response.trajectory,
                                       out.response.trajectory)

    def test_repeated_crashes_degrade_instead_of_respawn_looping(self, data,
                                                                 model,
                                                                 requests):
        pool = make_pool(data, model, workers=1, max_respawns=1)
        pool.start()
        try:
            assert pool.ping()[0]["model_tag"] == "default#1"
            os.kill(pool.pids()[0], signal.SIGKILL)
            assert wait_for(lambda: pool.respawns == 1 and pool.pids())
            os.kill(pool.pids()[0], signal.SIGKILL)
            assert wait_for(lambda: pool.degraded)
            with pytest.raises(BackendDegraded):
                pool.submit_to(0, requests[0])
            assert pool.stats()["crashes"] == 2
        finally:
            pool.close(drain=False)

    def test_wedged_worker_times_out_typed_and_respawns(self, data, model,
                                                        requests):
        pool = make_pool(data, model, workers=1, max_respawns=3,
                         request_timeout=2.0)
        pool.start()
        try:
            baseline = pool.submit_to(0, requests[0]).result(timeout=120)
            pid = pool.pids()[0]
            os.kill(pid, signal.SIGSTOP)  # wedge, don't kill
            future = pool.submit_to(0, requests[1])
            with pytest.raises(WorkerTimeout):
                future.result(timeout=60)
            # The watchdog killed the wedged worker; the slot respawns and
            # serves again, bit-identical.
            assert wait_for(lambda: pool.pids() and pool.pids()[0] != pid)
            again = pool.submit_to(0, requests[0]).result(timeout=120)
            assert_same_trajectory(again.trajectory, baseline.trajectory)
        finally:
            pool.close(drain=False)

    def test_crash_during_deploy_converges_via_replay(self, data, model,
                                                      requests):
        """A worker that dies right after a deploy replays the deploy log
        on respawn and comes back serving the new generation."""
        rng = np.random.default_rng(3)
        v2 = RNTrajRec(data.network, TINY)
        v2.load_state_dict({k: v + 0.05 * rng.standard_normal(v.shape)
                            for k, v in model.state_dict().items()})
        v2.eval()
        with build_cluster(data, model, replicas=1) as cluster:
            shard = cluster.shard("chengdu")
            shard.deploy("v2", v2, activate=True)
            pid = shard.worker_pids()[0]
            os.kill(pid, signal.SIGKILL)
            assert wait_for(
                lambda: shard.worker_pids() and shard.worker_pids()[0] != pid)
            response = shard.submit(requests[0]).result(timeout=120)
            assert response.model_tag == "v2#1"


# ---------------------------------------------------------------------------
# Multi-core behavior (skip-guarded on narrow runners)
# ---------------------------------------------------------------------------
@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="throughput scaling needs >= 4 cores")
def test_two_workers_outrun_one(data, model, requests):
    """On a wide host two decode processes beat one — the reason this
    backend exists.  Guarded rather than failing on 1-2 vCPU runners,
    where the GIL-free win cannot physically appear."""
    def measure(workers):
        pool = make_pool(data, model, workers=workers)
        pool.start()
        try:
            pool.ping()  # warm barrier: measure decode, not fork+warm
            load = [requests[i % len(requests)] for i in range(24)]
            for i, r in enumerate(load):  # prime worker caches equally
                pool.submit_to(i % workers, r).result(timeout=120)
            started = time.perf_counter()
            futures = [pool.submit_to(i % workers, r)
                       for i, r in enumerate(load)]
            for future in futures:
                future.result(timeout=120)
            return time.perf_counter() - started
        finally:
            pool.close(drain=False)

    solo, duo = measure(1), measure(2)
    assert duo < solo / 1.2
