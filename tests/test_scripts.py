"""Tests for the helper scripts (cache population, experiment rendering)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestRenderExperiments:
    def test_renders_without_error(self):
        out = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "render_experiments.py")],
            capture_output=True, text=True, check=True,
        )
        assert "# EXPERIMENTS — paper vs. measured" in out.stdout
        assert "Table III" in out.stdout
        assert "Fig. 7" in out.stdout

    def test_paper_reference_numbers_present(self):
        out = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "render_experiments.py")],
            capture_output=True, text=True, check=True,
        )
        # Spot-check two published values from the paper's Table III.
        assert "0.8272" in out.stdout  # RNTrajRec F1, Chengdu x8
        assert "0.4916" in out.stdout  # Linear+HMM ACC, Chengdu x8


class TestStreamDemo:
    def test_runs_end_to_end(self):
        out = subprocess.run(
            [sys.executable, str(REPO / "examples" / "stream_demo.py")],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        )
        # The demo hard-fails (SystemExit) on finalize/one-shot mismatch or
        # a missing backpressure shed, so a zero exit already proves both;
        # spot-check the narrative anyway.
        assert "identical to one-shot recovery: True" in out.stdout
        assert "SessionOverloaded" in out.stdout
        assert "FAIL" not in out.stdout


class TestPopulateCacheScript:
    def test_job_table_lists_all_jobs(self):
        sys.path.insert(0, str(REPO / "scripts"))
        try:
            import populate_cache

            assert set(populate_cache.JOBS) == {
                "t3a", "t3b", "t3c", "t3d", "t4", "t5", "f6", "f7"
            }
            assert len(populate_cache.METHODS) == 9
        finally:
            sys.path.pop(0)


class TestCacheFormat:
    def test_cached_results_shape(self):
        cache = REPO / "benchmarks" / "_cache"
        # Experiment rows only — the cache also holds standalone benchmark
        # artifacts with their own schema.  Use the same key-based predicate
        # as scripts/render_experiments.py's load_results().
        rows = []
        for path in cache.glob("*.json"):
            with open(path) as handle:
                payload = json.load(handle)
            if "method" in payload and "dataset" in payload:
                rows.append(payload)
        if not rows:
            pytest.skip("benchmark cache not yet populated")
        row = rows[0]
        for key in ("dataset", "method", "metrics", "sr_at_k",
                    "inference_ms_per_trajectory", "num_parameters"):
            assert key in row
        assert set(row["metrics"]) == {
            "Recall", "Precision", "F1 Score", "Accuracy", "MAE", "RMSE"
        }
