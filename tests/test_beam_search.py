"""Tests for beam-search decoding (extension over the paper's greedy)."""

import numpy as np
import pytest

from repro import nn
from repro.core import RNTrajRec, RNTrajRecConfig
from repro.core.decoder import RecoveryDecoder
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import DatasetConfig, SimulationConfig, TrajectorySimulator, build_samples, make_batch

CFG = RNTrajRecConfig(hidden_dim=16, num_heads=2, max_subgraph_nodes=16,
                      receptive_delta=250.0, dropout=0.0)


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))


@pytest.fixture(scope="module")
def batch(city):
    sim = TrajectorySimulator(city, SimulationConfig(target_points=9, seed=2))
    samples = build_samples(sim.simulate(3), city, DatasetConfig(keep_every=4))
    return make_batch(samples)


def test_beam_output_contract(city, batch):
    decoder = RecoveryDecoder(city.num_segments, CFG)
    enc = nn.Tensor(np.random.default_rng(0).normal(size=(batch.size, batch.input_length, CFG.hidden_dim)))
    state = nn.Tensor(np.zeros((batch.size, CFG.hidden_dim)))
    constraint = batch.constraint_tensor(city.num_segments)
    segments, rates = decoder.decode_beam(enc, state, batch.target_length, constraint, beam_width=3)
    assert segments.shape == (batch.size, batch.target_length)
    assert np.all((segments >= 0) & (segments < city.num_segments))
    assert np.all((rates >= 0) & (rates < 1))


def test_beam_width_one_matches_greedy_score_path(city, batch):
    """With beam_width=1 the winning hypothesis is the greedy path."""
    decoder = RecoveryDecoder(city.num_segments, CFG)
    enc = nn.Tensor(np.random.default_rng(1).normal(size=(batch.size, batch.input_length, CFG.hidden_dim)))
    state = nn.Tensor(np.zeros((batch.size, CFG.hidden_dim)))
    constraint = batch.constraint_tensor(city.num_segments)
    greedy_seg, _ = decoder.decode_greedy(enc, state, batch.target_length, constraint)
    beam_seg, _ = decoder.decode_beam(enc, state, batch.target_length, constraint, beam_width=1)
    assert np.array_equal(greedy_seg, beam_seg)


def test_beam_respects_hard_mask(city, batch):
    decoder = RecoveryDecoder(city.num_segments, CFG)
    enc = nn.Tensor(np.random.default_rng(2).normal(size=(batch.size, batch.input_length, CFG.hidden_dim)))
    state = nn.Tensor(np.zeros((batch.size, CFG.hidden_dim)))
    constraint = np.zeros((batch.size, batch.target_length, city.num_segments))
    constraint[:, :, 7] = 1.0
    segments, _ = decoder.decode_beam(enc, state, batch.target_length, constraint, beam_width=3)
    assert np.all(segments == 7)


def test_model_level_beam_recovery(city, batch):
    model = RNTrajRec(city, CFG)
    model.eval()
    seg_greedy, _ = model.recover(batch)
    seg_beam, rates = model.recover(batch, beam_width=3)
    assert seg_beam.shape == seg_greedy.shape
    assert np.all((rates >= 0) & (rates < 1))
