"""Tests for recurrent layers (GRU/LSTM cells and sequence wrappers)."""

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(11)


class TestGRUCell:
    def test_output_shape_and_range(self):
        cell = nn.GRUCell(4, 6)
        h = cell(Tensor(RNG.normal(size=(3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_state_evolves(self):
        cell = nn.GRUCell(2, 3)
        h0 = cell.initial_state(1)
        h1 = cell(Tensor(RNG.normal(size=(1, 2))), h0)
        assert not np.allclose(h1.data, h0.data)

    def test_zero_update_gate_keeps_state(self):
        cell = nn.GRUCell(2, 3)
        # Force z ≈ 0 via a large negative bias: state should barely change.
        cell.b_z.data = np.full(3, -50.0)
        h0 = Tensor(RNG.normal(size=(1, 3)))
        h1 = cell(Tensor(RNG.normal(size=(1, 2))), h0)
        assert np.allclose(h1.data, h0.data, atol=1e-8)

    def test_gradient_through_two_steps(self):
        cell = nn.GRUCell(2, 3)
        x = Tensor(RNG.normal(size=(1, 2)), requires_grad=True)
        h = cell(x, cell.initial_state(1))
        h = cell(x, h)
        h.sum().backward()
        assert np.all(np.isfinite(x.grad))


class TestLSTMCell:
    def test_shapes(self):
        cell = nn.LSTMCell(3, 5)
        h, c = cell(Tensor(RNG.normal(size=(2, 3))), cell.initial_state(2))
        assert h.shape == (2, 5)
        assert c.shape == (2, 5)

    def test_forget_bias_initialized_to_one(self):
        cell = nn.LSTMCell(3, 5)
        assert np.allclose(cell.b_f.data, 1.0)


class TestSequenceWrappers:
    def test_gru_outputs_all_steps(self):
        rnn = nn.GRU(3, 4)
        outputs, final = rnn(Tensor(RNG.normal(size=(2, 7, 3))))
        assert outputs.shape == (2, 7, 4)
        assert final.shape == (2, 4)
        assert np.allclose(outputs.data[:, -1, :], final.data)

    def test_gru_custom_initial_state(self):
        rnn = nn.GRU(3, 4)
        x = Tensor(RNG.normal(size=(2, 3, 3)))
        h0 = Tensor(RNG.normal(size=(2, 4)))
        out_custom, _ = rnn(x, h0)
        out_default, _ = rnn(x)
        assert not np.allclose(out_custom.data, out_default.data)

    def test_lstm_outputs(self):
        rnn = nn.LSTM(3, 4)
        outputs, (h, c) = rnn(Tensor(RNG.normal(size=(2, 5, 3))))
        assert outputs.shape == (2, 5, 4)
        assert h.shape == (2, 4)

    def test_gradient_through_sequence(self):
        rnn = nn.GRU(2, 3)
        x = Tensor(RNG.normal(size=(1, 6, 2)), requires_grad=True)
        outputs, _ = rnn(x)
        outputs.sum().backward()
        assert x.grad.shape == (1, 6, 2)
        # Earlier steps influence later outputs: all grads nonzero-ish.
        assert np.abs(x.grad).sum() > 0


class TestBiGRU:
    def test_output_concatenates_directions(self):
        rnn = nn.BiGRU(3, 8)
        outputs, final = rnn(Tensor(RNG.normal(size=(2, 5, 3))))
        assert outputs.shape == (2, 5, 8)
        assert final.shape == (2, 8)

    def test_odd_hidden_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            nn.BiGRU(3, 7)

    def test_backward_direction_sees_future(self):
        """Perturbing the last timestep must change the first output."""
        rnn = nn.BiGRU(2, 4)
        x = RNG.normal(size=(1, 5, 2))
        base = rnn(Tensor(x.copy()))[0].data[0, 0].copy()
        x[0, -1] += 10.0
        changed = rnn(Tensor(x))[0].data[0, 0]
        assert not np.allclose(base, changed)

    def test_forward_half_ignores_future(self):
        """The forward half of the first output is independent of later steps."""
        rnn = nn.BiGRU(2, 4)
        x = RNG.normal(size=(1, 5, 2))
        base = rnn(Tensor(x.copy()))[0].data[0, 0, :2].copy()
        x[0, -1] += 10.0
        changed = rnn(Tensor(x))[0].data[0, 0, :2]
        assert np.allclose(base, changed)
