"""Tests for the ``repro.cluster`` sharded multi-city serving layer."""

import json
import threading
import time

import numpy as np
import pytest

from repro.cluster import (
    RecoveryCluster,
    RouteError,
    ShardMap,
    ShardOverloaded,
    ShardRouter,
    ShardSpec,
    load_shard_map,
    side_by_side,
)
from repro.core import RNTrajRec, RNTrajRecConfig
from repro.datasets import load_dataset
from repro.roadnet import generate_city, merge_networks
from repro.serve import RecoveryRequest
from repro.trajectory import make_batch


# ---------------------------------------------------------------------------
# Fixtures: one tiny untrained model recipe, a two-city map
# ---------------------------------------------------------------------------
TINY = RNTrajRecConfig(hidden_dim=16, num_heads=2, dropout=0.0,
                       receptive_delta=300.0, max_subgraph_nodes=24)


@pytest.fixture(scope="module")
def data():
    return load_dataset("chengdu", num_trajectories=40)


def tiny_factory(spec, network):
    return RNTrajRec(network, TINY).eval()


def two_city_map(**shard_kwargs):
    return side_by_side(["chengdu", "chengdu"], gap=600.0, **shard_kwargs)


@pytest.fixture()
def cluster(data):
    built = RecoveryCluster(
        two_city_map(),
        model_factory=tiny_factory,
        network_factory=lambda spec: data.network,  # reuse the cached city
    )
    yield built
    built.close()


def _request(sample, request_id="", offset=(0.0, 0.0)):
    return RecoveryRequest(sample.raw_low.xy + np.asarray(offset),
                           sample.raw_low.times, hour=sample.hour,
                           holiday=sample.holiday, request_id=request_id)


# ---------------------------------------------------------------------------
# Shard map and shard-map files
# ---------------------------------------------------------------------------
class TestShardMap:
    def test_side_by_side_boxes_are_disjoint(self):
        smap = side_by_side(["chengdu", "porto", "shanghai"], gap=500.0)
        assert smap.names() == ["chengdu", "porto", "shanghai"]
        boxes = [spec.resolved_bbox() for spec in smap]
        for i, a in enumerate(boxes):
            for b in boxes[i + 1:]:
                assert a[2] <= b[0] or b[2] <= a[0]  # disjoint in x

    def test_overlapping_boxes_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            ShardMap(shards=(
                ShardSpec(name="a", dataset="chengdu", origin=(0.0, 0.0)),
                ShardSpec(name="b", dataset="chengdu", origin=(100.0, 0.0)),
            ))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShardMap(shards=(
                ShardSpec(name="a", dataset="chengdu"),
                ShardSpec(name="a", dataset="chengdu", origin=(5000.0, 0.0)),
            ))

    def test_spec_requires_dataset_or_bbox(self):
        with pytest.raises(ValueError, match="dataset name or an explicit bbox"):
            ShardSpec(name="x")
        spec = ShardSpec(name="x", bbox=(0.0, 0.0, 100.0, 100.0))
        assert spec.resolved_bbox() == (0.0, 0.0, 100.0, 100.0)

    def test_json_round_trip(self, tmp_path):
        payload = {
            "cluster": {"cell_size": 123.0, "dead_letter_capacity": 9},
            "serve": {"max_batch_size": 4, "max_wait_ms": 7.5},
            "shards": [
                {"name": "cd", "dataset": "chengdu", "origin": [0.0, 0.0],
                 "replicas": 2, "max_inflight": 3},
                {"name": "pt", "dataset": "porto", "origin": [2500.0, 0.0],
                 "bundle": "runs/porto_model"},
            ],
        }
        path = tmp_path / "map.json"
        path.write_text(json.dumps(payload))
        smap = load_shard_map(str(path))
        assert smap.cell_size == 123.0
        assert smap.dead_letter_capacity == 9
        assert smap.serve == {"max_batch_size": 4, "max_wait_ms": 7.5}
        assert smap.names() == ["cd", "pt"]
        assert smap.shards[0].replicas == 2
        assert smap.shards[0].max_inflight == 3
        assert smap.shards[1].bundle == "runs/porto_model"

    def test_toml_parses(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # noqa: F841  (py >= 3.11)
        path = tmp_path / "map.toml"
        path.write_text(
            "[cluster]\ncell_size = 150.0\n\n"
            "[serve]\nmax_batch_size = 8\n\n"
            "[[shard]]\nname = \"cd\"\ndataset = \"chengdu\"\n"
            "origin = [0.0, 0.0]\n\n"
            "[[shard]]\nname = \"sh\"\ndataset = \"shanghai\"\n"
            "origin = [3000.0, 0.0]\nreplicas = 2\n"
        )
        smap = load_shard_map(str(path))
        assert smap.names() == ["cd", "sh"]
        assert smap.cell_size == 150.0
        assert smap.shards[1].replicas == 2

    def test_unknown_shard_keys_rejected(self, tmp_path):
        path = tmp_path / "map.json"
        path.write_text(json.dumps({"shards": [
            {"name": "cd", "dataset": "chengdu", "replicsa": 2}]}))
        with pytest.raises(ValueError, match="unknown shard keys"):
            load_shard_map(str(path))

    def test_unknown_serve_keys_rejected_at_parse_time(self, tmp_path):
        """A [serve] typo must fail at load, not as an HTTP 500 on the
        first lazily warmed request."""
        path = tmp_path / "map.json"
        path.write_text(json.dumps({
            "serve": {"max_batchsize": 8},
            "shards": [{"name": "cd", "dataset": "chengdu"}],
        }))
        with pytest.raises(ValueError, match="unknown serve override keys"):
            load_shard_map(str(path))


# ---------------------------------------------------------------------------
# Router edge cases (pure geometry, no models)
# ---------------------------------------------------------------------------
class TestShardRouter:
    BOXES = [(0.0, 0.0, 1000.0, 1000.0), (1500.0, 0.0, 2500.0, 1000.0)]

    def test_routes_interior_traces(self):
        router = ShardRouter(self.BOXES, cell_size=200.0)
        assert router.shard_of_points([[100.0, 100.0], [900.0, 900.0]]) == 0
        assert router.shard_of_points([[1600.0, 500.0], [2400.0, 10.0]]) == 1

    def test_trace_on_shard_boundary_routes_exactly(self):
        """Fixes on the bbox edge belong to the shard (inclusive bounds),
        even though their grid cell's center may lie outside it."""
        router = ShardRouter(self.BOXES, cell_size=300.0)  # 1000/300 ≠ integer
        assert router.shard_of_points([[1000.0, 500.0], [999.9, 400.0]]) == 0
        assert router.shard_of_points([[1500.0, 0.0], [1500.0, 1000.0]]) == 1

    def test_outside_all_shards(self):
        router = ShardRouter(self.BOXES, cell_size=200.0)
        with pytest.raises(RouteError) as err:
            router.shard_of_points([[100.0, 100.0], [1200.0, 500.0]])
        assert err.value.reason == "outside"  # 1200 is in the corridor gap
        with pytest.raises(RouteError) as err:
            router.shard_of_points([[-500.0, -500.0], [-400.0, -500.0]])
        assert err.value.reason == "outside"

    def test_straddling_trace_rejected(self):
        router = ShardRouter(self.BOXES, cell_size=200.0)
        with pytest.raises(RouteError) as err:
            router.shard_of_points([[900.0, 500.0], [1600.0, 500.0]])
        assert err.value.reason == "straddle"

    def test_coverage_counts_owned_cells(self):
        router = ShardRouter(self.BOXES, cell_size=250.0)
        owned, total = router.coverage()
        assert 0 < owned < total  # the corridor between the boxes is unowned


# ---------------------------------------------------------------------------
# Cluster end to end: routing, localization, dead letters
# ---------------------------------------------------------------------------
class TestClusterRouting:
    def test_lazy_warm_up_and_localized_equivalence(self, data, cluster):
        """Shards materialize on first routed request, and a trace routed
        into the translated city recovers exactly what a direct local
        recovery produces."""
        assert not any(shard.materialized for shard in cluster.shards)
        sample = data.test[0]
        origin = cluster.shard("chengdu-2").spec.origin
        response = cluster.recover(_request(sample, "b", offset=origin),
                                   timeout=300.0)
        assert cluster.shard("chengdu-2").materialized
        assert not cluster.shard("chengdu").materialized  # untouched sibling
        assert response.shard == "chengdu-2"
        assert response.model_tag == "default#1"

        model = cluster.shard("chengdu-2").registry.load("default")
        direct = model.recover_trajectories(make_batch([sample]))[0]
        assert np.array_equal(direct.segments, response.trajectory.segments)
        assert np.allclose(direct.ratios, response.trajectory.ratios)

    def test_unroutable_traces_dead_letter(self, data, cluster):
        sample = data.test[0]
        origin = cluster.shard("chengdu-2").spec.origin
        straddle_xy = np.vstack([sample.raw_low.xy[:1],
                                 sample.raw_low.xy[1:2] + np.asarray(origin)])
        results = cluster.recover_many([
            _request(sample, "ok"),
            RecoveryRequest([[99000.0, 0.0], [99100.0, 0.0]],
                            [0.0, 96.0], request_id="lost"),
            RecoveryRequest(straddle_xy, sample.raw_low.times[:2],
                            request_id="crossing"),
        ], timeout=300.0)
        assert [r.status for r in results] == ["ok", "unroutable", "unroutable"]
        letters = cluster.dead_letters()
        assert [letter["request_id"] for letter in letters] == ["lost", "crossing"]
        assert [letter["reason"] for letter in letters] == ["outside", "straddle"]
        stats = cluster.stats()
        assert stats["router"]["unroutable_by_reason"] == {
            "outside": 1, "straddle": 1}
        assert stats["cluster"]["requests"] == 1

    def test_submit_future_fails_with_route_error(self, cluster):
        future = cluster.submit(RecoveryRequest(
            [[99000.0, 0.0], [99100.0, 0.0]], [0.0, 96.0], request_id="x"))
        with pytest.raises(RouteError):
            future.result(timeout=10.0)


# ---------------------------------------------------------------------------
# Backpressure: bounded admission, round-robin replicas, shedding
# ---------------------------------------------------------------------------
class TestShedding:
    def _slow_cluster(self, data, replicas=1, max_inflight=1):
        smap = ShardMap(shards=(
            ShardSpec(name="cd", dataset="chengdu", replicas=replicas,
                      max_inflight=max_inflight),
        ), serve={"max_wait_ms": 400.0, "max_batch_size": 1})
        return RecoveryCluster(smap, model_factory=tiny_factory,
                               network_factory=lambda spec: data.network)

    def test_all_replicas_saturated_sheds(self, data):
        """With every replica at its admission bound, further submits shed
        with ShardOverloaded instead of queueing; draining re-opens
        admission."""
        cluster = self._slow_cluster(data, replicas=2, max_inflight=1)
        try:
            sample = data.test[0]
            # Two admitted, one per replica; each replica is now busy
            # decoding (a single decode takes tens of ms) ...
            admitted = [cluster.submit(_request(sample, f"a{i}"))
                        for i in range(2)]
            # ... so the rest of the burst must shed, synchronously.
            results = cluster.recover_many(
                [_request(sample, f"s{i}") for i in range(4)], timeout=0.5)
            assert [r.status for r in results] == ["shed"] * 4
            assert all(r.shard == "cd" for r in results)
            stats = cluster.stats()
            assert stats["shards"]["cd"]["shed"] == 4
            assert stats["shards"]["cd"]["inflight"] <= 2  # bounded, not queued
            assert stats["router"]["shed_by_shard"] == {"cd": 4}
            sheds = [l for l in cluster.dead_letters() if l["reason"] == "shed"]
            assert len(sheds) == 4

            for future in admitted:  # the admitted pair still completes
                future.result(timeout=300.0)
            # Admission re-opens once in-flight work drains.
            reopened = cluster.recover(_request(sample, "again"), timeout=300.0)
            assert reopened.shard == "cd"
        finally:
            cluster.close()

    def test_replicas_drain_round_robin(self, data):
        cluster = self._slow_cluster(data, replicas=2, max_inflight=4)
        try:
            shard = cluster.shard("cd")
            shard.warm()
            picks = [shard._pick_replica() for _ in range(4)]
            assert picks == [0, 1, 0, 1]
        finally:
            cluster.close()


# ---------------------------------------------------------------------------
# Hot swap: one shard's rollout never touches siblings
# ---------------------------------------------------------------------------
class TestHotSwap:
    def test_swap_one_shard_while_sibling_serves(self, data, cluster):
        sample = data.test[0]
        origin2 = cluster.shard("chengdu-2").spec.origin
        first_a = cluster.recover(_request(sample, "a1"), timeout=300.0)
        first_b = cluster.recover(_request(sample, "b1", offset=origin2),
                                  timeout=300.0)
        assert first_a.model_tag == first_b.model_tag == "default#1"

        # Roll a new generation onto chengdu only, while chengdu-2 serves
        # a concurrent request.
        replacement = RNTrajRec(cluster.shard("chengdu").network, TINY).eval()
        inflight = cluster.submit(_request(sample, "b2", offset=origin2))
        deployed = cluster.deploy_model("chengdu", "v2", replacement)
        assert deployed == {"model": "v2", "model_tag": "v2#1"}

        after_a = cluster.recover(_request(sample, "a2"), timeout=300.0)
        after_b = cluster.recover(_request(sample, "b3", offset=origin2),
                                  timeout=300.0)
        assert inflight.result(timeout=300.0).model_tag == "default#1"
        # Swapped shard serves the new generation, uncached (keys fold the
        # model tag) and equal to the replacement model's direct output.
        assert after_a.model_tag == "v2#1"
        assert not after_a.cached
        direct = replacement.recover_trajectories(make_batch([sample]))[0]
        assert np.array_equal(direct.segments, after_a.trajectory.segments)
        # The sibling still serves its original generation — from cache.
        assert after_b.model_tag == "default#1"
        assert after_b.cached

        stats = cluster.stats()
        assert stats["shards"]["chengdu"]["deploys"] == 1
        assert stats["shards"]["chengdu-2"]["deploys"] == 0
        assert set(stats["shards"]["chengdu"]["requests_by_model"]) == {
            "default#1", "v2#1"}

    def test_rolling_deploys_keep_at_most_two_generations(self, cluster):
        """Sustained rollouts must not accumulate models: after each
        activation only the new generation and its immediate predecessor
        (instant rollback) stay resident."""
        shard = cluster.shard("chengdu")
        shard.warm()
        for i in range(4):
            shard.deploy(f"roll{i}", RNTrajRec(shard.network, TINY).eval())
        assert shard.registry.names() == ["roll2", "roll3"]
        assert shard.active_model()["model"] == "roll3"
        # The predecessor still swaps back in without a reload from disk.
        shard.swap("roll2")
        assert shard.active_model()["model"] == "roll2"

    def test_swap_unknown_shard_raises(self, cluster):
        with pytest.raises(KeyError):
            cluster.swap_model("nope", "v2")


# ---------------------------------------------------------------------------
# Telemetry rollup
# ---------------------------------------------------------------------------
class TestStatsRollup:
    def test_rolled_up_shape_and_profile_section(self, data, cluster):
        from repro import profile

        sample = data.test[0]
        profile.reset()
        profile.enable()
        try:
            cluster.recover(_request(sample, "p"), timeout=300.0)
            stats = cluster.stats()
        finally:
            profile.disable()

        for key in ("shards", "materialized", "requests", "cache_hits",
                    "shed", "unroutable", "latency_ms_p50", "latency_ms_p99"):
            assert key in stats["cluster"]
        assert stats["cluster"]["requests"] == 1
        assert stats["router"]["routed_by_shard"] == {"chengdu": 1}
        shard = stats["shards"]["chengdu"]
        assert shard["requests_by_model"] == {"default#1": 1}
        assert len(shard["replica_stats"]) == shard["replicas"]
        # profile.enable() makes the rollup carry the section registry.
        # The continuous scheduler admits (encode + constraint) and sweeps
        # the slot table under its own sections.
        assert "serve.admit" in stats["profile"]["sections"]
        assert "engine.step" in stats["profile"]["sections"]
        json.dumps(stats)  # the whole snapshot must be JSON-serializable

    def test_merge_networks_offsets_and_renumbers(self, data):
        merged = merge_networks([data.network, data.network],
                                [(0.0, 0.0), (5000.0, 0.0)])
        n = data.network.num_segments
        assert merged.num_segments == 2 * n
        assert len(merged.edges) == 2 * len(data.network.edges)
        left = data.network.segments[3].polyline
        right = merged.segments[n + 3].polyline
        assert np.allclose(right, left + np.array([5000.0, 0.0]))
        x0, _, x1, _ = merged.bounds()
        assert x1 - x0 > 5000.0
