"""Tests for zero-copy shared-memory city artifacts.

Three layers, mirroring the PR's structure:

* ``repro.nn.serialization`` — the aligned uncompressed archive format and
  its opt-in ``mmap=True`` reader (zero-copy, read-only, 64-byte aligned);
* ``from_arrays`` constructors — ``RoadNetwork`` / ``Grid`` /
  ``ReachabilityMask`` rebuilt from externally owned (write-protected)
  buffers must behave bit-identically to their built-in-memory twins;
* ``CityArtifacts`` + serving rewire — a frozen bundle loads back into a
  registry/shard whose models *share* (identity, not equality) one
  physical copy of every immutable structure and recover bit-identically.
"""

import json
import os

import numpy as np
import pytest

from repro.cluster import ShardSpec
from repro.cluster.shard import Shard
from repro.core import RNTrajRec, RNTrajRecConfig
from repro.core.decoder import ReachabilityMask
from repro.datasets import load_dataset
from repro.nn.serialization import (
    ALIGNMENT,
    load_archive,
    load_checkpoint,
    save_archive,
    save_checkpoint,
)
from repro import profile
from repro.roadnet import CityArtifacts
from repro.serve import ModelRegistry, RecoveryRequest, RecoveryService, ServeConfig
from repro.trajectory import make_padded_batch

TINY = RNTrajRecConfig(hidden_dim=16, num_heads=2, dropout=0.0,
                       receptive_delta=300.0, max_subgraph_nodes=24)


@pytest.fixture(scope="module")
def data():
    return load_dataset("chengdu", num_trajectories=40)


@pytest.fixture(scope="module")
def model(data):
    return RNTrajRec(data.network, TINY).eval()


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory, data, model):
    directory = tmp_path_factory.mktemp("artifacts") / "chengdu"
    CityArtifacts.build(data.network, model=model).save(str(directory))
    return str(directory)


# ---------------------------------------------------------------------------
# Aligned archive format + mmap reader
# ---------------------------------------------------------------------------
class TestAlignedArchive:
    def _arrays(self):
        rng = np.random.default_rng(3)
        return {
            "weights": rng.normal(size=(37, 13)),          # odd shapes: the
            "indices": rng.integers(0, 99, size=201),      # header padding
            "flags": rng.random(11) > 0.5,                 # must still align
            "scalar": np.array(4.25),
            "empty": np.zeros((0, 4)),
        }

    def test_round_trip_copy_and_mmap(self, tmp_path):
        arrays = self._arrays()
        path = save_archive(arrays, str(tmp_path / "a.npz"))
        for mmap in (False, True):
            loaded = load_archive(path, mmap=mmap)
            assert set(loaded) == set(arrays)
            for name, value in arrays.items():
                assert loaded[name].dtype == value.dtype
                assert np.array_equal(loaded[name], value)

    def test_numpy_can_read_the_aligned_archive(self, tmp_path):
        """The aligned writer stays a valid ordinary .npz."""
        arrays = self._arrays()
        path = save_archive(arrays, str(tmp_path / "a.npz"))
        with np.load(path) as handle:
            for name, value in arrays.items():
                assert np.array_equal(handle[name], value)

    def test_mmap_views_are_zero_copy_and_aligned(self, tmp_path):
        arrays = self._arrays()
        path = save_archive(arrays, str(tmp_path / "a.npz"))
        loaded = load_archive(path, mmap=True)
        for name, view in loaded.items():
            if view.size == 0:
                continue
            assert isinstance(view, np.memmap), name
            assert view.ctypes.data % ALIGNMENT == 0, name

    def test_mmap_views_are_write_protected(self, tmp_path):
        path = save_archive(self._arrays(), str(tmp_path / "a.npz"))
        loaded = load_archive(path, mmap=True)
        for name, view in loaded.items():
            assert not view.flags.writeable, name
            if view.size:
                with pytest.raises((ValueError, TypeError)):
                    view[...] = 0

    def test_deterministic_bytes(self, tmp_path):
        arrays = self._arrays()
        a = save_archive(arrays, str(tmp_path / "a.npz"))
        b = save_archive(arrays, str(tmp_path / "b.npz"))
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_legacy_compressed_archive_falls_back_to_copies(self, tmp_path):
        arrays = {k: v for k, v in self._arrays().items() if k != "empty"}
        path = str(tmp_path / "legacy.npz")
        np.savez_compressed(path, **arrays)
        loaded = load_archive(path, mmap=True)
        for name, value in arrays.items():
            assert np.array_equal(loaded[name], value)
            assert not loaded[name].flags.writeable  # still read-only

    def test_checkpoint_mmap_round_trip(self, data, model, tmp_path):
        path = save_checkpoint(model, str(tmp_path / "ckpt.npz"))
        twin = RNTrajRec(data.network, TINY)
        load_checkpoint(twin, path, mmap=True)
        twin.eval()
        for name, value in model.state_dict().items():
            assert np.array_equal(twin.state_dict()[name], value)
        # mmap adoption means the twin's parameters are frozen views.
        some_param = next(iter(twin.parameters()))
        with pytest.raises((ValueError, TypeError)):
            some_param.data[...] = 0.0


# ---------------------------------------------------------------------------
# from_arrays equivalence: network / grid / reachability
# ---------------------------------------------------------------------------
class TestFromArrays:
    @pytest.fixture(scope="class")
    def packed(self, artifact_dir):
        return CityArtifacts.load(artifact_dir, mmap=True)

    def test_network_queries_bit_identical(self, data, packed):
        built, loaded = data.network, packed.network()
        assert loaded.num_segments == built.num_segments
        rng = np.random.default_rng(11)
        x0, y0, x1, y1 = built.bounds()
        points = np.column_stack([rng.uniform(x0, x1, 64),
                                  rng.uniform(y0, y1, 64)])
        for x, y in points[:8]:
            assert (sorted(built.segments_within(x, y, 150.0))
                    == sorted(loaded.segments_within(x, y, 150.0)))
            assert built.nearest_segment(x, y) == loaded.nearest_segment(x, y)
        a = built.segments_within_batch(points, 120.0)
        b = loaded.segments_within_batch(points, 120.0)
        for row_a, row_b in zip(a, b):
            assert np.array_equal(row_a, row_b)

    def test_network_lazy_views_match(self, data, packed):
        built, loaded = data.network, packed.network()
        assert loaded.edges == built.edges
        assert loaded.out_neighbors == built.out_neighbors
        assert loaded.in_neighbors == built.in_neighbors
        assert np.array_equal(loaded.edge_index(), built.edge_index())
        assert np.array_equal(loaded.edge_index_loops(),
                              built.edge_index_loops())
        assert np.array_equal(loaded.static_features(),
                              built.static_features())
        for ours, theirs in zip(loaded.segments[:16], built.segments[:16]):
            assert np.array_equal(ours.polyline, theirs.polyline)

    def test_packed_static_features_write_protected(self, packed):
        static = packed.network().static_features()
        with pytest.raises((ValueError, TypeError)):
            static[0, 0] = 1.0

    def test_grid_round_trips_exact_floats(self, data, packed, model):
        built = data.network.make_grid(model.config.grid_cell_size)
        loaded = packed.grid()
        assert loaded is not None
        assert (loaded.x0, loaded.y0, loaded.x1, loaded.y1,
                loaded.cell_size) == (built.x0, built.y0, built.x1,
                                      built.y1, built.cell_size)

    def test_grid_sequences_shared_and_identical(self, data, packed, model):
        grid = packed.grid()
        seq, mask = packed.network().grid_sequences(grid)
        built_seq, built_mask = data.network.grid_sequences(
            data.network.make_grid(model.config.grid_cell_size))
        assert np.array_equal(seq, built_seq)
        assert np.array_equal(mask, built_mask)
        again, _ = packed.network().grid_sequences(grid)
        assert again is seq  # memoized, not rebuilt

    def test_reachability_bit_identical(self, data, packed, model):
        built = ReachabilityMask(data.network.out_neighbors,
                                 hops=model.config.reachability_hops)
        loaded = packed.reachability()
        assert loaded is not None
        assert loaded.hops == built.hops
        assert loaded.num_nodes == built.num_nodes
        for node in range(0, built.num_nodes, 37):
            assert np.array_equal(loaded._sets[node], built._sets[node])


# ---------------------------------------------------------------------------
# CityArtifacts bundle + registry sharing + recovery equivalence
# ---------------------------------------------------------------------------
class TestCityArtifacts:
    def test_round_trip_with_verification(self, artifact_dir):
        loaded = CityArtifacts.load(artifact_dir, mmap=True, verify=True)
        assert loaded.content_digest
        assert loaded.has_model()
        manifest = json.loads(
            open(os.path.join(artifact_dir, "manifest.json")).read())
        assert manifest["content_hash"] == loaded.content_digest

    def test_recovery_bit_identical_to_source_model(self, data, model,
                                                    artifact_dir):
        registry = ModelRegistry(
            artifacts=CityArtifacts.load(artifact_dir, mmap=True))
        packed_model = registry.register_artifact_model("default",
                                                        activate=True)
        samples = data.test[:3]
        batch, lengths = make_padded_batch(samples)
        want = model.recover_padded(batch, lengths)
        got = packed_model.recover_padded(*make_padded_batch(samples))
        for ours, theirs in zip(got, want):
            assert np.array_equal(ours.segments, theirs.segments)
            assert np.array_equal(np.asarray(ours.ratios),
                                  np.asarray(theirs.ratios))

    def test_registries_share_one_artifact_set(self, artifact_dir):
        artifacts = CityArtifacts.load(artifact_dir, mmap=True)
        first = ModelRegistry(artifacts=artifacts)
        second = ModelRegistry(artifacts=artifacts)
        model_a = first.register_artifact_model("default", activate=True)
        model_b = second.register_artifact_model("default", activate=True)
        # Identity, not equality: one physical copy behind N registries.
        assert first.network is second.network
        assert model_a.encoder.grid is model_b.encoder.grid
        assert model_a._reachability is not None
        state = artifacts.model_state()
        for name, param in model_a.named_parameters():
            assert np.shares_memory(param.data, state[name]), name
        for name, param in model_b.named_parameters():
            assert np.shares_memory(param.data, state[name]), name

    def test_packed_model_is_frozen(self, artifact_dir):
        registry = ModelRegistry(
            artifacts=CityArtifacts.load(artifact_dir, mmap=True))
        packed_model = registry.register_artifact_model("default",
                                                        activate=True)
        param = next(iter(packed_model.parameters()))
        with pytest.raises((ValueError, TypeError)):
            param.data[...] = 0.0

    def test_road_feature_cache_is_adopted(self, artifact_dir):
        artifacts = CityArtifacts.load(artifact_dir, mmap=True)
        registry = ModelRegistry(artifacts=artifacts)
        packed_model = registry.register_artifact_model("default",
                                                        activate=True)
        cache = packed_model.encoder._road_cache
        assert cache is not None
        assert np.shares_memory(cache.data, artifacts.road_features())


# ---------------------------------------------------------------------------
# Shard warm: build-on-first-boot, mmap-load ever after
# ---------------------------------------------------------------------------
class TestShardArtifacts:
    def _spec(self):
        return ShardSpec(name="chengdu", dataset="chengdu", replicas=2)

    def _factory(self, data):
        def factory(spec, network):
            return RNTrajRec(data.network, TINY).eval()
        return factory

    def test_first_warm_builds_then_loads(self, data, tmp_path):
        serve = {"max_batch_size": 4, "max_wait_ms": 30.0}
        first = Shard(self._spec(), model_factory=self._factory(data),
                      network_factory=lambda spec: data.network,
                      serve_overrides=serve, artifact_dir=str(tmp_path))
        first.warm()
        assert first.artifact_info()["source"] == "built"
        assert CityArtifacts.exists(os.path.join(str(tmp_path), "chengdu"))

        second = Shard(self._spec(), model_factory=self._factory(data),
                       network_factory=lambda spec: data.network,
                       serve_overrides=serve, artifact_dir=str(tmp_path))
        second.warm()
        assert second.artifact_info()["source"] == "loaded"
        assert second.stats()["artifacts"]["source"] == "loaded"

        sample = data.test[0]
        request = RecoveryRequest(sample.raw_low.xy, sample.raw_low.times,
                                  hour=sample.hour, holiday=sample.holiday,
                                  request_id="r")
        built_out = first.submit(request).result(timeout=120.0)
        loaded_out = second.submit(request).result(timeout=120.0)
        assert np.array_equal(built_out.trajectory.segments,
                              loaded_out.trajectory.segments)
        assert np.array_equal(np.asarray(built_out.trajectory.ratios),
                              np.asarray(loaded_out.trajectory.ratios))
        first.close()
        second.close()

    def test_replicas_share_the_loaded_artifact_network(self, data, tmp_path):
        seed = Shard(self._spec(), model_factory=self._factory(data),
                     network_factory=lambda spec: data.network,
                     artifact_dir=str(tmp_path))
        seed.warm()
        seed.close()
        shard = Shard(self._spec(), model_factory=self._factory(data),
                      network_factory=lambda spec: data.network,
                      artifact_dir=str(tmp_path))
        shard.warm()
        # Every replica serves off ONE registry pinning ONE mmap network.
        services = shard._services
        assert len(services) == 2
        assert services[0].registry is services[1].registry
        assert shard.registry.artifacts is not None
        shard.close()


# ---------------------------------------------------------------------------
# Memory telemetry
# ---------------------------------------------------------------------------
class TestMemoryTelemetry:
    def test_memory_snapshot_sane(self):
        snapshot = profile.memory_snapshot()
        assert snapshot["rss_mb"] > 0
        assert snapshot["peak_rss_mb"] >= snapshot["rss_mb"]

    def test_serving_stats_report_rss(self, data, model):
        service = RecoveryService.from_model(
            model, ServeConfig.for_dataset(data, max_batch_size=4))
        try:
            stats = service.stats()
        finally:
            service.close()
        assert stats["rss_mb"] > 0
        assert stats["peak_rss_mb"] >= stats["rss_mb"]
