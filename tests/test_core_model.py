"""Integration tests: decoder, losses, full RNTrajRec training loop."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    RNTrajRec,
    RNTrajRecConfig,
    TrainConfig,
    Trainer,
    quick_accuracy,
)
from repro.core.decoder import ReachabilityMask, RecoveryDecoder, interpolation_prior
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    DatasetConfig,
    SimulationConfig,
    TrajectorySimulator,
    build_samples,
    make_batch,
    train_val_test_split,
)

CFG = RNTrajRecConfig(hidden_dim=16, num_heads=2, max_subgraph_nodes=16,
                      receptive_delta=250.0, dropout=0.0)


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))


@pytest.fixture(scope="module")
def samples(city):
    sim = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=2))
    pairs = sim.simulate(24)
    return build_samples(pairs, city, DatasetConfig(keep_every=8))


@pytest.fixture(scope="module")
def batch(samples):
    return make_batch(samples[:6])


class TestDecoder:
    def test_teacher_forcing_output_shapes(self, city, batch):
        decoder = RecoveryDecoder(city.num_segments, CFG)
        enc = nn.Tensor(np.random.default_rng(0).normal(size=(batch.size, batch.input_length, CFG.hidden_dim)))
        state = nn.Tensor(np.zeros((batch.size, CFG.hidden_dim)))
        constraint = batch.constraint_tensor(city.num_segments)
        out = decoder.forward_teacher(enc, state, batch, constraint, teacher_forcing_ratio=1.0)
        assert out.segment_log_probs.shape == (batch.size, batch.target_length, city.num_segments)
        assert out.rates.shape == (batch.size, batch.target_length)
        # log-probabilities: each row sums to ~1 in probability space.
        probs = np.exp(out.segment_log_probs.data)
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-6)

    def test_scheduled_sampling_differs(self, city, batch):
        decoder = RecoveryDecoder(city.num_segments, CFG)
        enc = nn.Tensor(np.random.default_rng(0).normal(size=(batch.size, batch.input_length, CFG.hidden_dim)))
        state = nn.Tensor(np.zeros((batch.size, CFG.hidden_dim)))
        constraint = batch.constraint_tensor(city.num_segments)
        full = decoder.forward_teacher(enc, state, batch, constraint, 1.0)
        sampled = decoder.forward_teacher(
            enc, state, batch, constraint, 0.0, rng=np.random.default_rng(1)
        )
        assert not np.allclose(full.segment_log_probs.data, sampled.segment_log_probs.data)

    def test_greedy_respects_hard_mask(self, city, batch):
        decoder = RecoveryDecoder(city.num_segments, CFG)
        enc = nn.Tensor(np.random.default_rng(0).normal(size=(batch.size, batch.input_length, CFG.hidden_dim)))
        state = nn.Tensor(np.zeros((batch.size, CFG.hidden_dim)))
        # Force every step to allow only segment 3.
        constraint = np.zeros((batch.size, batch.target_length, city.num_segments))
        constraint[:, :, 3] = 1.0
        segments, rates = decoder.decode_greedy(enc, state, batch.target_length, constraint)
        assert np.all(segments == 3)
        assert np.all((rates >= 0) & (rates < 1))

    def test_greedy_shapes_without_mask(self, city, batch):
        decoder = RecoveryDecoder(city.num_segments, CFG)
        enc = nn.Tensor(np.random.default_rng(0).normal(size=(batch.size, batch.input_length, CFG.hidden_dim)))
        state = nn.Tensor(np.zeros((batch.size, CFG.hidden_dim)))
        segments, rates = decoder.decode_greedy(enc, state, batch.target_length, None)
        assert segments.shape == (batch.size, batch.target_length)


class TestReachability:
    def test_sets_contain_self_and_neighbors(self, city):
        mask = ReachabilityMask(city.out_neighbors, hops=1)
        for sid in range(0, city.num_segments, 23):
            reachable = set(mask._sets[sid].tolist())
            assert sid in reachable
            assert set(city.out_neighbors[sid]) <= reachable

    def test_hops_grow_sets(self, city):
        one = ReachabilityMask(city.out_neighbors, hops=1)
        two = ReachabilityMask(city.out_neighbors, hops=2)
        assert len(two._sets[0]) >= len(one._sets[0])

    def test_combine_soft_downweights(self, city):
        mask = ReachabilityMask(city.out_neighbors, hops=1, escape_weight=0.1)
        previous = np.array([0])
        out = mask.combine(np.ones((1, city.num_segments)), previous, city.num_segments)
        reachable = mask._sets[0]
        assert np.allclose(out[0, reachable], 1.0)
        unreachable = np.setdiff1d(np.arange(city.num_segments), reachable)
        assert np.allclose(out[0, unreachable], 0.1)


class TestInterpolationPrior:
    def test_shape_and_floor(self, city, batch):
        prior = interpolation_prior(batch, city, scale=150.0, floor=0.005)
        assert prior.shape == (batch.size, batch.target_length, city.num_segments)
        assert prior.min() >= 0.005
        assert prior.max() <= 1.0

    def test_anchors_weight_near_segments_higher(self, city, batch):
        prior = interpolation_prior(batch, city, scale=150.0, floor=0.005)
        sample = batch.samples[0]
        step = int(sample.observed_steps[0])
        x, y = sample.raw_low.xy[0]
        near_sid, _, _ = city.nearest_segment(float(x), float(y))
        assert prior[0, step, near_sid] > 0.5


class TestRNTrajRecEndToEnd:
    def test_loss_components_finite(self, city, batch):
        model = RNTrajRec(city, CFG)
        breakdown = model.compute_loss(batch)
        summary = breakdown.summary()
        for key in ("total", "L_id", "L_rate", "L_enc"):
            assert np.isfinite(summary[key]), key
        assert summary["L_enc"] != 0.0  # graph loss active by default

    def test_ablated_gcl_loss_zero(self, city, batch):
        model = RNTrajRec(city, CFG.ablation("gcl"))
        assert model.compute_loss(batch).graph_loss == 0.0

    def test_short_training_reduces_loss(self, city, samples):
        model = RNTrajRec(city, CFG)
        trainer = Trainer(model, TrainConfig(epochs=4, batch_size=8, learning_rate=5e-3,
                                             validate=False))
        result = trainer.fit(samples)
        assert result.history[-1].loss < result.history[0].loss

    def test_recover_output_contract(self, city, batch):
        model = RNTrajRec(city, CFG)
        segments, rates = model.recover(batch)
        assert segments.shape == (batch.size, batch.target_length)
        assert segments.dtype == np.int64
        assert np.all((segments >= 0) & (segments < city.num_segments))
        assert np.all((rates >= 0) & (rates < 1))

    def test_recover_trajectories_objects(self, city, batch):
        model = RNTrajRec(city, CFG)
        out = model.recover_trajectories(batch)
        assert len(out) == batch.size
        for traj, sample in zip(out, batch.samples):
            assert len(traj) == sample.target_length
            assert np.allclose(traj.times, sample.target.times)

    def test_checkpoint_roundtrip_preserves_predictions(self, city, batch, tmp_path):
        model = RNTrajRec(city, CFG)
        model.eval()
        seg1, _ = model.recover(batch)
        path = str(tmp_path / "model.npz")
        nn.save_checkpoint(model, path)
        clone = RNTrajRec(city, CFG)
        nn.load_checkpoint(clone, path)
        clone.eval()
        seg2, _ = clone.recover(batch)
        assert np.array_equal(seg1, seg2)

    def test_quick_accuracy_range(self, city, samples):
        model = RNTrajRec(city, CFG)
        acc = quick_accuracy(model, samples[:8], batch_size=8)
        assert 0.0 <= acc <= 1.0

    def test_trainer_validation_hook(self, city, samples):
        model = RNTrajRec(city, CFG)
        train, val, _ = train_val_test_split(samples, seed=0)
        seen = []
        trainer = Trainer(model, TrainConfig(epochs=1, batch_size=8, validate=True))
        trainer.fit(train, val, progress=seen.append)
        assert len(seen) == 1
        assert seen[0].val_accuracy is not None

    def test_all_parameters_receive_gradients(self, city, batch):
        model = RNTrajRec(city, CFG)
        model.compute_loss(batch, teacher_forcing_ratio=1.0).total.backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no gradient for: {missing}"
