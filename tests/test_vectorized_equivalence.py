"""Equivalence tests: vectorized hot paths vs pre-vectorization references.

Every vectorized implementation introduced by the hot-path sweep must
reproduce its reference twin from :mod:`repro.core.reference` on
randomized inputs — bitwise wherever the floating-point operations are
order-preserved, and to ulp precision where vectorized SIMD transcendental
kernels may legitimately differ from their scalar counterparts (see the
interpolation-prior test).
"""

import numpy as np
import pytest

from repro import nn
from repro.core import RNTrajRec, RNTrajRecConfig, reference
from repro.core.decoder import ReachabilityMask, RecoveryDecoder, interpolation_prior
from repro.core.subgraph_gen import SubGraphGenerator
from repro.nn.graph import ragged_positions
from repro.nn.tensor import Tensor, no_grad, scatter_sum_array
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    DatasetConfig,
    SimulationConfig,
    TrajectorySimulator,
    build_samples,
    make_batch,
)
from repro.trajectory.dataset import constraint_for_fix

CFG = RNTrajRecConfig(hidden_dim=16, num_heads=2, max_subgraph_nodes=24,
                      receptive_delta=300.0, dropout=0.0)


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1200, height=1200, block=250,
                                    minor_fraction=0.5, seed=9))


@pytest.fixture(scope="module")
def batch(city):
    sim = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=2))
    samples = build_samples(sim.simulate(6), city, DatasetConfig(keep_every=4))
    return make_batch(samples)


def _graphs_equal(a, b):
    for field in ("node_segments", "node_weights", "graph_ids", "edge_index"):
        assert np.array_equal(getattr(a, field), getattr(b, field)), field
    assert (a.batch_size, a.length) == (b.batch_size, b.length)


class TestRaggedPositions:
    def test_matches_python_slices(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 6, size=40)
        starts = rng.integers(0, 100, size=40)
        expected = np.concatenate(
            [np.arange(s, s + c) for s, c in zip(starts, counts)]
        ) if counts.sum() else np.zeros(0, dtype=np.int64)
        assert np.array_equal(ragged_positions(starts, counts), expected)

    def test_empty(self):
        assert len(ragged_positions(np.zeros(0, np.int64), np.zeros(0, np.int64))) == 0


class TestSpatialQueries:
    def test_segments_within_bitwise(self, city):
        rng = np.random.default_rng(1)
        for _ in range(25):
            x, y = rng.uniform(-50, 1250, 2)
            radius = float(rng.uniform(40, 400))
            expected = reference.reference_segments_within(city, x, y, radius)
            got = city.segments_within(x, y, radius)
            assert [sid for sid, _ in got] == [sid for sid, _ in expected]
            assert np.array_equal(np.array([d for _, d in got]),
                                  np.array([d for _, d in expected]))

    def test_constraint_for_fix_bitwise(self, city):
        rng = np.random.default_rng(2)
        for _ in range(25):
            x, y = rng.uniform(0, 1200, 2)
            ids_ref, w_ref = reference.reference_constraint_for_fix(
                city, x, y, 15.0, 100.0)
            ids_new, w_new = constraint_for_fix(city, x, y, 15.0, 100.0)
            assert np.array_equal(ids_ref, ids_new)
            assert np.array_equal(w_ref, w_new)


class TestReachability:
    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_closure_sets_match(self, city, hops):
        ref = reference.ReferenceReachability(city.out_neighbors, hops=hops)
        new = ReachabilityMask(city.out_neighbors, hops=hops)
        for sid in range(city.num_segments):
            assert set(ref._sets[sid].tolist()) == set(new._sets[sid].tolist())

    def test_combine_bitwise(self, city):
        ref = reference.ReferenceReachability(city.out_neighbors, hops=2)
        new = ReachabilityMask(city.out_neighbors, hops=2)
        rng = np.random.default_rng(3)
        previous = rng.integers(0, city.num_segments, size=9)
        mask = rng.random((9, city.num_segments))
        assert np.array_equal(
            ref.combine(mask.copy(), previous, city.num_segments),
            new.combine(mask.copy(), previous, city.num_segments),
        )

    def test_combine_without_mask(self, city):
        ref = reference.ReferenceReachability(city.out_neighbors, hops=1)
        new = ReachabilityMask(city.out_neighbors, hops=1)
        previous = np.array([0, 5, 11])
        assert np.array_equal(ref.combine(None, previous, city.num_segments),
                              new.combine(None, previous, city.num_segments))


class TestInterpolationPrior:
    def test_within_ulp_of_reference(self, city, batch):
        ref = reference.reference_interpolation_prior(batch, city, 150.0, 0.005)
        new = interpolation_prior(batch, city, 150.0, 0.005)
        # Vectorized (SIMD) np.exp may differ from the seed's scalar np.exp
        # in the last ulp; everything else is order-preserved.
        np.testing.assert_array_max_ulp(ref, new, maxulp=16)


class TestSubGraphGeneration:
    def test_batch_matches_reference(self, city, batch):
        ref = reference.ReferenceSubGraphGenerator(city, CFG)
        new = SubGraphGenerator(city, CFG)
        _graphs_equal(ref.batch(batch.input_xy), new.batch(batch.input_xy))
        # Warm path (arena gathers) and a second, partially-overlapping grid.
        _graphs_equal(ref.batch(batch.input_xy), new.batch(batch.input_xy))
        shifted = batch.input_xy + 37.0
        _graphs_equal(ref.batch(shifted), new.batch(shifted))
        _graphs_equal(ref.batch(batch.input_xy), new.batch(batch.input_xy))

    def test_point_subgraph_matches_reference(self, city):
        ref = reference.ReferenceSubGraphGenerator(city, CFG)
        new = SubGraphGenerator(city, CFG)
        rng = np.random.default_rng(4)
        for _ in range(20):
            x, y = rng.uniform(0, 1200, 2)
            a = ref.point_subgraph(float(x), float(y))
            b = new.point_subgraph(float(x), float(y))
            assert np.array_equal(a.segments, b.segments)
            assert np.array_equal(a.weights, b.weights)
            assert np.array_equal(a.edges, b.edges)

    def test_concurrent_generation_is_correct(self, city, batch):
        """Concurrent threads (the serving worker + direct callers share one
        model) must not corrupt each other's sub-graphs through the shared
        scratch buffer or the arena."""
        import threading

        gen = SubGraphGenerator(city, CFG)
        grids = [batch.input_xy + 13.0 * i for i in range(4)]
        results = [None] * len(grids)

        def worker(index):
            for _ in range(3):
                results[index] = gen.batch(grids[index])

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(grids))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for grid, result in zip(grids, results):
            expected = reference.ReferenceSubGraphGenerator(city, CFG).batch(grid)
            _graphs_equal(expected, result)

    def test_clear_cache_resets_arena(self, city, batch):
        gen = SubGraphGenerator(city, CFG)
        gen.batch(batch.input_xy)
        gen.clear_cache()
        assert gen._num_slots == 0 and len(gen._known_keys) == 0
        ref = reference.ReferenceSubGraphGenerator(city, CFG)
        _graphs_equal(ref.batch(batch.input_xy), gen.batch(batch.input_xy))


class TestScatterSum:
    @pytest.mark.parametrize("shape", [(60,), (60, 3), (60, 4, 5), (0, 3)])
    def test_bitwise_vs_add_at(self, shape):
        rng = np.random.default_rng(5)
        values = rng.normal(size=shape)
        ids = rng.integers(0, 11, size=shape[0])
        assert np.array_equal(reference.reference_scatter_sum(values, ids, 11),
                              scatter_sum_array(values, ids, 11))

    def test_tensor_segment_sum_gradient_unchanged(self):
        rng = np.random.default_rng(6)
        values = Tensor(rng.normal(size=(30, 4)), requires_grad=True)
        ids = rng.integers(0, 7, size=30)
        out = nn.segment_sum(values, ids, 7)
        out.sum().backward()
        assert np.array_equal(values.grad, np.ones((30, 4)))


class TestConstraintMasks:
    def test_matrix_and_tensor_bitwise(self, city, batch):
        num_segments = city.num_segments
        for sample in batch.samples:
            assert np.array_equal(
                reference.reference_constraint_matrix(sample, num_segments),
                sample.constraint_matrix(num_segments),
            )
        assert np.array_equal(
            reference.reference_constraint_tensor(batch, num_segments),
            batch.constraint_tensor(num_segments),
        )


class TestDecoderEquivalence:
    def _decoder_inputs(self, city, batch, seed):
        decoder = RecoveryDecoder(city.num_segments, CFG)
        rng = np.random.default_rng(seed)
        enc = Tensor(rng.normal(size=(batch.size, batch.input_length, CFG.hidden_dim)))
        state = Tensor(rng.normal(size=(batch.size, CFG.hidden_dim)))
        return decoder, enc, state

    def test_greedy_bitwise_with_mask_and_reachability(self, city, batch):
        decoder, enc, state = self._decoder_inputs(city, batch, 7)
        constraint = batch.constraint_tensor(city.num_segments)
        reach_ref = reference.ReferenceReachability(city.out_neighbors, hops=2)
        reach_new = ReachabilityMask(city.out_neighbors, hops=2)
        seg_ref, rate_ref = reference.reference_decode_greedy(
            decoder, enc, state, batch.target_length, constraint, reach_ref)
        seg_new, rate_new = decoder.decode_greedy(
            enc, state, batch.target_length, constraint, reachability=reach_new)
        assert np.array_equal(seg_ref, seg_new)
        assert np.array_equal(rate_ref, rate_new)

    def test_greedy_bitwise_without_mask(self, city, batch):
        decoder, enc, state = self._decoder_inputs(city, batch, 8)
        seg_ref, rate_ref = reference.reference_decode_greedy(
            decoder, enc, state, batch.target_length, None, None)
        seg_new, rate_new = decoder.decode_greedy(
            enc, state, batch.target_length, None)
        assert np.array_equal(seg_ref, seg_new)
        assert np.array_equal(rate_ref, rate_new)

    @pytest.mark.parametrize("beam_width", [1, 3, 5])
    def test_beam_matches_reference(self, city, batch, beam_width):
        decoder, enc, state = self._decoder_inputs(city, batch, 9 + beam_width)
        constraint = batch.constraint_tensor(city.num_segments)
        seg_ref, rate_ref = reference.reference_decode_beam(
            decoder, enc, state, batch.target_length, constraint, beam_width)
        seg_new, rate_new = decoder.decode_beam(
            enc, state, batch.target_length, constraint, beam_width)
        assert np.array_equal(seg_ref, seg_new)
        assert np.allclose(rate_ref, rate_new, atol=1e-12)


class TestNoGradAndRoadCache:
    def test_no_grad_values_identical(self):
        rng = np.random.default_rng(10)
        w = nn.Parameter(rng.normal(size=(5, 5)))
        x = Tensor(rng.normal(size=(3, 5)))
        with_graph = (x @ w).relu().sum()
        with no_grad():
            without_graph = (x @ w).relu().sum()
            assert not (x @ w).requires_grad
        assert np.array_equal(with_graph.data, without_graph.data)
        assert with_graph.requires_grad  # outside the context grads record

    def test_recover_identical_across_calls_and_cache(self, city, batch):
        model = RNTrajRec(city, CFG)
        model.eval()
        first = model.recover(batch)
        assert model.encoder._road_cache is not None  # memoized under eval
        second = model.recover(batch)  # served from the road cache
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_load_state_dict_invalidates_road_cache(self, city, batch):
        """A checkpoint load into a warm eval-mode model must not serve
        X_road computed from the previous parameters."""
        rng = np.random.default_rng(11)
        donor = RNTrajRec(city, CFG)
        for param in donor.parameters():
            param.data = rng.normal(size=param.data.shape, scale=0.05)
        donor.eval()
        expected = donor.recover(batch)

        model = RNTrajRec(city, CFG)
        model.eval()
        model.recover(batch)  # warm the road cache with the initial weights
        model.load_state_dict(donor.state_dict())
        assert model.encoder._road_cache is None
        loaded = model.recover(batch)
        assert np.array_equal(expected[0], loaded[0])
        assert np.array_equal(expected[1], loaded[1])

    def test_train_clears_road_cache_and_training_still_works(self, city, batch):
        model = RNTrajRec(city, CFG)
        model.eval()
        model.recover(batch)
        model.train()
        assert model.encoder._road_cache is None
        loss = model.compute_loss(batch, teacher_forcing_ratio=1.0)
        loss.total.backward()  # gradients flow: the cache must not be used
        assert any(p.grad is not None for p in model.encoder.road_encoder.parameters())


class TestContinuousEngineEquivalence:
    """The continuous-batching engine pinned against the kept twin of the
    pre-change scheduler path (run-to-completion draining grouped by input
    length), mirroring the PR 2 reference-twin pattern."""

    @pytest.fixture(scope="class")
    def mixed_samples(self, city):
        samples = []
        for points, seed in ((9, 21), (25, 22)):
            sim = TrajectorySimulator(
                city, SimulationConfig(target_points=points, seed=seed))
            samples.extend(build_samples(sim.simulate(4), city,
                                         DatasetConfig(keep_every=4)))
        return samples

    def test_engine_matches_run_to_completion_twin(self, city, mixed_samples):
        from repro.core.decoder import GreedyWeights
        from repro.serve.engine import (ContinuousEngine, DecodeJob,
                                        run_to_completion)

        model = RNTrajRec(city, CFG)
        model.eval()
        twin = reference.reference_run_to_completion(model, mixed_samples)

        weights = GreedyWeights.from_decoder(model.decoder)
        jobs = []
        with no_grad():
            for sample in mixed_samples:
                batch = make_batch([sample])
                encoded = model.encode(batch)
                jobs.append(DecodeJob(
                    enc=encoded.point_features.data,
                    carry=model.decoder.initial_carry(
                        encoded.trajectory_feature.data),
                    num_steps=batch.target_length,
                    constraint=model.decode_constraint(batch),
                    weights=weights,
                    reachability=model.reachability,
                ))
        # capacity < job count forces mid-flight splicing — the maximally
        # different execution order from the twin's group-at-a-time drain.
        engine = ContinuousEngine(capacity=3)
        results = run_to_completion(engine, jobs)

        assert len(results) == len(twin)
        for result, (seg_twin, rate_twin) in zip(results, twin):
            # Same contract the padded scheduler already guaranteed vs the
            # per-request path: identical decisions; rates allclose (the
            # twin decodes under batch padding, the engine batch-of-1).
            assert np.array_equal(result.segments, seg_twin)
            assert np.allclose(result.rates, rate_twin, atol=1e-9)

    def test_engine_bitwise_vs_solo_recover(self, city, mixed_samples):
        """Strictly stronger than the twin pin: against the batch-of-1
        one-shot path the engine is bit-identical, rates included."""
        from repro.core.decoder import GreedyWeights
        from repro.serve.engine import (ContinuousEngine, DecodeJob,
                                        run_to_completion)

        model = RNTrajRec(city, CFG)
        model.eval()
        weights = GreedyWeights.from_decoder(model.decoder)
        chosen = mixed_samples[:5]
        jobs = []
        with no_grad():
            for sample in chosen:
                batch = make_batch([sample])
                encoded = model.encode(batch)
                jobs.append(DecodeJob(
                    enc=encoded.point_features.data,
                    carry=model.decoder.initial_carry(
                        encoded.trajectory_feature.data),
                    num_steps=batch.target_length,
                    constraint=model.decode_constraint(batch),
                    weights=weights,
                    reachability=model.reachability,
                ))
        results = run_to_completion(ContinuousEngine(capacity=2), jobs)
        for sample, result in zip(chosen, results):
            seg, rate = model.recover(make_batch([sample]))
            assert np.array_equal(result.segments, seg[0])
            assert np.array_equal(result.rates, rate[0])
