"""Tests for encoder input features and the environment context head."""

import numpy as np
import pytest

from repro.core.gps_former import ENV_CONTEXT_DIM, POINT_CONTEXT_DIM, point_context_features
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import DatasetConfig, SimulationConfig, TrajectorySimulator, build_samples, make_batch


@pytest.fixture(scope="module")
def setup():
    city = generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))
    sim = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=2))
    samples = build_samples(sim.simulate(5), city, DatasetConfig(keep_every=8))
    return city, make_batch(samples)


class TestPointContextFeatures:
    def test_shape(self, setup):
        city, batch = setup
        feats = point_context_features(batch, city.make_grid(50.0))
        assert feats.shape == (batch.size, batch.input_length, POINT_CONTEXT_DIM)

    def test_time_normalized_to_unit(self, setup):
        city, batch = setup
        feats = point_context_features(batch, city.make_grid(50.0))
        t = feats[..., 0]
        assert np.allclose(t[:, 0], 0.0)
        assert np.allclose(t[:, -1], 1.0)
        assert np.all(np.diff(t, axis=1) >= 0)

    def test_grid_indices_in_unit_range(self, setup):
        city, batch = setup
        feats = point_context_features(batch, city.make_grid(50.0))
        assert np.all(feats[..., 1:3] >= 0.0)
        assert np.all(feats[..., 1:3] <= 1.0)

    def test_delta_features_boundary_zeros(self, setup):
        """First point has no previous delta; last has no next delta."""
        city, batch = setup
        feats = point_context_features(batch, city.make_grid(50.0))
        assert np.allclose(feats[:, 0, 3:5], 0.0)   # delta_prev at t=0
        assert np.allclose(feats[:, -1, 5:7], 0.0)  # delta_next at t=-1

    def test_deltas_consistent_with_positions(self, setup):
        city, batch = setup
        scale = 1000.0
        feats = point_context_features(batch, city.make_grid(50.0), delta_scale=scale)
        expected = (batch.input_xy[0, 1] - batch.input_xy[0, 0]) / scale
        assert np.allclose(feats[0, 1, 3:5], expected)
        assert np.allclose(feats[0, 0, 5:7], expected)

    def test_constants_match(self):
        assert POINT_CONTEXT_DIM == 7
        assert ENV_CONTEXT_DIM == 25


class TestInputEmbedding:
    def test_baseline_embedding_shape(self, setup):
        from repro.baselines.seq2seq import InputEmbedding

        city, batch = setup
        embed = InputEmbedding(city.make_grid(50.0), 16)
        out = embed(batch)
        assert out.shape == (batch.size, batch.input_length, 16)

    def test_context_head_uses_hour(self, setup):
        from repro.baselines.seq2seq import TrajectoryContextHead
        from repro.nn.tensor import Tensor

        city, batch = setup
        head = TrajectoryContextHead(16)
        feats = Tensor(np.random.default_rng(0).normal(size=(batch.size, batch.input_length, 16)))
        a = head(feats, batch).data.copy()
        batch.hours[:] = (batch.hours + 6) % 24
        b = head(feats, batch).data
        assert not np.allclose(a, b)
