"""Tests for RNTrajRec components: GridGNN, sub-graphs, GRL, GPSFormer."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from repro.core import (
    GPSFormer,
    GatedFusion,
    GraphNorm,
    GraphRefinementLayer,
    GridGNN,
    PlainRoadEncoder,
    RNTrajRecConfig,
    SubGraphGenerator,
    build_road_encoder,
    mean_graph_readout,
    weighted_graph_readout,
)
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    DatasetConfig,
    SimulationConfig,
    TrajectorySimulator,
    build_samples,
    make_batch,
)

CFG = RNTrajRecConfig(hidden_dim=16, num_heads=2, max_subgraph_nodes=16, receptive_delta=250.0)


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))


@pytest.fixture(scope="module")
def batch(city):
    sim = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=2))
    pairs = sim.simulate(6)
    samples = build_samples(pairs, city, DatasetConfig(keep_every=8))
    return make_batch(samples)


class TestConfig:
    def test_variant_override(self):
        cfg = CFG.variant(hidden_dim=64)
        assert cfg.hidden_dim == 64
        assert CFG.hidden_dim == 16  # frozen original untouched

    def test_named_ablations(self):
        assert not CFG.ablation("grl").use_grl
        assert not CFG.ablation("gf").use_gated_fusion
        assert not CFG.ablation("gat").use_gat_forward
        assert not CFG.ablation("gn").use_graph_norm
        assert not CFG.ablation("gcl").use_graph_loss
        with pytest.raises(ValueError):
            CFG.ablation("nope")


class TestGridGNN:
    def test_output_shape(self, city):
        grid = city.make_grid(CFG.grid_cell_size)
        model = GridGNN(city, grid, CFG)
        out = model()
        assert out.shape == (city.num_segments, CFG.hidden_dim)

    def test_grid_sequences_nonempty_and_valid(self, city):
        grid = city.make_grid(CFG.grid_cell_size)
        model = GridGNN(city, grid, CFG)
        for sid in range(0, city.num_segments, 17):
            seq = model.grid_sequence(sid)
            assert len(seq) >= 1
            assert np.all(seq >= 0) and np.all(seq < grid.num_cells)

    def test_deterministic_with_seed(self, city):
        grid = city.make_grid(CFG.grid_cell_size)
        nn.init.seed_everything(5)
        a = GridGNN(city, grid, CFG)()
        nn.init.seed_everything(5)
        b = GridGNN(city, grid, CFG)()
        assert np.allclose(a.data, b.data)

    def test_gradients_reach_embeddings(self, city):
        grid = city.make_grid(CFG.grid_cell_size)
        model = GridGNN(city, grid, CFG)
        model().sum().backward()
        assert model.grid_embedding.weight.grad is not None
        assert model.road_embedding.weight.grad is not None
        assert np.abs(model.grid_embedding.weight.grad).sum() > 0

    def test_plain_encoders(self, city):
        for kind in ("gcn", "gin", "gat"):
            cfg = CFG.variant(road_encoder=kind)
            enc = build_road_encoder(city, city.make_grid(50.0), cfg)
            assert isinstance(enc, PlainRoadEncoder)
            assert enc().shape == (city.num_segments, CFG.hidden_dim)

    def test_factory_default_is_gridgnn(self, city):
        enc = build_road_encoder(city, city.make_grid(50.0), CFG)
        assert isinstance(enc, GridGNN)


class TestSubGraphGeneration:
    def test_point_subgraph_contents(self, city):
        gen = SubGraphGenerator(city, CFG)
        x, y = 500.0, 500.0
        sub = gen.point_subgraph(x, y)
        assert 1 <= len(sub.segments) <= CFG.max_subgraph_nodes
        # All segments within δ.
        for sid in sub.segments:
            dist, _ = city.project(x, y, int(sid))
            assert dist <= CFG.receptive_delta + 1e-6

    def test_weights_match_distance_kernel(self, city):
        gen = SubGraphGenerator(city, CFG)
        sub = gen.point_subgraph(500.0, 500.0)
        for sid, w in zip(sub.segments, sub.weights):
            dist, _ = city.project(500.0, 500.0, int(sid))
            expected = max(np.exp(-(dist / CFG.influence_gamma) ** 2), 1e-8)
            assert np.isclose(w, expected, rtol=1e-6)

    def test_edges_local_and_valid(self, city):
        gen = SubGraphGenerator(city, CFG)
        sub = gen.point_subgraph(500.0, 500.0)
        v = len(sub.segments)
        assert sub.edges.shape[0] == 2
        assert np.all(sub.edges >= 0) and np.all(sub.edges < v)
        # Self-loops present for every node.
        loops = {(int(a), int(b)) for a, b in sub.edges.T if a == b}
        assert len(loops) == v

    def test_cache_hit(self, city):
        gen = SubGraphGenerator(city, CFG)
        a = gen.point_subgraph(500.0, 500.0)
        b = gen.point_subgraph(500.2, 500.2)  # within 1 m quantization
        assert a is b
        gen.clear_cache()
        assert gen.point_subgraph(500.0, 500.0) is not a

    def test_batch_flattening(self, city, batch):
        gen = SubGraphGenerator(city, CFG)
        graphs = gen.batch(batch.input_xy)
        assert graphs.batch_size == batch.size
        assert graphs.length == batch.input_length
        assert graphs.num_graphs == batch.size * batch.input_length
        assert len(graphs.node_weights) == graphs.num_nodes
        assert graphs.graph_ids.max() == graphs.num_graphs - 1
        # graph_ids are contiguous, grouped blocks.
        assert np.all(np.diff(graphs.graph_ids) >= 0)

    def test_far_point_falls_back_to_nearest(self, city):
        gen = SubGraphGenerator(city, CFG)
        sub = gen.point_subgraph(-10_000.0, -10_000.0)
        assert len(sub.segments) >= 1


class TestGraphReadouts:
    def test_weighted_readout_weighted_mean(self, city, batch):
        gen = SubGraphGenerator(city, CFG)
        graphs = gen.batch(batch.input_xy[:1])
        d = 4
        feats = Tensor(np.ones((graphs.num_nodes, d)) * np.arange(1, graphs.num_nodes + 1)[:, None])
        out = weighted_graph_readout(feats, graphs).data
        # Per-graph weighted mean of node ids.
        for g in range(graphs.num_graphs):
            mask = graphs.graph_ids == g
            w = graphs.node_weights[mask]
            vals = np.arange(1, graphs.num_nodes + 1)[mask]
            assert np.allclose(out[g, 0], (w * vals).sum() / w.sum())

    def test_mean_readout(self, city, batch):
        gen = SubGraphGenerator(city, CFG)
        graphs = gen.batch(batch.input_xy[:1])
        feats = Tensor(np.ones((graphs.num_nodes, 3)))
        out = mean_graph_readout(feats, graphs).data
        assert np.allclose(out, 1.0)


class TestGraphRefinement:
    def _toy_graphs(self, city, batch):
        gen = SubGraphGenerator(city, CFG)
        return gen.batch(batch.input_xy)

    def test_graph_norm_statistics(self, city, batch):
        graphs = self._toy_graphs(city, batch)
        norm = GraphNorm(8)
        nodes = Tensor(np.random.default_rng(0).normal(size=(graphs.num_nodes, 8)) * 5 + 2)
        out = norm(nodes, graphs).data
        assert abs(out.mean()) < 0.5
        assert np.all(np.isfinite(out))

    def test_graph_norm_eval_running_stats(self, city, batch):
        graphs = self._toy_graphs(city, batch)
        norm = GraphNorm(8, momentum=1.0)
        nodes = Tensor(np.random.default_rng(0).normal(size=(graphs.num_nodes, 8)))
        norm(nodes, graphs)
        norm.eval()
        out = norm(nodes, graphs).data
        assert np.all(np.isfinite(out))

    def test_gated_fusion_blends(self, city, batch):
        graphs = self._toy_graphs(city, batch)
        fusion = GatedFusion(CFG.hidden_dim)
        nodes = Tensor(np.zeros((graphs.num_nodes, CFG.hidden_dim)))
        timesteps = Tensor(np.ones((graphs.num_graphs, CFG.hidden_dim)))
        out = fusion(nodes, timesteps, graphs).data
        # Gate in (0,1): output strictly between node (0) and timestep (1).
        assert np.all(out > 0.0) and np.all(out < 1.0)

    def test_grl_shapes_full_and_ablated(self, city, batch):
        graphs = self._toy_graphs(city, batch)
        rng = np.random.default_rng(1)
        nodes = Tensor(rng.normal(size=(graphs.num_nodes, CFG.hidden_dim)))
        steps = Tensor(rng.normal(size=(graphs.num_graphs, CFG.hidden_dim)))
        for cfg in (CFG, CFG.ablation("gf"), CFG.ablation("gat"), CFG.ablation("gn")):
            layer = GraphRefinementLayer(cfg)
            out = layer(steps, nodes, graphs)
            assert out.shape == (graphs.num_nodes, CFG.hidden_dim)

    def test_grl_gradients(self, city, batch):
        graphs = self._toy_graphs(city, batch)
        rng = np.random.default_rng(1)
        nodes = Tensor(rng.normal(size=(graphs.num_nodes, CFG.hidden_dim)), requires_grad=True)
        steps = Tensor(rng.normal(size=(graphs.num_graphs, CFG.hidden_dim)), requires_grad=True)
        GraphRefinementLayer(CFG)(steps, nodes, graphs).sum().backward()
        assert np.all(np.isfinite(nodes.grad))
        assert np.all(np.isfinite(steps.grad))


class TestGPSFormer:
    def test_encoder_output_shapes(self, city, batch):
        encoder = GPSFormer(city, CFG)
        out = encoder(batch)
        assert out.point_features.shape == (batch.size, batch.input_length, CFG.hidden_dim)
        assert out.trajectory_feature.shape == (batch.size, CFG.hidden_dim)
        assert out.graphs is not None
        assert out.node_features is not None

    def test_without_grl_still_encodes(self, city, batch):
        encoder = GPSFormer(city, CFG.ablation("grl").ablation("gcl"))
        out = encoder(batch)
        assert out.point_features.shape == (batch.size, batch.input_length, CFG.hidden_dim)

    def test_stack_depth_configurable(self, city, batch):
        encoder = GPSFormer(city, CFG.variant(num_gpsformer_layers=3))
        assert len(encoder.blocks) == 3
        out = encoder(batch)
        assert out.point_features.shape[0] == batch.size

    def test_environment_context_changes_trajectory_feature(self, city, batch):
        encoder = GPSFormer(city, CFG)
        out1 = encoder(batch).trajectory_feature.data.copy()
        batch.hours[:] = (batch.hours + 12) % 24
        out2 = encoder(batch).trajectory_feature.data
        assert not np.allclose(out1, out2)
