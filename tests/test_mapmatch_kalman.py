"""Tests for the HMM map matcher and Kalman smoother substrates."""

import numpy as np
import pytest

from repro.baselines.kalman import ConstantVelocityKalman, KalmanConfig
from repro.mapmatch import HMMConfig, HMMMapMatcher
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import RawTrajectory, SimulationConfig, TrajectorySimulator


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))


@pytest.fixture(scope="module")
def clean_pair(city):
    sim = TrajectorySimulator(
        city, SimulationConfig(target_points=17, gps_noise_std=0.0, seed=3)
    )
    return sim.simulate_one()


class TestHMM:
    def test_noiseless_high_sample_near_exact(self, city, clean_pair):
        raw, matched = clean_pair
        est = HMMMapMatcher(city).match(raw)
        assert est is not None
        accuracy = (est.segments == matched.segments).mean()
        # Opposite-direction twins share geometry; direction must come from
        # transitions, so demand high but not perfect accuracy.
        assert accuracy > 0.8

    def test_noisy_still_matches(self, city):
        sim = TrajectorySimulator(
            city, SimulationConfig(target_points=17, gps_noise_std=15.0, seed=5)
        )
        raw, matched = sim.simulate_one()
        est = HMMMapMatcher(city).match(raw)
        assert est is not None
        assert (est.segments == matched.segments).mean() > 0.3

    def test_output_structure(self, city, clean_pair):
        raw, _ = clean_pair
        est = HMMMapMatcher(city).match(raw)
        assert len(est) == len(raw)
        assert np.allclose(est.times, raw.times)
        assert np.all(est.ratios >= 0) and np.all(est.ratios < 1)

    def test_empty_trajectory(self, city):
        empty = RawTrajectory(np.zeros((0, 2)), np.zeros(0))
        assert HMMMapMatcher(city).match(empty) is None

    def test_single_point(self, city):
        raw = RawTrajectory(np.array([[500.0, 500.0]]), np.array([0.0]))
        est = HMMMapMatcher(city).match(raw)
        assert est is not None and len(est) == 1

    def test_far_off_network_point_recovers(self, city):
        """Candidates search expands its radius until it finds segments."""
        raw = RawTrajectory(
            np.array([[500.0, 500.0], [5000.0, 5000.0]]), np.array([0.0, 12.0])
        )
        est = HMMMapMatcher(city).match(raw)
        assert est is not None

    def test_matched_points_near_observations(self, city, clean_pair):
        raw, _ = clean_pair
        est = HMMMapMatcher(city).match(raw)
        positions = est.positions(city)
        errors = np.linalg.norm(positions - raw.xy, axis=1)
        assert errors.mean() < 30.0


class TestKalman:
    def _noisy_track(self, seed=0, noise=25.0):
        rng = np.random.default_rng(seed)
        times = np.arange(0.0, 60.0, 2.0)
        truth = np.stack([10.0 * times, 5.0 * times], axis=1)  # constant velocity
        return truth, truth + rng.normal(0, noise, truth.shape), times

    def test_smoothing_reduces_error(self):
        truth, noisy, times = self._noisy_track()
        smoothed = ConstantVelocityKalman().smooth(noisy, times)
        raw_err = np.linalg.norm(noisy - truth, axis=1).mean()
        smooth_err = np.linalg.norm(smoothed - truth, axis=1).mean()
        assert smooth_err < raw_err

    def test_shapes_preserved(self):
        _, noisy, times = self._noisy_track()
        out = ConstantVelocityKalman().smooth(noisy, times)
        assert out.shape == noisy.shape

    def test_short_inputs(self):
        kf = ConstantVelocityKalman()
        assert kf.smooth(np.zeros((0, 2)), np.zeros(0)).shape == (0, 2)
        single = kf.smooth(np.array([[1.0, 2.0]]), np.array([0.0]))
        assert np.allclose(single, [[1.0, 2.0]])

    def test_irregular_timestamps(self):
        truth, noisy, times = self._noisy_track()
        irregular = times + np.linspace(0, 0.9, len(times))
        out = ConstantVelocityKalman().smooth(noisy, irregular)
        assert np.all(np.isfinite(out))

    def test_config_noise_tradeoff(self):
        """Large observation noise ⇒ heavier smoothing (lower variance)."""
        _, noisy, times = self._noisy_track()
        light = ConstantVelocityKalman(KalmanConfig(observation_noise=1.0)).smooth(noisy, times)
        heavy = ConstantVelocityKalman(KalmanConfig(observation_noise=100.0)).smooth(noisy, times)
        light_dev = np.linalg.norm(light - noisy, axis=1).mean()
        heavy_dev = np.linalg.norm(heavy - noisy, axis=1).mean()
        assert heavy_dev > light_dev
