"""Tests for attention modules and the transformer encoder."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from repro.nn.transformer import sinusoidal_positions

RNG = np.random.default_rng(13)


class TestMultiHeadAttention:
    def test_output_shape(self):
        mha = nn.MultiHeadAttention(8, 2)
        x = Tensor(RNG.normal(size=(2, 5, 8)))
        assert mha(x, x, x).shape == (2, 5, 8)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(7, 2)

    def test_key_mask_blocks_positions(self):
        """Masked keys must not influence the output."""
        mha = nn.MultiHeadAttention(4, 1)
        x = RNG.normal(size=(1, 4, 4))
        mask = np.array([[1, 1, 1, 0]])
        base = mha(Tensor(x.copy()), Tensor(x.copy()), Tensor(x.copy()), key_mask=mask).data
        x2 = x.copy()
        x2[0, 3] += 100.0  # perturb only the masked key/value
        # Query rows 0-2 outputs must be unchanged (their Q unchanged, and
        # position 3 is masked out of K/V).
        perturbed = mha(Tensor(x[:, :, :].copy()), Tensor(x2), Tensor(x2), key_mask=mask).data
        assert np.allclose(base[0, :3], perturbed[0, :3], atol=1e-8)

    def test_gradient_flows_through_attention(self):
        mha = nn.MultiHeadAttention(8, 4)
        x = Tensor(RNG.normal(size=(2, 3, 8)), requires_grad=True)
        mha(x, x, x).sum().backward()
        assert np.all(np.isfinite(x.grad))


class TestAdditiveAttention:
    def test_context_shape(self):
        attn = nn.AdditiveAttention(6)
        state = Tensor(RNG.normal(size=(3, 6)))
        enc = Tensor(RNG.normal(size=(3, 7, 6)))
        assert attn(state, enc).shape == (3, 6)

    def test_context_is_convex_combination(self):
        """With identical encoder rows, context equals that row."""
        attn = nn.AdditiveAttention(4)
        row = RNG.normal(size=(4,))
        enc = Tensor(np.tile(row, (2, 5, 1)))
        state = Tensor(RNG.normal(size=(2, 4)))
        out = attn(state, enc).data
        assert np.allclose(out, row, atol=1e-8)

    def test_key_mask_excludes(self):
        attn = nn.AdditiveAttention(4)
        enc = RNG.normal(size=(1, 3, 4))
        mask = np.array([[1, 1, 0]])
        base = attn(Tensor(np.zeros((1, 4))), Tensor(enc.copy()), key_mask=mask).data
        enc2 = enc.copy()
        enc2[0, 2] += 50.0
        # Masked position perturbations must not leak into the context...
        # except through the w_h projection of position 2 scores — which the
        # mask suppresses entirely.
        out = attn(Tensor(np.zeros((1, 4))), Tensor(enc2), key_mask=mask).data
        assert np.allclose(base, out, atol=1e-6)


class TestPositionalEncoding:
    def test_table_shape_and_range(self):
        table = sinusoidal_positions(50, 16)
        assert table.shape == (50, 16)
        assert np.all(np.abs(table) <= 1.0)

    def test_first_row_is_sin_zero_cos_one(self):
        table = sinusoidal_positions(4, 8)
        assert np.allclose(table[0, 0::2], 0.0)
        assert np.allclose(table[0, 1::2], 1.0)

    def test_rows_distinct(self):
        table = sinusoidal_positions(32, 16)
        assert not np.allclose(table[3], table[17])

    def test_module_adds_positions(self):
        pe = nn.PositionalEncoding(8, max_len=16)
        x = Tensor(np.zeros((2, 5, 8)))
        out = pe(x).data
        assert np.allclose(out[0], sinusoidal_positions(16, 8)[:5])


class TestTransformerEncoder:
    def test_layer_preserves_shape(self):
        layer = nn.TransformerEncoderLayer(8, 2)
        x = Tensor(RNG.normal(size=(2, 6, 8)))
        assert layer(x).shape == (2, 6, 8)

    def test_stack_runs_and_differs_from_input(self):
        enc = nn.TransformerEncoder(8, 2, num_layers=2)
        x = Tensor(RNG.normal(size=(2, 4, 8)))
        out = enc(x)
        assert out.shape == (2, 4, 8)
        assert not np.allclose(out.data, x.data)

    def test_permutation_sensitivity_via_positions(self):
        """Position encoding makes outputs order-dependent."""
        enc = nn.TransformerEncoder(8, 2, num_layers=1)
        x = RNG.normal(size=(1, 4, 8))
        out1 = enc(Tensor(x.copy())).data
        out2 = enc(Tensor(x[:, ::-1, :].copy())).data[:, ::-1, :]
        assert not np.allclose(out1, out2)

    def test_gradients_reach_input(self):
        # Note: sum(LayerNorm(x)) is constant (normalized rows sum to 0),
        # so a plain .sum() loss would legitimately yield zero gradients.
        # Use a quadratic loss to probe connectivity instead.
        enc = nn.TransformerEncoder(8, 2, num_layers=2)
        x = Tensor(RNG.normal(size=(1, 5, 8)), requires_grad=True)
        out = enc(x)
        (out * out).sum().backward()
        assert np.all(np.isfinite(x.grad))
        assert np.abs(x.grad).sum() > 0
