"""The repro.train subsystem: exact resume, schedules, callbacks,
parallel gradient workers, the padding-masked quick_accuracy, and the
train→deploy bundle bridge."""

import json
import logging

import numpy as np
import pytest

from repro import nn
from repro.core import RNTrajRec, RNTrajRecConfig
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    DatasetConfig,
    SimulationConfig,
    TrajectorySimulator,
    build_samples,
    pad_sample_target,
    train_val_test_split,
)
from repro.train import (
    BestModelTracker,
    CheckpointCallback,
    ConstantLR,
    CosineLR,
    EarlyStopping,
    EpochStats,
    LambdaCallback,
    ParallelTrainer,
    StepDecayLR,
    TrainConfig,
    Trainer,
    TrainState,
    build_schedule,
    fit_and_bundle,
    fork_available,
    model_version,
    quick_accuracy,
    shard_indices,
)
from repro.train.parallel import _GradientPool, _grad_vector

CFG = RNTrajRecConfig(hidden_dim=16, num_heads=2, max_subgraph_nodes=16,
                      receptive_delta=250.0, dropout=0.0)
# Dropout exercises the per-layer RNG streams the checkpoint must carry.
CFG_DROPOUT = CFG.variant(dropout=0.1)
# GraphNorm batch statistics and the graph-loss hit normalizer couple the
# samples of a batch; ablating both makes sharded gradients exactly equal
# the full-batch gradient (see repro/train/parallel.py).
CFG_DECOUPLED = CFG.variant(use_graph_norm=False, use_graph_loss=False)


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))


@pytest.fixture(scope="module")
def samples(city):
    sim = TrajectorySimulator(city, SimulationConfig(target_points=17, seed=2))
    pairs = sim.simulate(28)
    return build_samples(pairs, city, DatasetConfig(keep_every=8))


def fresh_model(city, config=CFG, seed=5):
    nn.init.seed_everything(seed)
    return RNTrajRec(city, config)


def train_config(**overrides):
    params = dict(epochs=3, batch_size=8, learning_rate=5e-3,
                  teacher_forcing_ratio=0.5, validate=False)
    params.update(overrides)
    return TrainConfig(**params)


class TestResumeDeterminism:
    def test_resume_is_bit_for_bit(self, city, samples, tmp_path):
        """train N == train k, save, restore into fresh objects, train N-k
        — parameters, buffers, optimizer moments, RNG streams and history
        all bitwise equal.  Dropout is on, so the per-layer streams are
        exercised; the cosine schedule depends on the full horizon, so the
        partial run bounds fit() instead of shrinking the config."""
        cfg = dict(epochs=4, schedule="cosine", warmup_epochs=1)

        straight = fresh_model(city, CFG_DROPOUT)
        result_straight = Trainer(straight, train_config(**cfg)).fit(samples)

        partial = fresh_model(city, CFG_DROPOUT)
        trainer_partial = Trainer(partial, train_config(**cfg))
        trainer_partial.fit(samples, until_epoch=2)
        path = str(tmp_path / "state")
        trainer_partial.save_state(path)

        resumed = fresh_model(city, CFG_DROPOUT, seed=77)  # different init:
        trainer_resumed = Trainer(resumed, train_config(**cfg))
        trainer_resumed.load_state(path)  # ...must be fully overwritten
        result_resumed = trainer_resumed.fit(samples)

        state_a, state_b = straight.state_dict(), resumed.state_dict()
        assert set(state_a) == set(state_b)
        for key in state_a:
            assert np.array_equal(state_a[key], state_b[key]), key
        for key, value in result_straight.history[-1].__dict__.items():
            if key != "seconds":
                assert value == getattr(result_resumed.history[-1], key), key
        assert [e.loss for e in result_straight.history] == \
               [e.loss for e in result_resumed.history]

    def test_checkpoint_archive_roundtrip(self, city, samples, tmp_path):
        model = fresh_model(city)
        trainer = Trainer(model, train_config(epochs=2))
        trainer.fit(samples, until_epoch=1)
        path = trainer.save_state(str(tmp_path / "ckpt"))
        assert path.endswith(".npz")

        state = TrainState.load(path)
        assert state.epoch == 1
        assert state.global_step == trainer._global_step
        # optimizer moments + step round-trip exactly
        restored = Trainer(fresh_model(city, seed=11), train_config(epochs=2))
        restored.load_state(path)
        a, b = trainer.optimizer.state_dict(), restored.optimizer.state_dict()
        assert set(a) == set(b)
        for key in a:
            assert np.array_equal(a[key], b[key]), key
        # the master RNG stream continues identically
        assert trainer._rng.integers(0, 2**31, 8).tolist() == \
               restored._rng.integers(0, 2**31, 8).tolist()
        # history travels with the archive
        assert [e.epoch for e in restored.history] == [0]

    def test_fit_checkpoint_resumes_from_archive(self, city, samples, tmp_path):
        path = str(tmp_path / "auto")
        model = fresh_model(city)
        Trainer(model, train_config(epochs=1)).fit(samples, checkpoint=path)

        continued = Trainer(fresh_model(city, seed=13), train_config(epochs=3))
        result = continued.fit(samples, checkpoint=path)
        assert continued.epochs_completed == 3
        assert [e.epoch for e in result.history] == [0, 1, 2]

        straight = Trainer(fresh_model(city), train_config(epochs=3))
        reference = straight.fit(samples)
        assert [e.loss for e in reference.history] == \
               [e.loss for e in result.history]

    def test_mismatched_archive_rejected(self, city, samples, tmp_path):
        model = fresh_model(city)
        path = str(tmp_path / "plain")
        nn.save_checkpoint(model, path)  # model-only checkpoint, no meta
        with pytest.raises(ValueError, match="TrainState"):
            Trainer(model, train_config()).load_state(path)


class TestOptimizerState:
    def test_adam_state_roundtrip_continues_identically(self):
        def make(seed):
            rng = np.random.default_rng(seed)
            params = [nn.Parameter(rng.normal(size=(4, 3))),
                      nn.Parameter(rng.normal(size=(5,)))]
            return params

        def step(opt, params, rng):
            for p in params:
                p.grad = rng.normal(size=p.data.shape)
            opt.step()

        params_a = make(0)
        opt_a = nn.Adam(params_a, lr=1e-2, weight_decay=0.01)
        rng = np.random.default_rng(42)
        for _ in range(3):
            step(opt_a, params_a, rng)
        saved = opt_a.state_dict()
        drawn = rng.bit_generator.state

        # continue 2 more steps on the original
        for _ in range(2):
            step(opt_a, params_a, rng)

        # rebuild at the 3-step point (replaying the same 3 steps restores
        # the parameter values), load the snapshot, continue 2 steps
        params_c = make(0)
        opt_c = nn.Adam(params_c, lr=1e-2, weight_decay=0.01)
        rng2 = np.random.default_rng(42)
        for _ in range(3):
            step(opt_c, params_c, rng2)
        opt_c.load_state_dict(saved)
        rng2.bit_generator.state = drawn
        for _ in range(2):
            step(opt_c, params_c, rng2)
        for p_a, p_c in zip(params_a, params_c):
            assert np.array_equal(p_a.data, p_c.data)
        assert opt_c._step == opt_a._step

    def test_sgd_state_roundtrip(self):
        params = [nn.Parameter(np.ones((2, 2)))]
        opt = nn.SGD(params, lr=0.1, momentum=0.9)
        params[0].grad = np.full((2, 2), 0.5)
        opt.step()
        state = opt.state_dict()
        clone_params = [nn.Parameter(np.ones((2, 2)))]
        clone = nn.SGD(clone_params, lr=0.3, momentum=0.0)
        clone.load_state_dict(state)
        assert clone.lr == 0.1 and clone.momentum == 0.9
        assert np.array_equal(clone._velocity[0], opt._velocity[0])

    def test_shape_mismatch_raises(self):
        opt = nn.Adam([nn.Parameter(np.zeros((3,)))])
        state = opt.state_dict()
        state["m.0"] = np.zeros((4,))
        with pytest.raises(ValueError, match="shape mismatch"):
            opt.load_state_dict(state)


class TestSchedules:
    def test_constant_with_warmup(self):
        sched = ConstantLR(1.0, warmup_epochs=3)
        assert [round(sched.lr_at(e), 4) for e in range(5)] == \
               [0.25, 0.5, 0.75, 1.0, 1.0]

    def test_step_decay(self):
        sched = StepDecayLR(1.0, step_size=2, gamma=0.1)
        assert [round(sched.lr_at(e), 6) for e in range(5)] == \
               [1.0, 1.0, 0.1, 0.1, 0.01]

    def test_cosine_monotone_and_bounded(self):
        sched = CosineLR(1.0, total_epochs=10, min_lr=0.05)
        values = [sched.lr_at(e) for e in range(10)]
        assert values[0] == 1.0
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[-1] > 0.05  # floor approached, not wasted on a 0-LR epoch

    def test_pure_function_of_epoch(self):
        sched = build_schedule(TrainConfig(schedule="cosine", epochs=8,
                                           learning_rate=0.1))
        assert sched.lr_at(5) == sched.lr_at(5)  # no hidden state advanced
        first = [sched.lr_at(e) for e in range(8)]
        assert [sched.lr_at(e) for e in range(8)] == first

    def test_trainer_applies_schedule(self, city, samples):
        model = fresh_model(city)
        cfg = train_config(epochs=3, schedule="step", lr_step_size=1, lr_gamma=0.5)
        result = Trainer(model, cfg).fit(samples)
        assert [e.lr for e in result.history] == [5e-3, 2.5e-3, 1.25e-3]

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            TrainConfig(schedule="linear")

    def test_warmup_composes_with_every_schedule(self):
        for name in ("constant", "step", "cosine"):
            sched = build_schedule(TrainConfig(schedule=name, epochs=8,
                                               learning_rate=1.0,
                                               warmup_epochs=3))
            assert sched.lr_at(0) == pytest.approx(0.25), name


class TestQuickAccuracyPaddingMask:
    class _ZeroModel:
        """Stub recovery model predicting segment 0 everywhere."""

        def __init__(self):
            self.training = False

        def eval(self):
            self.training = False
            return self

        def train(self, mode=True):
            self.training = mode
            return self

        def recover(self, batch):
            shape = batch.target_segments.shape
            return np.zeros(shape, dtype=np.int64), np.zeros(shape)

    def test_padded_positions_do_not_count(self, samples):
        """Mixed target lengths force padding; padded steps carry segment
        0, so a model emitting 0 would score them 'correct' unless they
        are masked out by each sample's true length."""
        base_length = samples[0].target_length
        mixed = list(samples[:4]) + [
            pad_sample_target(s, base_length + 6) for s in samples[4:8]]
        accuracy = quick_accuracy(self._ZeroModel(), mixed, batch_size=8)

        correct = 0
        total = 0
        for sample in mixed:
            correct += int((sample.target.segments == 0).sum())
            total += sample.target_length
        assert accuracy == pytest.approx(correct / total)

        # The unmasked count scores the extra padding of the short
        # samples as hits — strictly higher, i.e. inflated.
        padded_to = max(s.target_length for s in mixed)
        inflated = (correct + sum(padded_to - s.target_length for s in mixed)) \
            / (padded_to * len(mixed))
        assert inflated > accuracy

    def test_restores_training_mode(self, samples):
        model = self._ZeroModel().train()
        quick_accuracy(model, samples[:4], batch_size=4)
        assert model.training
        model.eval()
        quick_accuracy(model, samples[:4], batch_size=4)
        assert not model.training

    def test_empty_samples_nan(self):
        assert np.isnan(quick_accuracy(self._ZeroModel(), []))


class TestCallbacks:
    def test_event_order_and_quiet_default(self, city, samples, capsys):
        events = []
        cb = LambdaCallback(
            on_train_begin=lambda t: events.append("begin"),
            on_step_end=lambda t, info: events.append("step"),
            on_epoch_end=lambda t, stats: events.append("epoch"),
            on_train_end=lambda t, result: events.append("end"),
        )
        model = fresh_model(city)
        Trainer(model, train_config(epochs=1), callbacks=[cb]).fit(samples)
        assert events[0] == "begin" and events[-1] == "end"
        assert events.count("epoch") == 1 and events.count("step") >= 1
        assert capsys.readouterr().out == ""  # quiet by default: no prints

    def test_logging_callback_emits_records(self, city, samples, caplog):
        model = fresh_model(city)
        with caplog.at_level(logging.INFO, logger="repro.train"):
            Trainer(model, train_config(epochs=1, log_every=1)).fit(samples)
        messages = [r.message for r in caplog.records]
        assert any("step" in m for m in messages)
        assert any(m.startswith("epoch 0:") for m in messages)

    def test_early_stopping(self, city, samples):
        model = fresh_model(city)
        stopper = EarlyStopping(monitor="loss", patience=1, min_delta=10.0)
        trainer = Trainer(model, train_config(epochs=6), callbacks=[stopper])
        result = trainer.fit(samples)
        # a 10.0 min_delta is never met, so training stops after patience
        assert len(result.history) < 6
        assert stopper.stopped_epoch is not None
        # a later fit() is not poisoned by the stale stop flag: without the
        # stopper it trains the remaining epochs
        trainer.callbacks.clear()
        resumed = trainer.fit(samples)
        assert trainer.epochs_completed == 6
        assert len(resumed.history) == 6

    def test_best_model_tracker_restores(self, city, samples):
        model = fresh_model(city)
        tracker = BestModelTracker(monitor="loss")
        Trainer(model, train_config(epochs=2), callbacks=[tracker]).fit(samples)
        assert tracker.best_epoch is not None
        best = {k: v.copy() for k, v in tracker.best_state.items()}
        tracker.restore(model)
        now = model.state_dict()
        for key in best:
            assert np.array_equal(best[key], now[key])

    def test_checkpoint_callback_writes_every_epoch(self, city, samples, tmp_path):
        path = str(tmp_path / "periodic")
        model = fresh_model(city)
        cb = CheckpointCallback(path, every=1)
        Trainer(model, train_config(epochs=2), callbacks=[cb]).fit(samples)
        assert cb.last_written is not None
        assert TrainState.load(cb.last_written).epoch == 2

    def test_progress_fn_still_supported(self, city, samples):
        seen = []
        model = fresh_model(city)
        Trainer(model, train_config(epochs=1)).fit(samples, progress=seen.append)
        assert len(seen) == 1 and isinstance(seen[0], EpochStats)


class TestGradientAccumulation:
    def test_accumulated_training_converges(self, city, samples):
        model = fresh_model(city)
        cfg = train_config(epochs=2, batch_size=4, accumulate_steps=2)
        result = Trainer(model, cfg).fit(samples)
        assert np.isfinite(result.final_loss)
        assert result.history[-1].loss < result.history[0].loss + 1.0


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestParallelTrainer:
    def test_shard_indices_balanced(self):
        shards = shard_indices(list(range(10)), 4)
        assert [len(s) for s in shards] == [3, 3, 2, 2]
        assert sorted(sum(shards, [])) == list(range(10))
        assert shard_indices([1, 2], 4) == [[1], [2]]  # no empty shards

    def test_gradients_worker_count_invariant(self, city, samples):
        """The shard-weighted gradient average equals the serial batch
        gradient to machine epsilon, for any worker count, once the two
        batch-coupled features (GraphNorm batch statistics, graph-loss hit
        normalizer) are ablated."""
        indices = list(range(12))
        seed = 1234

        serial = fresh_model(city, CFG_DECOUPLED)
        trainer = Trainer(serial, train_config())
        serial.zero_grad()
        trainer._batch_gradients(samples, indices, seed)
        reference = _grad_vector(serial)

        for workers in (2, 4):
            model = fresh_model(city, CFG_DECOUPLED)
            pool = _GradientPool(model, samples, workers,
                                 teacher_forcing_ratio=0.5)
            try:
                model.zero_grad()
                pool.batch_gradients(model, indices, seed)
                grad = _grad_vector(model)
            finally:
                pool.close()
            np.testing.assert_allclose(grad, reference, rtol=1e-9, atol=1e-12)

    def test_parallel_fit_tracks_serial_losses(self, city, samples):
        cfg = train_config(epochs=2, batch_size=8, validate=True)
        train, val, _ = train_val_test_split(samples, seed=0)

        serial_model = fresh_model(city)
        serial = Trainer(serial_model, cfg).fit(train, val)
        parallel_model = fresh_model(city)
        parallel = ParallelTrainer(parallel_model, cfg, num_workers=2).fit(train, val)

        assert len(serial.history) == len(parallel.history)
        for a, b in zip(serial.history, parallel.history):
            assert b.loss == pytest.approx(a.loss, rel=0.05)

    def test_worker_failure_surfaces(self, city, samples):
        model = fresh_model(city)
        pool = _GradientPool(model, samples, 2, teacher_forcing_ratio=0.5)
        try:
            with pytest.raises(RuntimeError, match="gradient worker failed"):
                pool.batch_gradients(model, [10_000_000], seed=0)  # bad index
        finally:
            pool.close()

    def test_single_worker_degrades_to_serial(self, city, samples):
        model = fresh_model(city)
        trainer = ParallelTrainer(model, train_config(epochs=1), num_workers=1)
        result = trainer.fit(samples)
        assert trainer._pool is None
        assert np.isfinite(result.final_loss)


class TestDeprecationShim:
    def test_core_names_are_the_new_objects(self):
        from repro.core import train as shim
        import repro.train as new
        assert shim.Trainer is new.Trainer
        assert shim.TrainConfig is new.TrainConfig
        assert shim.quick_accuracy is new.quick_accuracy
        assert shim.ParallelTrainer is new.ParallelTrainer

    def test_core_package_reexports(self):
        from repro.core import TrainConfig as core_cfg
        from repro.train import TrainConfig as train_cfg
        assert core_cfg is train_cfg


class TestFitAndBundle:
    def test_bundle_has_provenance_and_serves(self, city, samples, tmp_path):
        from repro.serve import ModelRegistry

        model = fresh_model(city)
        prefix = str(tmp_path / "bundle")
        report = fit_and_bundle(model, samples, prefix,
                                config=train_config(epochs=1),
                                metadata={"dataset": "unit-test"})
        sidecar = json.loads((tmp_path / "bundle.json").read_text())
        assert sidecar["train"]["version"] == report.version
        assert sidecar["train"]["epochs"] == 1
        assert sidecar["train"]["dataset"] == "unit-test"
        assert report.version == model_version(model)

        registry = ModelRegistry(city)
        registry.register("fresh", prefix, activate=True)
        _, loaded = registry.active()
        a, b = model.state_dict(), loaded.state_dict()
        for key in a:
            assert np.array_equal(a[key], b[key]), key
