"""Tests for geographic primitives: distances, projections, grid, R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import (
    Grid,
    LocalProjection,
    RTree,
    gaussian_weight,
    haversine,
    point_along_polyline,
    polyline_length,
    project_point_to_polyline,
)

RNG = np.random.default_rng(23)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine(31.2, 121.5, 31.2, 121.5) == 0.0

    def test_known_distance_equator_degree(self):
        # One degree of longitude at the equator ≈ 111.19 km.
        d = haversine(0.0, 0.0, 0.0, 1.0)
        assert abs(d - 111_195) < 200

    def test_symmetry(self):
        a, b = (31.0, 121.0), (31.4, 121.8)
        assert np.isclose(haversine(*a, *b), haversine(*b, *a))

    def test_vectorized(self):
        lats = np.array([0.0, 10.0])
        out = haversine(lats, 0.0, lats, 1.0)
        assert out.shape == (2,)
        assert out[1] < out[0]  # longitude degrees shrink with latitude


class TestLocalProjection:
    def test_roundtrip(self):
        proj = LocalProjection(31.2, 121.5)
        lat, lon = 31.25, 121.56
        x, y = proj.to_xy(lat, lon)
        lat2, lon2 = proj.to_latlon(x, y)
        assert np.isclose(lat, lat2, atol=1e-9)
        assert np.isclose(lon, lon2, atol=1e-9)

    def test_metric_consistency_with_haversine(self):
        proj = LocalProjection(31.2, 121.5)
        x, y = proj.to_xy(31.21, 121.51)
        planar = float(np.hypot(x, y))
        true = float(haversine(31.2, 121.5, 31.21, 121.51))
        assert abs(planar - true) / true < 0.01


class TestProjection:
    STRAIGHT = np.array([[0.0, 0.0], [100.0, 0.0]])

    def test_point_on_line(self):
        dist, ratio, foot = project_point_to_polyline(np.array([50.0, 0.0]), self.STRAIGHT)
        assert np.isclose(dist, 0.0)
        assert np.isclose(ratio, 0.5)
        assert np.allclose(foot, [50.0, 0.0])

    def test_perpendicular_offset(self):
        dist, ratio, _ = project_point_to_polyline(np.array([30.0, 40.0]), self.STRAIGHT)
        assert np.isclose(dist, 40.0)
        assert np.isclose(ratio, 0.3)

    def test_clamped_before_start(self):
        dist, ratio, foot = project_point_to_polyline(np.array([-30.0, 0.0]), self.STRAIGHT)
        assert np.isclose(ratio, 0.0)
        assert np.allclose(foot, [0.0, 0.0])
        assert np.isclose(dist, 30.0)

    def test_multi_vertex_polyline(self):
        poly = np.array([[0.0, 0.0], [100.0, 0.0], [100.0, 100.0]])
        dist, ratio, _ = project_point_to_polyline(np.array([100.0, 50.0]), poly)
        assert np.isclose(dist, 0.0)
        assert np.isclose(ratio, 0.75)

    def test_degenerate_polyline_rejected(self):
        with pytest.raises(ValueError):
            project_point_to_polyline(np.zeros(2), np.array([[0.0, 0.0]]))

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_point_along_then_project_recovers_ratio(self, ratio):
        poly = np.array([[0.0, 0.0], [60.0, 0.0], [60.0, 80.0]])
        point = point_along_polyline(poly, ratio)
        dist, recovered, _ = project_point_to_polyline(point, poly)
        assert dist < 1e-9
        assert abs(recovered - ratio) < 1e-9

    def test_polyline_length(self):
        poly = np.array([[0.0, 0.0], [3.0, 4.0], [3.0, 14.0]])
        assert np.isclose(polyline_length(poly), 15.0)


class TestGaussianWeight:
    def test_zero_distance_is_one(self):
        assert np.isclose(gaussian_weight(0.0, 30.0), 1.0)

    def test_monotone_decreasing(self):
        d = np.array([0.0, 10.0, 30.0, 100.0])
        w = gaussian_weight(d, 30.0)
        assert np.all(np.diff(w) < 0)

    def test_scale_controls_falloff(self):
        assert gaussian_weight(30.0, 60.0) > gaussian_weight(30.0, 15.0)


class TestGrid:
    def test_dims(self):
        grid = Grid(0.0, 0.0, 1000.0, 500.0, cell_size=50.0)
        assert grid.cols == 20
        assert grid.rows == 10
        assert grid.num_cells == 200

    def test_cell_of_clamps(self):
        grid = Grid(0.0, 0.0, 100.0, 100.0, cell_size=50.0)
        row, col = grid.cell_of(-10.0, 500.0)
        assert row == 1 and col == 0

    def test_flat_index_bijective(self):
        grid = Grid(0.0, 0.0, 200.0, 200.0, cell_size=50.0)
        seen = set()
        for r in range(grid.rows):
            for c in range(grid.cols):
                seen.add(int(grid.flat_index(r, c)))
        assert len(seen) == grid.num_cells

    def test_cell_center_inside_cell(self):
        grid = Grid(0.0, 0.0, 100.0, 100.0, cell_size=50.0)
        cx, cy = grid.cell_center(1, 0)
        row, col = grid.cell_of(cx, cy)
        assert (row, col) == (1, 0)

    def test_traverse_straight_line(self):
        grid = Grid(0.0, 0.0, 500.0, 500.0, cell_size=50.0)
        cells = grid.traverse_polyline(np.array([[25.0, 25.0], [225.0, 25.0]]))
        assert cells == [(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]

    def test_traverse_cells_are_adjacent(self):
        grid = Grid(0.0, 0.0, 1000.0, 1000.0, cell_size=50.0)
        poly = np.array([[10.0, 10.0], [400.0, 300.0], [800.0, 100.0]])
        cells = grid.traverse_polyline(poly)
        for (r1, c1), (r2, c2) in zip(cells, cells[1:]):
            assert abs(r1 - r2) <= 1 and abs(c1 - c2) <= 1

    def test_traverse_no_consecutive_duplicates(self):
        grid = Grid(0.0, 0.0, 500.0, 500.0, cell_size=50.0)
        cells = grid.traverse_polyline(np.array([[0.0, 0.0], [499.0, 499.0]]))
        for a, b in zip(cells, cells[1:]):
            assert a != b


class TestRTree:
    def _random_boxes(self, n, seed=0):
        rng = np.random.default_rng(seed)
        mins = rng.uniform(0, 900, size=(n, 2))
        sizes = rng.uniform(5, 80, size=(n, 2))
        return np.concatenate([mins, mins + sizes], axis=1)

    def test_query_matches_bruteforce(self):
        boxes = self._random_boxes(200)
        tree = RTree(boxes)
        query = (100.0, 100.0, 300.0, 250.0)
        expected = {
            i
            for i, (x0, y0, x1, y1) in enumerate(boxes)
            if not (x1 < query[0] or query[2] < x0 or y1 < query[1] or query[3] < y0)
        }
        assert set(tree.query_rect(*query)) == expected

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_query_radius_no_false_negatives(self, seed):
        rng = np.random.default_rng(seed)
        boxes = self._random_boxes(60, seed=seed)
        tree = RTree(boxes)
        x, y, r = rng.uniform(0, 1000), rng.uniform(0, 1000), rng.uniform(10, 200)
        hits = set(tree.query_radius(x, y, r))
        for i, (x0, y0, x1, y1) in enumerate(boxes):
            # Box fully inside the radius rectangle must be reported.
            if x0 >= x - r and x1 <= x + r and y0 >= y - r and y1 <= y + r:
                assert i in hits

    def test_query_radius_many_matches_per_point(self):
        """CSR batch queries equal per-point queries id-for-id, for every
        chunking of the query points (including blocks that split them)."""
        boxes = self._random_boxes(150, seed=7)
        tree = RTree(boxes)
        rng = np.random.default_rng(11)
        points = rng.uniform(-50, 1050, size=(23, 2))
        radius = 120.0
        expected = [tree.query_radius(x, y, radius) for x, y in points]
        for block in (None, 1, 4, 23, 1000):
            indptr, ids = tree.query_radius_many(points, radius, block=block)
            assert len(indptr) == len(points) + 1
            for q, hits in enumerate(expected):
                assert ids[indptr[q]:indptr[q + 1]].tolist() == hits, block

    def test_empty_tree(self):
        tree = RTree(np.zeros((0, 4)))
        assert tree.query_rect(0, 0, 1, 1) == []
        assert len(tree) == 0

    def test_single_item(self):
        tree = RTree(np.array([[0.0, 0.0, 10.0, 10.0]]))
        assert tree.query_rect(5, 5, 6, 6) == [0]
        assert tree.query_rect(20, 20, 30, 30) == []

    def test_malformed_boxes_rejected(self):
        with pytest.raises(ValueError):
            RTree(np.array([[10.0, 0.0, 0.0, 10.0]]))
        with pytest.raises(ValueError):
            RTree(np.zeros((3, 3)))

    def test_large_tree_depth(self):
        boxes = self._random_boxes(2000, seed=5)
        tree = RTree(boxes, leaf_capacity=8)
        hits = tree.query_rect(0, 0, 1000, 1000)
        assert len(hits) == 2000
