"""Tests for GNN layers and optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(17)

CHAIN = np.array([[0, 1, 2, 3], [1, 2, 3, 4]])  # 0→1→2→3→4


class TestGATLayer:
    def test_output_shape(self):
        gat = nn.GATLayer(4, 8, num_heads=2)
        x = Tensor(RNG.normal(size=(5, 4)))
        out = gat(x, nn.add_self_loops(CHAIN, 5))
        assert out.shape == (5, 8)

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            nn.GATLayer(4, 6, num_heads=4)

    def test_invalid_edges_rejected(self):
        gat = nn.GATLayer(4, 4, num_heads=1)
        x = Tensor(RNG.normal(size=(3, 4)))
        with pytest.raises(IndexError):
            gat(x, np.array([[0], [5]]))
        with pytest.raises(ValueError):
            gat(x, np.array([0, 1, 2]))

    def test_message_passing_locality(self):
        """One layer: node output depends on in-neighbors, not far nodes."""
        gat = nn.GATLayer(3, 4, num_heads=1)
        x = RNG.normal(size=(5, 3))
        edges = nn.add_self_loops(CHAIN, 5)
        base = gat(Tensor(x.copy()), edges).data[1].copy()  # node 1: sees {0, 1}
        x2 = x.copy()
        x2[4] += 10.0  # node 4 is not an in-neighbor of node 1
        after = gat(Tensor(x2), edges).data[1]
        assert np.allclose(base, after)

    def test_disconnected_batch_independence(self):
        """Two disjoint sub-graphs in one call don't mix features."""
        gat = nn.GATLayer(3, 4, num_heads=1)
        x = RNG.normal(size=(4, 3))
        edges = nn.add_self_loops(np.array([[0], [1]]), 4)  # 0→1; 2,3 isolated
        base = gat(Tensor(x.copy()), edges).data[:2].copy()
        x2 = x.copy()
        x2[2:] += 5.0
        after = gat(Tensor(x2), edges).data[:2]
        assert np.allclose(base, after)


class TestGCNAndGIN:
    def test_gcn_shape(self):
        gcn = nn.GCNLayer(4, 6)
        out = gcn(Tensor(RNG.normal(size=(5, 4))), nn.add_self_loops(CHAIN, 5))
        assert out.shape == (5, 6)

    def test_gin_shape_and_eps_learnable(self):
        gin = nn.GINLayer(4, 4)
        out = gin(Tensor(RNG.normal(size=(5, 4))), nn.add_self_loops(CHAIN, 5))
        assert out.shape == (5, 4)
        out.sum().backward()
        assert gin.eps.grad is not None

    def test_graph_stack_kinds(self):
        for kind in ("gat", "gcn", "gin"):
            stack = nn.GraphStack(kind, 8, 2)
            out = stack(Tensor(RNG.normal(size=(5, 8))), nn.add_self_loops(CHAIN, 5))
            assert out.shape == (5, 8)

    def test_graph_stack_unknown_kind(self):
        with pytest.raises(ValueError):
            nn.GraphStack("sage", 8, 2)


class TestGraphPooling:
    def test_mean_pool_per_graph(self):
        x = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = nn.graph_mean_pool(x, np.array([0, 0, 1]), 2)
        assert np.allclose(out.data, [[3.0], [6.0]])


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        param = nn.Parameter(np.zeros(2))

        def loss_fn():
            diff = param - Tensor(target)
            return (diff * diff).sum()

        return param, loss_fn, target

    def test_sgd_converges(self):
        param, loss_fn, target = self._quadratic_problem()
        opt = nn.SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        param, loss_fn, target = self._quadratic_problem()
        opt = nn.SGD([param], lr=0.02, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_adam_converges(self):
        param, loss_fn, target = self._quadratic_problem()
        opt = nn.Adam([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss_fn().backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_adam_weight_decay_shrinks(self):
        param = nn.Parameter(np.full(3, 10.0))
        opt = nn.Adam([param], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            opt.zero_grad()
            (param * 0.0).sum().backward()  # zero task gradient
            opt.step()
        assert np.all(np.abs(param.data) < 10.0)

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_clip_grad_norm(self):
        param = nn.Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        before = np.linalg.norm(param.grad)
        returned = nn.clip_grad_norm([param], max_norm=1.0)
        assert np.isclose(returned, before)
        assert np.isclose(np.linalg.norm(param.grad), 1.0)

    def test_clip_noop_below_threshold(self):
        param = nn.Parameter(np.zeros(4))
        param.grad = np.full(4, 0.01)
        nn.clip_grad_norm([param], max_norm=1.0)
        assert np.allclose(param.grad, 0.01)

    def test_step_lr_schedule(self):
        param = nn.Parameter(np.zeros(1))
        opt = nn.SGD([param], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5


@given(st.integers(2, 30), st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_segment_softmax_gat_attention_property(num_nodes, fan_in):
    """GAT attention weights over in-edges of any node sum to 1."""
    from repro.nn.tensor import segment_softmax

    edges = min(num_nodes * fan_in, 60)
    rng = np.random.default_rng(num_nodes * 31 + fan_in)
    dst = rng.integers(0, num_nodes, size=edges)
    scores = Tensor(rng.normal(size=(edges,)))
    weights = segment_softmax(scores, dst, num_nodes).data
    for node in range(num_nodes):
        mask = dst == node
        if mask.any():
            assert np.isclose(weights[mask].sum(), 1.0, atol=1e-9)
