"""Tests for the Module/Parameter system and serialization."""

import os

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class Tiny(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(3, 4)
        self.fc2 = nn.Linear(4, 2)
        self.scale = nn.Parameter(np.ones(1), name="scale")

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestRegistration:
    def test_parameters_found_recursively(self):
        model = Tiny()
        names = dict(model.named_parameters())
        assert "fc1.weight" in names
        assert "fc2.bias" in names
        assert "scale" in names
        assert len(model.parameters()) == 5

    def test_num_parameters_counts_scalars(self):
        model = Tiny()
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_module_list_registration(self):
        class Stacked(nn.Module):
            def __init__(self):
                super().__init__()
                self.layers = nn.ModuleList(nn.Linear(2, 2) for _ in range(3))

        model = Stacked()
        assert len(model.parameters()) == 6
        assert len(model.layers) == 3
        assert isinstance(model.layers[1], nn.Linear)

    def test_sequential_applies_in_order(self):
        seq = nn.Sequential(nn.Linear(2, 3), nn.Linear(3, 1))
        out = seq(Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)


class TestTrainEval:
    def test_train_eval_propagates(self):
        model = Tiny()
        model.eval()
        assert not model.fc1.training
        model.train()
        assert model.fc2.training

    def test_zero_grad_clears(self):
        model = Tiny()
        out = model(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert model.fc1.weight.grad is not None
        model.zero_grad()
        assert model.fc1.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        model = Tiny()
        state = model.state_dict()
        other = Tiny()
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_strict_missing_raises(self):
        model = Tiny()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Tiny()
        state = model.state_dict()
        state["scale"] = np.ones(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_non_strict_partial_load(self):
        model = Tiny()
        state = {"scale": np.array([5.0])}
        model.load_state_dict(state, strict=False)
        assert np.allclose(model.scale.data, 5.0)


class TestCheckpointFiles:
    def test_save_load_checkpoint(self, tmp_path):
        model = Tiny()
        path = str(tmp_path / "ckpt.npz")
        nn.save_checkpoint(model, path)
        assert os.path.exists(path)

        other = Tiny()
        # Ensure they differ before loading.
        other.fc1.weight.data = other.fc1.weight.data + 1.0
        nn.load_checkpoint(other, path)
        assert np.allclose(other.fc1.weight.data, model.fc1.weight.data)

    def test_loaded_model_same_output(self, tmp_path):
        model = Tiny()
        x = Tensor(np.random.default_rng(0).normal(size=(3, 3)))
        expected = model(x).data
        path = str(tmp_path / "ckpt.npz")
        nn.save_checkpoint(model, path)
        other = nn.load_checkpoint(Tiny(), path)
        assert np.allclose(other(x).data, expected)
