"""Tests for the Module/Parameter system and serialization."""

import os

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class Tiny(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(3, 4)
        self.fc2 = nn.Linear(4, 2)
        self.scale = nn.Parameter(np.ones(1), name="scale")

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestRegistration:
    def test_parameters_found_recursively(self):
        model = Tiny()
        names = dict(model.named_parameters())
        assert "fc1.weight" in names
        assert "fc2.bias" in names
        assert "scale" in names
        assert len(model.parameters()) == 5

    def test_num_parameters_counts_scalars(self):
        model = Tiny()
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 1

    def test_module_list_registration(self):
        class Stacked(nn.Module):
            def __init__(self):
                super().__init__()
                self.layers = nn.ModuleList(nn.Linear(2, 2) for _ in range(3))

        model = Stacked()
        assert len(model.parameters()) == 6
        assert len(model.layers) == 3
        assert isinstance(model.layers[1], nn.Linear)

    def test_sequential_applies_in_order(self):
        seq = nn.Sequential(nn.Linear(2, 3), nn.Linear(3, 1))
        out = seq(Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)


class TestTrainEval:
    def test_train_eval_propagates(self):
        model = Tiny()
        model.eval()
        assert not model.fc1.training
        model.train()
        assert model.fc2.training

    def test_zero_grad_clears(self):
        model = Tiny()
        out = model(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert model.fc1.weight.grad is not None
        model.zero_grad()
        assert model.fc1.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        model = Tiny()
        state = model.state_dict()
        other = Tiny()
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_strict_missing_raises(self):
        model = Tiny()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Tiny()
        state = model.state_dict()
        state["scale"] = np.ones(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_non_strict_partial_load(self):
        model = Tiny()
        state = {"scale": np.array([5.0])}
        model.load_state_dict(state, strict=False)
        assert np.allclose(model.scale.data, 5.0)


class TestCheckpointFiles:
    def test_save_load_checkpoint(self, tmp_path):
        model = Tiny()
        path = str(tmp_path / "ckpt.npz")
        nn.save_checkpoint(model, path)
        assert os.path.exists(path)

        other = Tiny()
        # Ensure they differ before loading.
        other.fc1.weight.data = other.fc1.weight.data + 1.0
        nn.load_checkpoint(other, path)
        assert np.allclose(other.fc1.weight.data, model.fc1.weight.data)

    def test_loaded_model_same_output(self, tmp_path):
        model = Tiny()
        x = Tensor(np.random.default_rng(0).normal(size=(3, 3)))
        expected = model(x).data
        path = str(tmp_path / "ckpt.npz")
        nn.save_checkpoint(model, path)
        other = nn.load_checkpoint(Tiny(), path)
        assert np.allclose(other(x).data, expected)

    def test_round_trip_without_npz_suffix(self, tmp_path):
        """np.savez appends '.npz'; save/load must normalize consistently."""
        model = Tiny()
        prefix = str(tmp_path / "ckpt")  # no suffix
        written = nn.save_checkpoint(model, prefix)
        assert written == prefix + ".npz"
        assert os.path.exists(written)

        other = Tiny()
        other.fc1.weight.data = other.fc1.weight.data + 1.0
        nn.load_checkpoint(other, prefix)  # same suffix-less path round-trips
        assert np.allclose(other.fc1.weight.data, model.fc1.weight.data)

    def test_round_trip_with_pathlike(self, tmp_path):
        model = Tiny()
        nn.save_checkpoint(model, tmp_path / "ckpt")  # os.PathLike, no suffix
        other = Tiny()
        other.fc1.weight.data = other.fc1.weight.data + 1.0
        nn.load_checkpoint(other, tmp_path / "ckpt")
        assert np.allclose(other.fc1.weight.data, model.fc1.weight.data)

    def test_round_trip_non_strict(self, tmp_path):
        model = Tiny()
        prefix = str(tmp_path / "ckpt")
        nn.save_checkpoint(model, prefix)

        class Extended(Tiny):
            def __init__(self):
                super().__init__()
                self.extra = nn.Parameter(np.zeros(2), name="extra")

        extended = Extended()
        with pytest.raises(KeyError):
            nn.load_checkpoint(Extended(), prefix)  # strict: missing 'extra'
        nn.load_checkpoint(extended, prefix, strict=False)
        assert np.allclose(extended.fc1.weight.data, model.fc1.weight.data)


class TestBuffers:
    def test_buffers_travel_with_state_dict(self):
        norm = nn.BatchNorm(4)
        norm.running_mean = norm.running_mean + 3.0
        state = norm.state_dict()
        assert "running_mean" in state and "running_var" in state
        assert np.allclose(state["running_mean"], 3.0)

        fresh = nn.BatchNorm(4)
        fresh.load_state_dict(state)
        assert np.allclose(fresh.running_mean, 3.0)

    def test_batchnorm_stats_survive_checkpoint(self, tmp_path):
        norm = nn.BatchNorm(2)
        x = Tensor(np.random.default_rng(1).normal(2.0, 3.0, size=(64, 2)))
        norm(x)  # training-mode forward moves the running statistics
        norm.eval()
        expected = norm(x).data

        path = str(tmp_path / "norm")
        nn.save_checkpoint(norm, path)
        fresh = nn.load_checkpoint(nn.BatchNorm(2), path).eval()
        assert np.allclose(fresh.running_mean, norm.running_mean)
        assert np.allclose(fresh(x).data, expected)

    def test_buffer_shape_mismatch_raises(self):
        norm = nn.BatchNorm(4)
        state = norm.state_dict()
        state["running_mean"] = np.zeros(7)
        with pytest.raises(ValueError):
            norm.load_state_dict(state)

    def test_params_only_checkpoint_loads_strict(self):
        """Pre-buffer checkpoints (params only) must still load strictly."""
        norm = nn.BatchNorm(4)
        params_only = {name: param.data.copy()
                       for name, param in norm.named_parameters()}
        fresh = nn.BatchNorm(4)
        fresh.load_state_dict(params_only, strict=True)  # no KeyError
        assert np.allclose(fresh.running_mean, 0.0)  # buffers keep defaults
