"""Tests for the profiling registry and the hot-path benchmark harness."""

import importlib.util
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro import profile
from repro.core import RNTrajRec, RNTrajRecConfig
from repro.profile import Profiler
from repro.roadnet import CityConfig, generate_city
from repro.trajectory import (
    DatasetConfig,
    SimulationConfig,
    TrajectorySimulator,
    build_samples,
    make_batch,
)

REPO = Path(__file__).resolve().parent.parent


class TestProfiler:
    def test_disabled_sections_are_noops(self):
        p = Profiler()
        with p.section("x"):
            pass
        p.count("c")
        snap = p.stats()
        assert snap["sections"] == {} and snap["counters"] == {}

    def test_sections_and_counters_record(self):
        p = Profiler(enabled=True)
        for _ in range(3):
            with p.section("work"):
                time.sleep(0.001)
        p.count("items", 5)
        p.count("items", 2)
        snap = p.stats()
        assert snap["sections"]["work"]["count"] == 3
        assert snap["sections"]["work"]["total_s"] >= 0.003
        assert snap["sections"]["work"]["min_ms"] <= snap["sections"]["work"]["max_ms"]
        assert snap["counters"]["items"] == 7

    def test_reset_and_report(self):
        p = Profiler(enabled=True)
        with p.section("stage"):
            pass
        assert "stage" in p.report()
        p.reset()
        assert p.stats()["sections"] == {}

    def test_thread_safety(self):
        p = Profiler(enabled=True)

        def worker():
            for _ in range(200):
                with p.section("shared"):
                    pass
                p.count("n")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = p.stats()
        assert snap["sections"]["shared"]["count"] == 800
        assert snap["counters"]["n"] == 800

    def test_exception_still_records(self):
        p = Profiler(enabled=True)
        with pytest.raises(ValueError):
            with p.section("failing"):
                raise ValueError("boom")
        assert p.stats()["sections"]["failing"]["count"] == 1


class TestWiredSections:
    def test_recover_populates_hotpath_sections(self):
        city = generate_city(CityConfig(width=1000, height=1000, block=250, seed=9))
        config = RNTrajRecConfig(hidden_dim=16, num_heads=2, dropout=0.0,
                                 max_subgraph_nodes=16, receptive_delta=250.0)
        model = RNTrajRec(city, config)
        model.eval()
        sim = TrajectorySimulator(city, SimulationConfig(target_points=9, seed=2))
        batch = make_batch(build_samples(sim.simulate(3), city,
                                         DatasetConfig(keep_every=4)))
        profile.reset()
        profile.enable()
        try:
            model.recover(batch)
        finally:
            profile.disable()
        sections = profile.stats()["sections"]
        for name in ("model.recover", "model.encode", "subgraph.batch",
                     "decode.greedy", "decode.prior", "encoder.road_features"):
            assert name in sections, name
        profile.reset()


class TestHotpathBenchSmoke:
    def test_run_hotpath_bench_tiny(self):
        """The benchmark harness runs end to end at a tiny budget and
        produces a well-formed artifact with matching outputs (the >= 2x
        speedup bar is asserted only by the full benchmark)."""
        spec = importlib.util.spec_from_file_location(
            "bench_hotpath", REPO / "benchmarks" / "bench_hotpath.py")
        module = importlib.util.module_from_spec(spec)
        sys.modules["bench_hotpath"] = module
        spec.loader.exec_module(module)

        artifact = module.run_hotpath_bench(trajectories=24, batch_size=6,
                                            repeats=1, hidden=16)
        stages = {row["stage"] for row in artifact["rows"]}
        assert {"decode_greedy_steps", "beam_search", "subgraph_generation",
                "interpolation_prior", "constraint_ingest", "constraint_tensor",
                "gnn_scatter"} <= stages
        assert all(row["outputs_match"] for row in artifact["rows"])
        assert all(row["after_ms"] > 0 for row in artifact["rows"])
        assert "decode.greedy" in artifact["profile_sections"]
        assert artifact["required"].keys() == {"decode_greedy_steps",
                                               "subgraph_generation"}


class TestMemorySnapshot:
    def test_self_only_shape_is_unchanged(self):
        snap = profile.memory_snapshot()
        assert set(snap) == {"rss_mb", "peak_rss_mb"}
        assert snap["rss_mb"] > 0
        assert snap["peak_rss_mb"] >= snap["rss_mb"] * 0.5

    def test_children_are_folded_in(self):
        """With worker pids the snapshot covers the whole process tree:
        rss sums parent + children, and pss (when the kernel exposes
        smaps_rollup) counts pages shared between them only once."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        stop = ctx.Event()
        child = ctx.Process(target=stop.wait, daemon=True)
        child.start()
        try:
            solo = profile.memory_snapshot()
            tree = profile.memory_snapshot(pids=[child.pid])
            assert tree["processes"] == 2
            assert tree["children_rss_mb"] > 0
            assert tree["rss_mb"] == pytest.approx(
                solo["rss_mb"] + tree["children_rss_mb"], rel=0.25)
            if "pss_mb" in tree:  # kernel-dependent, but never nonsense
                assert 0 < tree["pss_mb"] <= tree["rss_mb"] * 1.01
        finally:
            stop.set()
            child.join(timeout=10)

    def test_dead_pid_contributes_nothing(self):
        solo = profile.memory_snapshot()
        tree = profile.memory_snapshot(pids=[2 ** 22 + 1])  # no such pid
        assert tree["children_rss_mb"] == 0
        assert tree["rss_mb"] == pytest.approx(solo["rss_mb"], rel=0.25)

    def test_proc_rss_is_positive_for_live_pid(self):
        import os

        assert profile.proc_rss_mb(os.getpid()) > 0
        assert profile.proc_rss_mb(2 ** 22 + 1) == 0.0
