"""Tests for ``repro.stream`` — sessionized incremental trajectory recovery.

The load-bearing assertion is the correctness anchor: ``finalize()`` after
N appends must reproduce the one-shot ``recover()`` of the same N fixes
bit-for-bit, across sampling gaps (ε_τ/ε_ρ of 8 and 4), append chunk
sizes and commit horizons.  Around it: the bounded session store (TTL,
LRU, backpressure), the typed append validation, the decoder's
split/replay kernel invariants, telemetry, and session→shard affinity.
"""

import numpy as np
import pytest

from repro.cluster import RecoveryCluster, RouteError, side_by_side
from repro.core import RNTrajRec, RNTrajRecConfig
from repro.datasets import load_dataset
from repro.serve import (
    RecoveryRequest,
    RequestError,
    assemble_sample,
    validate_append_times,
)
from repro.stream import (
    IncrementalEngine,
    SessionOverloaded,
    SessionState,
    SessionStore,
    StoreConfig,
    StreamConfig,
    StreamError,
    StreamingCluster,
    StreamingRecoveryService,
    UnknownSession,
)
from repro.trajectory import make_batch

TINY = RNTrajRecConfig(hidden_dim=16, num_heads=2, dropout=0.0,
                       receptive_delta=300.0, max_subgraph_nodes=24)


@pytest.fixture(scope="module")
def data():
    return load_dataset("chengdu", num_trajectories=40)


@pytest.fixture(scope="module")
def model(data):
    return RNTrajRec(data.network, TINY).eval()


@pytest.fixture(scope="module")
def data_gap4():
    """The same city at a denser input sampling (ε_τ/ε_ρ = 4)."""
    return load_dataset("chengdu", num_trajectories=16, keep_every=4)


@pytest.fixture(scope="module")
def model_gap4(data_gap4):
    return RNTrajRec(data_gap4.network, TINY).eval()


class FakeClock:
    def __init__(self):
        self.t = 1000.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


def _config(data, **overrides) -> StreamConfig:
    return StreamConfig.for_spec(data.spec, **overrides)


def _reference(model, data, sample):
    """The one-shot recovery of a sample's raw fixes (serving path)."""
    request = RecoveryRequest(sample.raw_low.xy, sample.raw_low.times,
                              hour=sample.hour, holiday=sample.holiday)
    assembled = assemble_sample(request, data.network,
                                _config(data).ingest())
    return model.recover_trajectories(make_batch([assembled]))[0]


def _drive(service, sample, chunk):
    """Stream a sample's fixes in ``chunk``-sized appends; returns
    (session_id, updates, finalize response)."""
    session_id = service.open(hour=sample.hour, holiday=sample.holiday)
    raw = sample.raw_low
    updates = []
    for start in range(0, len(raw), chunk):
        stop = min(start + chunk, len(raw))
        updates.append(service.append(session_id, raw.xy[start:stop],
                                      raw.times[start:stop]))
    return session_id, updates, service.finalize(session_id)


# ---------------------------------------------------------------------------
# Session store: TTL, LRU, backpressure, bounded memory
# ---------------------------------------------------------------------------
class TestSessionStore:
    def _store(self, **overrides):
        clock = FakeClock()
        params = dict(capacity=4, ttl_seconds=100.0)
        params.update(overrides)
        return SessionStore(StoreConfig(**params), clock=clock), clock

    def test_ttl_expires_idle_sessions(self):
        store, clock = self._store(ttl_seconds=30.0)
        store.open(SessionState("a"))
        clock.advance(10.0)
        store.open(SessionState("b"))
        clock.advance(25.0)  # a idle 35s, b idle 25s
        with pytest.raises(UnknownSession):
            store.get("a")
        assert store.get("b").session_id == "b"
        records = store.evictions()
        assert [r["session_id"] for r in records] == ["a"]
        assert records[0]["reason"] == "ttl"
        assert store.stats()["expired_ttl"] == 1

    def test_lru_eviction_under_capacity_pressure(self):
        store, clock = self._store(capacity=2)
        store.open(SessionState("a"))
        clock.advance(1.0)
        store.open(SessionState("b"))
        clock.advance(1.0)
        store.get("a")  # b is now least recently used
        store.open(SessionState("c"))
        assert "a" in store and "c" in store and "b" not in store
        record = store.evictions()[-1]
        assert record["session_id"] == "b" and record["reason"] == "lru"

    def test_backpressure_sheds_when_nothing_is_idle_enough(self):
        store, clock = self._store(capacity=1, evict_idle_seconds=60.0)
        store.open(SessionState("busy"))
        clock.advance(5.0)  # idle 5s < 60s: not evictable
        with pytest.raises(SessionOverloaded):
            store.open(SessionState("late"))
        assert store.stats()["shed"] == 1
        assert "busy" in store  # the resident session survived
        clock.advance(60.0)  # now idle long enough -> eviction beats shedding
        store.open(SessionState("late"))
        assert "late" in store and "busy" not in store

    def test_memory_stays_bounded_under_session_churn(self):
        store, clock = self._store(capacity=8, eviction_log=16)
        for i in range(40):
            store.open(SessionState(f"s{i}"))
            clock.advance(0.1)
            assert len(store) <= 8
        stats = store.stats()
        assert stats["active_sessions"] == 8
        assert stats["evicted_lru"] == 32
        assert len(store.evictions()) == 16  # the record ring is bounded too

    def test_duplicate_open_and_finalize_remove(self):
        store, _ = self._store()
        store.open(SessionState("a"))
        with pytest.raises(StreamError):
            store.open(SessionState("a"))
        store.remove("a")
        assert store.stats()["finalized"] == 1
        assert store.evictions() == []  # completion is not an eviction
        with pytest.raises(UnknownSession):
            store.remove("a")


# ---------------------------------------------------------------------------
# Append validation: the typed RequestError gate
# ---------------------------------------------------------------------------
class TestAppendValidation:
    def test_rejects_malformed_chunks(self):
        with pytest.raises(RequestError, match="non-empty"):
            validate_append_times([])
        with pytest.raises(RequestError, match="finite"):
            validate_append_times([0.0, np.nan])
        with pytest.raises(RequestError, match="duplicate"):
            validate_append_times([0.0, 96.0, 96.0])
        with pytest.raises(RequestError, match="out-of-order"):
            validate_append_times([0.0, 96.0, 48.0])

    def test_rejects_chunks_behind_the_session(self):
        with pytest.raises(RequestError, match="duplicate"):
            validate_append_times([96.0], last_time=96.0)
        with pytest.raises(RequestError, match="out-of-order"):
            validate_append_times([48.0], last_time=96.0)
        out = validate_append_times([192.0, 288.0], last_time=96.0)
        assert out.dtype == np.float64 and len(out) == 2

    def test_service_append_rejections_are_typed(self, data, model):
        service = StreamingRecoveryService.from_model(model, _config(data))
        sample = data.test[0]
        raw = sample.raw_low
        sid = service.open()
        service.append(sid, raw.xy[:2], raw.times[:2])
        with pytest.raises(RequestError):  # behind the session's newest fix
            service.append(sid, raw.xy[:1], raw.times[:1])
        with pytest.raises(RequestError):  # same ε_ρ step as an old fix
            service.append(sid, raw.xy[2:3], raw.times[1:2] + 0.001)
        with pytest.raises(RequestError):  # NaN coordinates
            service.append(sid, np.array([[np.nan, 0.0]]),
                           raw.times[2:3])
        with pytest.raises(RequestError):  # shape mismatch
            service.append(sid, raw.xy[2:4], raw.times[2:3])
        # The session survived every rejection and still accepts fixes.
        update = service.append(sid, raw.xy[2:3], raw.times[2:3])
        assert update.grid_length > 0
        assert service.telemetry.stats()["errors"] == 4

    def test_open_on_a_finalized_or_unknown_session_fails(self, data, model):
        service = StreamingRecoveryService.from_model(model, _config(data))
        with pytest.raises(UnknownSession):
            service.append("nope", np.zeros((1, 2)), [0.0])
        sample = data.test[0]
        sid, _, _ = _drive(service, sample, chunk=2)
        with pytest.raises(UnknownSession):  # finalize removed it
            service.finalize(sid)
        with pytest.raises(RequestError):  # < 2 fixes cannot finalize
            sid2 = service.open()
            service.append(sid2, sample.raw_low.xy[:1],
                           sample.raw_low.times[:1])
            service.finalize(sid2)


# ---------------------------------------------------------------------------
# Decoder primitives the engine is built on
# ---------------------------------------------------------------------------
class TestDecoderPrimitives:
    def test_split_decode_is_bit_identical_to_unsplit(self, data, model):
        batch = make_batch(data.test[:3])
        encoded = model.encode(batch)
        from repro.core.decoder import interpolation_prior

        constraint = batch.constraint_tensor(data.network.num_segments)
        constraint = constraint * interpolation_prior(
            batch, data.network, model.config.decode_prior_scale,
            model.config.decode_prior_floor)
        whole_seg, whole_rate = model.decoder.decode_greedy(
            encoded.point_features, encoded.trajectory_feature,
            batch.target_length, constraint, reachability=model.reachability)

        carry = model.decoder.initial_carry(encoded.trajectory_feature.data)
        parts = []
        cut = batch.target_length // 2
        for lo, hi in ((0, cut), (cut, batch.target_length)):
            seg, rate, carry = model.decoder.decode_greedy_from(
                encoded.point_features, carry, hi - lo,
                constraint[:, lo:hi], reachability=model.reachability)
            parts.append((seg, rate))
        assert np.array_equal(np.concatenate([p[0] for p in parts], axis=1),
                              whole_seg)
        assert np.array_equal(np.concatenate([p[1] for p in parts], axis=1),
                              whole_rate)

    def test_replay_reproduces_decode_rates_and_carry(self, data, model):
        batch = make_batch(data.test[:2])
        encoded = model.encode(batch)
        constraint = batch.constraint_tensor(data.network.num_segments)
        carry = model.decoder.initial_carry(encoded.trajectory_feature.data)
        segments, rates, end_carry = model.decoder.decode_greedy_from(
            encoded.point_features, carry, batch.target_length, constraint,
            reachability=model.reachability)

        replay_carry = model.decoder.initial_carry(
            encoded.trajectory_feature.data)
        replay_rates, replay_end = model.decoder.replay_greedy(
            encoded.point_features, replay_carry, segments)
        assert np.array_equal(replay_rates, rates)
        assert np.array_equal(replay_end.state, end_carry.state)
        assert np.array_equal(replay_end.prev_segments,
                              end_carry.prev_segments)

    def test_suffix_constraint_matches_full_tensor_slice(self, data, model):
        from repro.core.decoder import interpolation_prior

        sample = data.test[0]
        engine = IncrementalEngine(data.network, _config(data).ingest())
        batch = make_batch([sample])
        full = batch.constraint_tensor(data.network.num_segments)
        full = full * interpolation_prior(
            batch, data.network, model.config.decode_prior_scale,
            model.config.decode_prior_floor)
        for start in (0, 3, sample.target_length - 1):
            suffix = engine._suffix_constraint(model, sample, start)
            assert np.array_equal(suffix, full[:, start:])


# ---------------------------------------------------------------------------
# The correctness anchor: finalize == one-shot, across the matrix
# ---------------------------------------------------------------------------
class TestStreamingEquivalence:
    @pytest.mark.parametrize("chunk", [1, 2, 3])
    @pytest.mark.parametrize("horizon", [0, 2, 64])
    def test_finalize_equals_oneshot(self, data, model, chunk, horizon):
        service = StreamingRecoveryService.from_model(
            model, _config(data, commit_horizon=horizon))
        for sample in data.test[:2]:
            expected = _reference(model, data, sample)
            _, _, response = _drive(service, sample, chunk)
            got = response.trajectory
            assert np.array_equal(got.segments, expected.segments)
            assert np.array_equal(got.ratios, expected.ratios)
            assert np.array_equal(got.times, expected.times)

    @pytest.mark.parametrize("chunk", [1, 3])
    def test_finalize_equals_oneshot_at_denser_sampling(
            self, data_gap4, model_gap4, chunk):
        service = StreamingRecoveryService.from_model(
            model_gap4, _config(data_gap4, commit_horizon=2))
        for sample in data_gap4.test[:2]:
            expected = _reference(model_gap4, data_gap4, sample)
            _, _, response = _drive(service, sample, chunk)
            assert np.array_equal(response.trajectory.segments,
                                  expected.segments)
            assert np.array_equal(response.trajectory.ratios,
                                  expected.ratios)

    def test_committed_prefix_never_changes_after_commit(self, data, model):
        service = StreamingRecoveryService.from_model(
            model, _config(data, commit_horizon=2))
        sample = data.test[0]
        _, updates, _ = _drive(service, sample, chunk=1)
        decoded = [u for u in updates if u.trajectory is not None]
        for earlier, later in zip(decoded, decoded[1:]):
            frozen = earlier.committed_steps
            assert later.committed_steps >= frozen
            assert np.array_equal(later.trajectory.segments[:frozen],
                                  earlier.trajectory.segments[:frozen])
            assert later.revised_from == -1 or later.revised_from >= frozen

    def test_wide_horizon_streams_the_exact_oneshot_every_append(
            self, data, model):
        """With a horizon wider than the grid nothing commits: every update
        is a full decode from step 0, finalize short-circuits (no second
        decode) and still equals the one-shot result."""
        engine_config = _config(data, commit_horizon=10_000)
        service = StreamingRecoveryService.from_model(model, engine_config)
        sample = data.test[1]
        expected = _reference(model, data, sample)
        sid, updates, _ = _drive(service, sample, chunk=1)
        last = updates[-1]
        assert last.committed_steps == 0 and last.skipped_steps == 0
        assert np.array_equal(last.trajectory.segments, expected.segments)

        # Engine-level: the stored full decode is returned verbatim.
        engine = IncrementalEngine(data.network, engine_config.ingest())
        session = SessionState("x", hour=sample.hour, holiday=sample.holiday)
        engine.append_fixes(session, sample.raw_low.xy, sample.raw_low.times)
        engine.decode(model, session, 10_000)
        trajectory, revised_from, ran_decode = engine.finalize(model, session)
        assert not ran_decode and revised_from == -1
        assert np.array_equal(trajectory.segments, expected.segments)


# ---------------------------------------------------------------------------
# Service semantics: updates, lifecycle, telemetry
# ---------------------------------------------------------------------------
class TestStreamingService:
    def test_update_bookkeeping(self, data, model):
        service = StreamingRecoveryService.from_model(
            model, _config(data, commit_horizon=2), shard="cd")
        sample = data.test[0]
        sid, updates, response = _drive(service, sample, chunk=1)
        assert updates[0].trajectory is None  # one fix cannot decode yet
        assert updates[0].session_id == sid
        for update in updates[1:]:
            assert update.trajectory is not None
            assert len(update.trajectory) == update.grid_length
            assert update.decoded_steps + update.skipped_steps == \
                update.grid_length
            assert update.committed_steps <= update.grid_length
            assert update.shard == "cd" and update.model == "default"
        # Later appends resume from the checkpoint instead of step 0.
        assert updates[-1].skipped_steps > 0
        assert response.session_id == sid
        assert response.shard == "cd"

    def test_telemetry_splits_streaming_from_oneshot(self, data, model):
        service = StreamingRecoveryService.from_model(model, _config(data))
        tag = service.registry.active_ref()[1]
        # One-shot traffic through the same telemetry object.
        service.telemetry.record_request(0.01, cache_hit=False, model_tag=tag)
        _drive(service, data.test[0], chunk=2)
        stats = service.stats()
        assert stats["streaming_requests"] >= 3  # appends + finalize
        assert stats["oneshot_requests"] == 1
        assert stats["streaming_by_model"][tag] == stats["streaming_requests"]
        assert tag in stats["revision_rate_by_model"]
        assert 0.0 <= stats["revision_rate_by_model"][tag] <= 1.0
        assert stats["sessions"]["opened"] == 1
        assert stats["sessions"]["finalized"] == 1
        assert stats["commit_horizon"] == _config(data).commit_horizon

    def test_store_pressure_surfaces_through_the_service(self, data, model):
        clock = FakeClock()
        service = StreamingRecoveryService.from_model(
            model, _config(data, capacity=1, ttl_seconds=50.0,
                           evict_idle_seconds=1_000.0),
            clock=clock)
        sample = data.test[0]
        sid = service.open()
        service.append(sid, sample.raw_low.xy[:2], sample.raw_low.times[:2])
        clock.advance(5.0)
        with pytest.raises(SessionOverloaded):  # resident session too fresh
            service.open()
        clock.advance(60.0)  # TTL passes; next open sweeps the stale session
        sid2 = service.open()
        with pytest.raises(UnknownSession):
            service.append(sid, sample.raw_low.xy[2:3],
                           sample.raw_low.times[2:3])
        assert sid2 in service.store
        records = service.evictions()
        assert records and records[-1]["session_id"] == sid
        assert records[-1]["reason"] == "ttl"
        assert records[-1]["fixes"] == 2

    def test_hot_swap_invalidates_the_carry_checkpoint(self, data, model):
        service = StreamingRecoveryService.from_model(
            model, _config(data, commit_horizon=2))
        challenger = RNTrajRec(data.network, TINY).eval()
        service.registry.add_loaded("challenger", challenger)
        sample = data.test[0]
        raw = sample.raw_low
        sid = service.open(hour=sample.hour, holiday=sample.holiday)
        for j in range(len(raw) - 1):
            update = service.append(sid, raw.xy[j:j + 1], raw.times[j:j + 1])
        assert update.skipped_steps > 0  # a checkpoint was in use

        service.registry.activate("challenger")
        update = service.append(sid, raw.xy[-1:], raw.times[-1:])
        assert update.model == "challenger"
        assert update.skipped_steps == 0  # old-weights carry was dropped

        response = service.finalize(sid)
        expected = _reference(challenger, data, sample)
        assert np.array_equal(response.trajectory.segments,
                              expected.segments)

    def test_closed_service_refuses_work(self, data, model):
        service = StreamingRecoveryService.from_model(model, _config(data))
        service.close()
        with pytest.raises(RuntimeError):
            service.open()


# ---------------------------------------------------------------------------
# Session -> shard affinity over a cluster
# ---------------------------------------------------------------------------
class TestStreamingCluster:
    @pytest.fixture()
    def cluster(self, data):
        built = RecoveryCluster(
            side_by_side(["chengdu", "chengdu"], gap=600.0),
            model_factory=lambda spec, network: RNTrajRec(network,
                                                          TINY).eval(),
            network_factory=lambda spec: data.network,
        )
        yield built
        built.close()

    def test_sessions_pin_to_the_owning_shard(self, data, cluster):
        streaming = StreamingCluster(cluster)
        sample = data.test[0]
        origin = cluster.shards[1].spec.origin
        shifted = sample.raw_low.xy + np.asarray(origin)

        sid, shard_name = streaming.open(shifted[0], hour=sample.hour,
                                         holiday=sample.holiday)
        assert shard_name == cluster.shards[1].name
        for j in range(len(shifted)):
            update = streaming.append(sid, shifted[j:j + 1],
                                      sample.raw_low.times[j:j + 1])
            assert update.shard == shard_name
        response = streaming.finalize(sid)
        assert response.shard == shard_name

        # Localized appends produce the same recovery the owning shard's
        # model gives for the city-frame trace.  The reference round-trips
        # the global->local translation too: (xy + origin) - origin is not
        # bitwise xy, and the decode is deliberately bit-exact, not robust
        # to sub-micron coordinate perturbation.
        local = shifted - np.asarray(origin)
        request = RecoveryRequest(local, sample.raw_low.times,
                                  hour=sample.hour, holiday=sample.holiday)
        assembled = assemble_sample(request, data.network,
                                    _config(data).ingest())
        expected = cluster.shards[1].registry.active_ref()[2] \
            .recover_trajectories(make_batch([assembled]))[0]
        assert np.array_equal(response.trajectory.segments, expected.segments)

        # The pin is released: the session is gone everywhere.
        with pytest.raises(UnknownSession):
            streaming.append(sid, shifted[:1], sample.raw_low.times[:1])
        assert streaming.stats()["pinned_sessions"] == 0
        assert shard_name in streaming.stats()["shards"]

    def test_unroutable_open_is_rejected(self, cluster):
        streaming = StreamingCluster(cluster)
        with pytest.raises(RouteError):
            streaming.open(np.array([1e9, 1e9]))

    def test_evictions_roll_up_with_shard_labels(self, data, cluster):
        clock = FakeClock()
        streaming = StreamingCluster(
            cluster, StreamConfig.for_spec(data.spec, ttl_seconds=10.0),
            clock=clock)
        sample = data.test[0]
        sid, shard_name = streaming.open(sample.raw_low.xy[0])
        streaming.append(sid, sample.raw_low.xy[:2], sample.raw_low.times[:2])
        clock.advance(30.0)
        sid2, _ = streaming.open(sample.raw_low.xy[0])  # sweeps the stale one
        records = streaming.evictions()
        assert [r["session_id"] for r in records] == [sid]
        assert records[0]["shard"] == shard_name
        with pytest.raises(UnknownSession):  # stale pin dropped on contact
            streaming.finalize(sid)
        assert sid2  # the fresh session stays usable
        streaming.close()


# ---------------------------------------------------------------------------
# Degraded-input edges: scenario-generated gaps through the streaming path
# ---------------------------------------------------------------------------
class TestDegradedStreaming:
    @pytest.fixture(scope="class")
    def outage_samples(self, data):
        """Recovery samples whose fixes carry contiguous observation gaps
        (the repro.scenarios Outage degrader over the same city/recipe)."""
        from repro.scenarios import Outage, Scenario, build_scenario_samples
        from repro.trajectory import TrajectorySimulator

        simulator = TrajectorySimulator(data.network, data.spec.simulation)
        pairs = simulator.simulate(6)
        scenario = Scenario(name="outage",
                            transforms=(Outage(gaps=2, min_span=4,
                                               max_span=10),),
                            seed=3)
        return build_scenario_samples(pairs, data.network, scenario,
                                      data.spec.dataset)

    def test_gap_times_pass_append_validation(self, data, outage_samples):
        """Times that jump whole outage windows are still valid appends —
        a gap is not an error; only regressions and duplicates are."""
        interval = data.spec.simulation.sample_interval
        saw_gap = False
        for sample in outage_samples:
            times = sample.raw_low.times
            saw_gap = saw_gap or bool(np.any(np.diff(times) > 8 * interval))
            last = None
            for j in range(len(times)):
                out = validate_append_times(times[j:j + 1], last_time=last)
                assert out.dtype == np.float64
                last = float(times[j])
            # Replaying any pre-gap fix after the gap stays a typed error.
            with pytest.raises(RequestError):
                validate_append_times(times[:1], last_time=last)
        assert saw_gap  # the scenario really produced outage-scale gaps

    def test_outage_sessions_finalize_exactly(self, data, model,
                                              outage_samples):
        """finalize() == one-shot recovery for gap-degraded fix patterns:
        the commit-horizon machinery must not drift when appends land far
        past the committed frontier."""
        service = StreamingRecoveryService.from_model(
            model, _config(data, commit_horizon=2))
        for sample in outage_samples[:3]:
            sid, _, response = _drive(service, sample, chunk=1)
            segments, rates = model.recover(make_batch([sample]))
            assert np.array_equal(response.trajectory.segments, segments[0])
            assert np.array_equal(response.trajectory.ratios, rates[0])

    def test_eviction_ring_under_degraded_churn(self, data, model,
                                                outage_samples):
        """Devices driving degraded traces drop offline mid-trip; the
        eviction ring must account for every aborted session — fixes,
        appends, revisions — and stay bounded."""
        clock = FakeClock()
        service = StreamingRecoveryService.from_model(
            model, _config(data, capacity=2, ttl_seconds=10_000.0,
                           eviction_log=4, commit_horizon=1),
            clock=clock)
        appended: dict = {}
        for round_ in range(4):
            for sample in outage_samples[:2]:
                sid = service.open(hour=sample.hour, holiday=sample.holiday)
                raw = sample.raw_low
                count = 2 + (round_ % 2)  # vary per-session append churn
                for j in range(min(count, len(raw))):
                    service.append(sid, raw.xy[j:j + 1], raw.times[j:j + 1])
                appended[sid] = min(count, len(raw))
                clock.advance(1.0)
                # ... and the device goes dark: no finalize, ever.

        records = service.evictions()
        assert len(records) <= 4  # the ring is bounded by eviction_log
        assert service.store.stats()["evicted_lru"] == 6  # 8 opened, cap 2
        for record in records:
            assert record["reason"] == "lru"
            assert record["fixes"] == record["appends"] == \
                appended[record["session_id"]]
            assert record["revisions"] >= 0
            assert record["committed_steps"] >= 0
        # Aborted sessions with enough fixes did real incremental work —
        # the ring preserves the decode telemetry of sessions nobody will
        # ever finalize.
        assert any(r["committed_steps"] > 0 for r in records
                   if r["fixes"] >= 3)
