"""Serving telemetry: request, latency, cache and batching counters.

Everything is in-process and lock-protected; :meth:`ServingTelemetry.stats`
returns a plain dict so callers (CLI, HTTP endpoint, benchmarks) can dump
it as JSON without further massaging.  Latencies live in a bounded
reservoir — the newest ``reservoir`` observations — which keeps the p50/p95
estimates fresh under sustained load without unbounded memory.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List

from .. import profile


class ServingTelemetry:
    """Counters behind ``RecoveryService.stats()``."""

    def __init__(self, reservoir: int = 4096) -> None:
        self._lock = threading.Lock()
        self._start = time.perf_counter()
        self._latencies: Deque[float] = deque(maxlen=reservoir)
        self.requests = 0
        self.cache_hits = 0
        self.errors = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_occupancy = 0
        # Requests served per model generation tag ("name#generation") —
        # makes hot swaps observable: after a swap the new tag's count
        # starts climbing while the old one freezes.
        self.requests_by_model: Dict[str, int] = {}
        # Streaming traffic (repro.stream session appends/finalizes) kept
        # apart from one-shot traffic, plus how often an append *revised*
        # previously streamed output — per model tag, so an operator can
        # compare revision rates across a rollout.
        self.streaming_requests = 0
        self.streaming_by_model: Dict[str, int] = {}
        self.revisions_by_model: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def record_request(self, latency_seconds: float, cache_hit: bool,
                       model_tag: str = "", streaming: bool = False,
                       revised: bool = False) -> None:
        with self._lock:
            self.requests += 1
            if cache_hit:
                self.cache_hits += 1
            if model_tag:
                self.requests_by_model[model_tag] = (
                    self.requests_by_model.get(model_tag, 0) + 1)
            if streaming:
                self.streaming_requests += 1
                if model_tag:
                    self.streaming_by_model[model_tag] = (
                        self.streaming_by_model.get(model_tag, 0) + 1)
                    if revised:
                        self.revisions_by_model[model_tag] = (
                            self.revisions_by_model.get(model_tag, 0) + 1)
            self._latencies.append(latency_seconds)

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_batch(self, occupancy: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += occupancy
            self.max_batch_occupancy = max(self.max_batch_occupancy, occupancy)

    # ------------------------------------------------------------------
    def latencies(self) -> List[float]:
        """Snapshot of the latency reservoir (seconds) — lets a cluster
        roll true percentiles up across replicas instead of averaging
        per-replica percentiles."""
        with self._lock:
            return list(self._latencies)

    @staticmethod
    def _percentile(sorted_values, fraction: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
        return sorted_values[index]

    def stats(self) -> Dict[str, float]:
        # Sampled outside the lock: a /proc read, not a counter.  Memory
        # is process-wide (replicas share one process), so every replica
        # reports the same figure — the cluster rollup reads one copy.
        memory = profile.memory_snapshot()
        with self._lock:
            elapsed = max(time.perf_counter() - self._start, 1e-9)
            latencies = sorted(self._latencies)
            mean_occupancy = self.batched_requests / self.batches if self.batches else 0.0
            cache_hit_rate = self.cache_hits / self.requests if self.requests else 0.0
            return {
                "rss_mb": memory["rss_mb"],
                "peak_rss_mb": memory["peak_rss_mb"],
                "requests": self.requests,
                "errors": self.errors,
                "uptime_seconds": round(elapsed, 3),
                "qps": round(self.requests / elapsed, 3),
                "latency_ms_p50": round(1000.0 * self._percentile(latencies, 0.50), 3),
                "latency_ms_p95": round(1000.0 * self._percentile(latencies, 0.95), 3),
                "latency_ms_max": round(1000.0 * (latencies[-1] if latencies else 0.0), 3),
                "cache_hits": self.cache_hits,
                "cache_hit_rate": round(cache_hit_rate, 4),
                "batches": self.batches,
                "mean_batch_occupancy": round(mean_occupancy, 3),
                "max_batch_occupancy": self.max_batch_occupancy,
                "requests_by_model": dict(sorted(self.requests_by_model.items())),
                "streaming_requests": self.streaming_requests,
                "oneshot_requests": self.requests - self.streaming_requests,
                "streaming_by_model": dict(sorted(self.streaming_by_model.items())),
                "revisions_by_model": dict(sorted(self.revisions_by_model.items())),
                "revision_rate_by_model": {
                    tag: round(self.revisions_by_model.get(tag, 0) / count, 4)
                    for tag, count in sorted(self.streaming_by_model.items())
                    if count
                },
            }
