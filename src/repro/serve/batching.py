"""Micro-batching scheduler: coalesce concurrent requests into one decode.

The transformer encoder and GRU decoder are batched row-independent
computations, so recovering 16 trajectories in one call costs far less than
16 calls.  The scheduler holds each arriving request for at most
``max_wait_ms``; if ``max_batch_size`` peers (with a compatible shape)
arrive first, the batch dispatches early.  Requests are grouped by a caller
-supplied key — the serving layer groups by input length, padding target
lengths inside the runner — because heterogeneous input lengths cannot
share one encoder pass.

The worker thread owns all scheduling state; callers interact only through
``submit`` (returns a ``concurrent.futures.Future``), ``flush`` and
``close``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

Entry = Tuple[float, Any, Future]

# Group keys are caller-supplied and may be falsy (None, 0, "") — group
# selection must distinguish "no group found" from "found a falsy key".
_NO_GROUP = object()


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy: dispatch at ``max_batch_size`` or after
    ``max_wait_ms`` since the oldest pending request, whichever first."""

    max_batch_size: int = 16
    max_wait_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")


class MicroBatcher:
    """Coalesces ``submit`` calls into grouped ``run_batch`` invocations."""

    def __init__(
        self,
        run_batch: Callable[[List[Any]], Sequence[Any]],
        policy: Optional[BatchPolicy] = None,
        group_key: Optional[Callable[[Any], Hashable]] = None,
        on_batch: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._run_batch = run_batch
        self.policy = policy or BatchPolicy()
        self._group_key = group_key or (lambda item: None)
        self._on_batch = on_batch
        self._cond = threading.Condition()
        self._groups: Dict[Hashable, List[Entry]] = {}
        self._order: List[Hashable] = []  # groups in oldest-first arrival order
        self._inflight = 0
        self._inflight_futures: set = set()
        self._closed = False
        self._force = False
        self._worker = threading.Thread(target=self._loop, daemon=True,
                                        name="microbatcher")
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(self, item: Any) -> Future:
        """Enqueue one item; the future resolves to its batch result."""
        future: Future = Future()
        key = self._group_key(item)
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            if key not in self._groups:
                self._groups[key] = []
                self._order.append(key)
            self._groups[key].append((time.monotonic(), item, future))
            self._cond.notify_all()
        return future

    def flush(self) -> None:
        """Dispatch everything pending *now* and block until it completes.

        Waits on a snapshot of the queued and in-flight work at call time —
        not on the queue becoming empty — so sustained concurrent traffic
        cannot keep a flush blocked forever.
        """
        with self._cond:
            snapshot = [future for group in self._groups.values()
                        for _, _, future in group]
            snapshot.extend(self._inflight_futures)
            if not snapshot:
                return
            self._force = True
            self._cond.notify_all()
        for future in snapshot:
            try:
                future.exception()  # blocks; runner errors stay in the future
            except CancelledError:
                pass
        with self._cond:
            # Re-arm coalescing: without this, submissions arriving right
            # after the drain would keep dispatching as batches of one.
            if not self._closed:
                self._force = False
            self._cond.notify_all()

    def close(self, drain: bool = True) -> None:
        """Stop the worker; ``drain`` dispatches pending work first."""
        failed: List[Entry] = []
        with self._cond:
            if drain:
                self._force = True
            else:
                failed = [entry for group in self._groups.values() for entry in group]
                self._groups.clear()
                self._order.clear()
            self._closed = True
            self._cond.notify_all()
        for _, _, future in failed:
            if future.set_running_or_notify_cancel():
                future.set_exception(RuntimeError("MicroBatcher closed"))
        # A drain must actually wait out in-flight decodes (they can take
        # minutes on large batches); without drain the worker exits promptly.
        self._worker.join(timeout=None if drain else 30.0)

    @property
    def pending(self) -> int:
        """Outstanding *requests*: queued plus currently decoding."""
        with self._cond:
            return sum(len(group) for group in self._groups.values()) + self._inflight

    def _full_group(self) -> Any:
        """The first group with a full batch, else ``_NO_GROUP`` (caller
        must hold the lock)."""
        for key in self._order:
            if len(self._groups[key]) >= self.policy.max_batch_size:
                return key
        return _NO_GROUP

    def _ready_group(self, now: float) -> Any:
        """The oldest group whose wait window has expired, else
        ``_NO_GROUP`` (caller must hold the lock)."""
        wait_seconds = self.policy.max_wait_ms / 1000.0
        for key in self._order:
            if now >= self._groups[key][0][0] + wait_seconds:
                return key
        return _NO_GROUP

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        wait_seconds = self.policy.max_wait_ms / 1000.0
        while True:
            with self._cond:
                while not self._groups and not self._closed:
                    self._force = False
                    self._cond.notify_all()  # wake flush() waiters
                    self._cond.wait()
                if self._closed and not self._groups:
                    self._cond.notify_all()
                    return
                # Expired windows dispatch first (oldest-first, so a partial
                # group can never starve behind a continuously full one),
                # then any full batch; otherwise sleep until the oldest
                # group's window expires or a submission wakes us.
                key: Any = _NO_GROUP
                while not self._force and not self._closed:
                    now = time.monotonic()
                    key = self._ready_group(now)
                    if key is _NO_GROUP:
                        key = self._full_group()
                    if key is not _NO_GROUP:
                        break
                    # Sleep until the *earliest-expiring* group's window, not
                    # the first-created one's — group heads re-anchor after a
                    # partial dispatch, so creation order ≠ expiry order.
                    next_expiry = min(group[0][0] for group in self._groups.values())
                    self._cond.wait(max(next_expiry + wait_seconds - now, 0.0))
                    if not self._groups:  # close(drain=False) cleared the queue
                        break
                if not self._groups:
                    continue
                if key is _NO_GROUP:  # force/close: drain in arrival order
                    key = self._order[0]
                group = self._groups[key]
                take = group[: self.policy.max_batch_size]
                rest = group[self.policy.max_batch_size:]
                if rest:
                    # Keep the group's position; its new head re-anchors the
                    # wait window on the next iteration.
                    self._groups[key] = rest
                else:
                    del self._groups[key]
                    self._order.remove(key)
                self._inflight += len(take)
                self._inflight_futures.update(future for _, _, future in take)
            self._dispatch(take)
            with self._cond:
                self._inflight -= len(take)
                self._inflight_futures.difference_update(
                    future for _, _, future in take)
                self._cond.notify_all()

    def _dispatch(self, entries: List[Entry]) -> None:
        live = [entry for entry in entries
                if entry[2].set_running_or_notify_cancel()]
        if not live:
            return
        items = [item for _, item, _ in live]
        if self._on_batch is not None:
            try:
                self._on_batch(len(items))
            except Exception:
                pass  # a broken metrics hook must never kill the worker
        try:
            results = list(self._run_batch(items))
            if len(results) != len(items):
                raise RuntimeError(
                    f"run_batch returned {len(results)} results for {len(items)} items"
                )
        except BaseException as exc:  # propagate to every waiter
            for _, _, future in live:
                future.set_exception(exc)
            return
        for (_, _, future), result in zip(live, results):
            future.set_result(result)
