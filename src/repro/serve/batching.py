"""Micro-batching scheduler: coalesce concurrent requests into one decode.

The transformer encoder and GRU decoder are batched row-independent
computations, so recovering 16 trajectories in one call costs far less than
16 calls.  The scheduler holds each arriving request for at most
``max_wait_ms``; if ``max_batch_size`` peers (with a compatible shape)
arrive first, the batch dispatches early.  Requests are grouped by a caller
-supplied key — the serving layer groups by input length, padding target
lengths inside the runner — because heterogeneous input lengths cannot
share one encoder pass.

The worker thread owns all scheduling state; callers interact only through
``submit`` (returns a ``concurrent.futures.Future``), ``flush`` and
``close``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

Entry = Tuple[float, Any, Future]

# Group keys are caller-supplied and may be falsy (None, 0, "") — group
# selection must distinguish "no group found" from "found a falsy key".
_NO_GROUP = object()


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing policy: dispatch at ``max_batch_size`` or after
    ``max_wait_ms`` since the oldest pending request, whichever first."""

    max_batch_size: int = 16
    max_wait_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")


class MicroBatcher:
    """Coalesces ``submit`` calls into grouped ``run_batch`` invocations."""

    def __init__(
        self,
        run_batch: Callable[[List[Any]], Sequence[Any]],
        policy: Optional[BatchPolicy] = None,
        group_key: Optional[Callable[[Any], Hashable]] = None,
        on_batch: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._run_batch = run_batch
        self.policy = policy or BatchPolicy()
        self._group_key = group_key or (lambda item: None)
        self._on_batch = on_batch
        self._cond = threading.Condition()
        self._groups: Dict[Hashable, List[Entry]] = {}
        self._order: List[Hashable] = []  # groups in oldest-first arrival order
        self._inflight = 0
        self._inflight_futures: set = set()
        self._closed = False
        self._force = False
        self._worker = threading.Thread(target=self._loop, daemon=True,
                                        name="microbatcher")
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(self, item: Any) -> Future:
        """Enqueue one item; the future resolves to its batch result."""
        future: Future = Future()
        key = self._group_key(item)
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            if key not in self._groups:
                self._groups[key] = []
                self._order.append(key)
            self._groups[key].append((time.monotonic(), item, future))
            self._cond.notify_all()
        return future

    def flush(self) -> None:
        """Dispatch everything pending *now* and block until it completes.

        Waits on a snapshot of the queued and in-flight work at call time —
        not on the queue becoming empty — so sustained concurrent traffic
        cannot keep a flush blocked forever.
        """
        with self._cond:
            snapshot = [future for group in self._groups.values()
                        for _, _, future in group]
            snapshot.extend(self._inflight_futures)
            if not snapshot:
                return
            self._force = True
            self._cond.notify_all()
        for future in snapshot:
            try:
                future.exception()  # blocks; runner errors stay in the future
            except CancelledError:
                pass
        with self._cond:
            # Re-arm coalescing: without this, submissions arriving right
            # after the drain would keep dispatching as batches of one.
            if not self._closed:
                self._force = False
            self._cond.notify_all()

    def close(self, drain: bool = True) -> None:
        """Stop the worker; ``drain`` dispatches pending work first."""
        failed: List[Entry] = []
        with self._cond:
            if drain:
                self._force = True
            else:
                failed = [entry for group in self._groups.values() for entry in group]
                self._groups.clear()
                self._order.clear()
            self._closed = True
            self._cond.notify_all()
        for _, _, future in failed:
            if future.set_running_or_notify_cancel():
                future.set_exception(RuntimeError("MicroBatcher closed"))
        # A drain must actually wait out in-flight decodes (they can take
        # minutes on large batches); without drain the worker exits promptly.
        self._worker.join(timeout=None if drain else 30.0)

    @property
    def pending(self) -> int:
        """Outstanding *requests*: queued plus currently decoding."""
        with self._cond:
            return sum(len(group) for group in self._groups.values()) + self._inflight

    def _full_group(self) -> Any:
        """The first group with a full batch, else ``_NO_GROUP`` (caller
        must hold the lock)."""
        for key in self._order:
            if len(self._groups[key]) >= self.policy.max_batch_size:
                return key
        return _NO_GROUP

    def _ready_group(self, now: float) -> Any:
        """The oldest group whose wait window has expired, else
        ``_NO_GROUP`` (caller must hold the lock)."""
        wait_seconds = self.policy.max_wait_ms / 1000.0
        for key in self._order:
            if now >= self._groups[key][0][0] + wait_seconds:
                return key
        return _NO_GROUP

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        wait_seconds = self.policy.max_wait_ms / 1000.0
        while True:
            with self._cond:
                while not self._groups and not self._closed:
                    self._force = False
                    self._cond.notify_all()  # wake flush() waiters
                    self._cond.wait()
                if self._closed and not self._groups:
                    self._cond.notify_all()
                    return
                # Expired windows dispatch first (oldest-first, so a partial
                # group can never starve behind a continuously full one),
                # then any full batch; otherwise sleep until the oldest
                # group's window expires or a submission wakes us.
                key: Any = _NO_GROUP
                while not self._force and not self._closed:
                    now = time.monotonic()
                    key = self._ready_group(now)
                    if key is _NO_GROUP:
                        key = self._full_group()
                    if key is not _NO_GROUP:
                        break
                    # Sleep until the *earliest-expiring* group's window, not
                    # the first-created one's — group heads re-anchor after a
                    # partial dispatch, so creation order ≠ expiry order.
                    next_expiry = min(group[0][0] for group in self._groups.values())
                    self._cond.wait(max(next_expiry + wait_seconds - now, 0.0))
                    if not self._groups:  # close(drain=False) cleared the queue
                        break
                if not self._groups:
                    continue
                if key is _NO_GROUP:  # force/close: drain in arrival order
                    key = self._order[0]
                group = self._groups[key]
                take = group[: self.policy.max_batch_size]
                rest = group[self.policy.max_batch_size:]
                if rest:
                    # Keep the group's position; its new head re-anchors the
                    # wait window on the next iteration.
                    self._groups[key] = rest
                else:
                    del self._groups[key]
                    self._order.remove(key)
                self._inflight += len(take)
                self._inflight_futures.update(future for _, _, future in take)
            self._dispatch(take)
            with self._cond:
                self._inflight -= len(take)
                self._inflight_futures.difference_update(
                    future for _, _, future in take)
                self._cond.notify_all()

    def _dispatch(self, entries: List[Entry]) -> None:
        live = [entry for entry in entries
                if entry[2].set_running_or_notify_cancel()]
        if not live:
            return
        items = [item for _, item, _ in live]
        if self._on_batch is not None:
            try:
                self._on_batch(len(items))
            except Exception:
                pass  # a broken metrics hook must never kill the worker
        try:
            results = list(self._run_batch(items))
            if len(results) != len(items):
                raise RuntimeError(
                    f"run_batch returned {len(results)} results for {len(items)} items"
                )
        except BaseException as exc:  # propagate to every waiter
            for _, _, future in live:
                future.set_exception(exc)
            return
        for (_, _, future), result in zip(live, results):
            future.set_result(result)


class ContinuousScheduler:
    """Continuous-batching scheduler over a :class:`ContinuousEngine`.

    Replaces run-to-completion draining: the worker thread admits queued
    work into free slots before *every* kernel sweep, steps all in-flight
    sequences once, and resolves each retiring slot's future the moment
    its own sequence finishes.  Futures are keyed by slot, not by
    submission position — completion order is independent of admission
    order, so a short request spliced in late resolves before an earlier
    long one without any cross-wiring of results (the fix for the
    micro-batcher's positional future↔result zip, which only holds
    within one run-to-completion batch).

    Two front doors share the same slot table:

    * ``submit(item)`` — the one-shot path; ``prepare(item)`` builds the
      :class:`DecodeJob` on the worker thread (encode + constraint), and
      ``finish(item, result)`` shapes the resolved value.
    * ``submit_job(job)`` — the streaming path; the caller already holds
      an encoder output and a carry checkpoint (PR 6 sessions), so its
      suffix decode joins the ragged batch as-is and the future resolves
      to the raw :class:`DecodeResult`.

    Everything — admission, prepare, sweeps, resolution — runs on the one
    worker thread by design.  A disaggregated-admission variant (prepare
    on its own thread, vLLM prefill/decode style) was measured and
    rejected: at this model scale both threads are GIL-bound, so overlap
    buys nothing, and removing the prepare-rate admission throttle lets a
    noise burst flood the slot table and melt down tail latency.  The
    single thread keeps admission naturally paced at one prepare per
    sweep round.

    The API mirrors :class:`MicroBatcher` (``submit`` / ``flush`` /
    ``close`` / ``pending``) so the serving layer can swap schedulers by
    config.  ``on_step`` receives the slot occupancy of every kernel
    sweep — the continuous analogue of the micro-batcher's per-batch
    occupancy metric.
    """

    def __init__(
        self,
        prepare: Callable[[Any], "DecodeJob"],
        finish: Optional[Callable[[Any, "DecodeResult"], Any]] = None,
        max_slots: int = 16,
        on_step: Optional[Callable[[int], None]] = None,
    ) -> None:
        from .engine import ContinuousEngine  # avoid import cycle at module load

        self._prepare = prepare
        self._finish = finish or (lambda item, result: result)
        self._on_step = on_step
        self.engine = ContinuousEngine(max_slots)
        self._cond = threading.Condition()
        # queue entries: (is_job, payload, future); _inflight: slot -> entry
        self._queue: List[Tuple[bool, Any, Future]] = []
        self._inflight: Dict[int, Tuple[bool, Any, Future]] = {}
        # Hidden-dim conflicts park here: (is_job, payload, future, job).
        # The future is already RUNNING and the job already prepared, so a
        # retry re-attempts only ``engine.admit`` — no second
        # set_running_or_notify_cancel, no repeated encode.  Only the
        # worker mutates this list (under the lock, so ``pending`` /
        # ``flush`` see a consistent view).
        self._deferred: List[Tuple[bool, Any, Future, Any]] = []
        self._closed = False
        self._drop = False  # close(drain=False): abandon in-flight slots too
        self._worker = threading.Thread(target=self._loop, daemon=True,
                                        name="continuous-scheduler")
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(self, item: Any) -> Future:
        """Enqueue one request; resolves to ``finish(item, result)``."""
        return self._enqueue(False, item)

    def submit_job(self, job: Any) -> Future:
        """Enqueue a pre-built :class:`DecodeJob` (streaming suffix
        decodes join here); resolves to its :class:`DecodeResult`."""
        return self._enqueue(True, job)

    def _enqueue(self, is_job: bool, payload: Any) -> Future:
        future: Future = Future()
        with self._cond:
            if self._closed:
                raise RuntimeError("ContinuousScheduler is closed")
            self._queue.append((is_job, payload, future))
            self._cond.notify_all()
        return future

    def flush(self) -> None:
        """Block until everything pending at call time has completed.

        The engine never idles while work exists (there is no coalescing
        window), so flushing is purely waiting on a snapshot — sustained
        traffic cannot keep it blocked forever.
        """
        with self._cond:
            snapshot = [future for _, _, future in self._queue]
            snapshot.extend(future for _, _, future, _ in self._deferred)
            snapshot.extend(future for _, _, future in self._inflight.values())
        for future in snapshot:
            try:
                future.exception()
            except CancelledError:
                pass

    def close(self, drain: bool = True) -> None:
        """Stop the worker; ``drain`` finishes queued + in-flight decodes
        first, otherwise they fail with ``RuntimeError``."""
        abandoned: List[Future] = []
        with self._cond:
            self._closed = True
            if not drain:
                abandoned = [future for _, _, future in self._queue]
                self._queue.clear()
                self._drop = True
            self._cond.notify_all()
        for future in abandoned:
            if future.set_running_or_notify_cancel():
                future.set_exception(RuntimeError("ContinuousScheduler closed"))
        self._worker.join(timeout=None if drain else 30.0)

    @property
    def pending(self) -> int:
        """Outstanding requests: queued, deferred, plus in flight."""
        with self._cond:
            return (len(self._queue) + len(self._deferred)
                    + len(self._inflight))

    def stats(self) -> Dict[str, Any]:
        with self._cond:
            payload = self.engine.stats()
            payload["queued"] = len(self._queue)
            return payload

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cond:
                while (not self._queue and not self._deferred
                       and not self._inflight and not self._closed):
                    self._cond.notify_all()
                    self._cond.wait()
                if self._closed and self._drop:
                    self._abandon_inflight()
                    return
                if (self._closed and not self._queue and not self._deferred
                        and not self._inflight):
                    self._cond.notify_all()
                    return
                # At most ONE admission per round: prepare (encode +
                # constraint build) costs many sweeps' worth of time, so
                # admitting a whole backlog back-to-back would stall every
                # in-flight slot for the duration — exactly the
                # head-of-line blocking this scheduler exists to remove.
                # One prepare between sweeps bounds the stall and keeps
                # admission throughput unchanged (prepare is the
                # bottleneck either way).  A deferred head blocks new
                # admissions outright: it arrived first, and anything
                # admitted around it would push its drain further out.
                admission = None
                if (not self._deferred and self._queue
                        and self.engine.free_slots):
                    admission = self._queue.pop(0)
            # The prepare runs outside the lock — submitters must not
            # block behind it.
            self._retry_deferred()
            self._admit(admission)
            retired = self._sweep()
            self._resolve(retired)

    def _admit(self, entry: Optional[Tuple[bool, Any, Future]]) -> None:
        if entry is None:
            return
        is_job, payload, future = entry
        if not future.set_running_or_notify_cancel():
            return
        try:
            job = payload if is_job else self._prepare(payload)
            slot = self.engine.admit(job)
        except BaseException as exc:
            future.set_exception(exc)
            return
        if slot is None:
            # Hidden-dim conflict: park the *prepared* job until the table
            # drains.  The future stays RUNNING — retries go through
            # _retry_deferred, which never calls
            # set_running_or_notify_cancel or prepare() again.
            with self._cond:
                self._deferred.append((is_job, payload, future, job))
            return
        with self._cond:
            self._inflight[slot] = entry

    def _retry_deferred(self) -> None:
        while True:
            with self._cond:
                if not self._deferred:
                    return
                is_job, payload, future, job = self._deferred[0]
            try:
                slot = self.engine.admit(job)
            except BaseException as exc:
                future.set_exception(exc)
                slot = None
                admitted = False
            else:
                if slot is None:  # table still occupied by the old dim
                    return        # retry after the next sweep retires slots
                admitted = True
            with self._cond:
                self._deferred.pop(0)
                if admitted:
                    self._inflight[slot] = (is_job, payload, future)

    def _sweep(self) -> list:
        occupancy = self.engine.inflight
        if occupancy and self._on_step is not None:
            try:
                self._on_step(occupancy)
            except Exception:
                pass  # a broken metrics hook must never kill the worker
        return self.engine.step()

    def _resolve(self, retired: list) -> None:
        if not retired:
            return
        with self._cond:
            entries = [(self._inflight.pop(r.slot, None), r) for r in retired]
            self._cond.notify_all()
        for entry, retirement in entries:
            if entry is None:
                continue
            is_job, payload, future = entry
            if retirement.error is not None:
                future.set_exception(retirement.error)
                continue
            try:
                value = (retirement.result if is_job
                         else self._finish(payload, retirement.result))
            except BaseException as exc:
                future.set_exception(exc)
                continue
            future.set_result(value)

    def _abandon_inflight(self) -> None:
        """Caller holds the lock; fail every in-flight (and deferred)
        future and exit."""
        for retirement in self.engine.abort():
            entry = self._inflight.pop(retirement.slot, None)
            # In-flight futures were marked running at admission, so only
            # set the exception (set_running_... would raise here).
            if entry is not None and not entry[2].done():
                entry[2].set_exception(
                    RuntimeError("ContinuousScheduler closed"))
        # Deferred futures are running too (they were marked at first
        # admission attempt) — same exception-only treatment.
        for _, _, future, _ in self._deferred:
            if not future.done():
                future.set_exception(
                    RuntimeError("ContinuousScheduler closed"))
        self._deferred.clear()
        self._cond.notify_all()
