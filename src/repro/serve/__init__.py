"""``repro.serve`` — online trajectory-recovery serving subsystem.

Turns the offline RNTrajRec reproduction into a service: raw low-sample
GPS traces in, recovered ε_ρ map-matched trajectories out, with a
continuous-batching decode engine (slot table advancing every in-flight
sequence one step per kernel sweep; see :mod:`repro.serve.engine`), a
hot-swappable model registry, request-level caching and telemetry.  See
:class:`RecoveryService` for the facade and ``scripts/serve.py`` /
``examples/serve_demo.py`` for runnable entries.
"""

from .batching import BatchPolicy, ContinuousScheduler, MicroBatcher
from .cache import LRUCache, quantize_key
from .engine import (
    ContinuousEngine,
    DecodeJob,
    DecodeResult,
    EngineError,
    SlotTable,
    run_to_completion,
)
from .registry import ModelRegistry, bundle_paths, load_bundle_config, save_model_bundle
from .request import (
    IngestConfig,
    RecoveryRequest,
    RecoveryResponse,
    RequestError,
    assemble_sample,
    grid_alignment,
    validate_append_times,
)
from .service import RecoveryService, ServeConfig
from .telemetry import ServingTelemetry

__all__ = [
    "BatchPolicy",
    "ContinuousEngine",
    "ContinuousScheduler",
    "DecodeJob",
    "DecodeResult",
    "EngineError",
    "MicroBatcher",
    "SlotTable",
    "run_to_completion",
    "LRUCache",
    "quantize_key",
    "ModelRegistry",
    "bundle_paths",
    "load_bundle_config",
    "save_model_bundle",
    "IngestConfig",
    "RecoveryRequest",
    "RecoveryResponse",
    "RequestError",
    "assemble_sample",
    "grid_alignment",
    "validate_append_times",
    "RecoveryService",
    "ServeConfig",
    "ServingTelemetry",
]
