"""Request-level LRU result cache keyed by quantized input trajectories.

GPS devices re-report near-identical traces (stopped vehicles, retries,
duplicated uploads); quantizing positions and timestamps before hashing
turns those into cache hits without ever returning a result for a
meaningfully different input.  Keys also fold in the environmental context
and the active model name, so a hot-swap never serves stale recoveries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

import numpy as np


def quantize_key(xy: np.ndarray, times: np.ndarray, xy_precision: float = 0.1,
                 time_precision: float = 0.1, extra: Tuple = ()) -> Hashable:
    """A hashable key for a raw trace, quantized to the given precisions.

    Times are keyed relative to the first fix: the model only sees relative
    times plus the hour-of-day context, so two traces offset by whole
    seconds are equivalent requests.
    """
    xy = np.asarray(xy, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    qxy = np.round(xy / xy_precision).astype(np.int64)
    qt = np.round((times - times[0]) / time_precision).astype(np.int64)
    return (extra, qxy.shape, qxy.tobytes(), qt.tobytes())


class LRUCache:
    """A thread-safe LRU mapping with hit/miss accounting."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self.hits += 1
                return self._store[key]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._store[key] = value
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
