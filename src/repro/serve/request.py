"""Serving request/response types and raw-GPS → sample assembly.

At serving time there is no ground-truth target; a request carries only the
raw low-sample GPS fixes (plus the environmental context the encoder
expects).  :func:`assemble_sample` rebuilds exactly the structures the
offline :func:`~repro.trajectory.dataset.build_samples` pipeline produces —
the ε_ρ output time grid, the observed-step alignment, and the Eq. 16
constraint masks — with a dummy all-zeros target, so the trained model's
:meth:`recover` path runs unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..roadnet.network import RoadNetwork
from ..trajectory.dataset import RecoverySample, SparseMask, constraint_for_fix
from ..trajectory.resample import epsilon_grid
from ..trajectory.trajectory import MatchedTrajectory, RawTrajectory


class RequestError(ValueError):
    """A request that cannot be turned into a valid recovery sample."""


@dataclass(frozen=True)
class RecoveryRequest:
    """One raw low-sample GPS trace to densify.

    ``xy`` is (n, 2) planar meters, ``times`` (n,) seconds (strictly
    increasing); ``hour``/``holiday`` are the environmental context features
    of §IV-E (defaulting to a weekday noon).
    """

    xy: np.ndarray
    times: np.ndarray
    hour: int = 12
    holiday: bool = False
    request_id: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "xy", np.asarray(self.xy, dtype=np.float64))
        object.__setattr__(self, "times", np.asarray(self.times, dtype=np.float64))

    @classmethod
    def from_raw(cls, raw: RawTrajectory, hour: int = 12, holiday: bool = False,
                 request_id: str = "") -> "RecoveryRequest":
        return cls(xy=raw.xy, times=raw.times, hour=hour, holiday=holiday,
                   request_id=request_id)

    def raw(self) -> RawTrajectory:
        """Validated raw-trajectory view (raises on malformed input)."""
        try:
            raw = RawTrajectory(self.xy, self.times)
        except ValueError as exc:
            raise RequestError(str(exc)) from exc
        # JSON happily carries NaN/Infinity literals; they pass the shape
        # and monotonicity checks but poison constraint assembly downstream.
        if not (np.all(np.isfinite(raw.xy)) and np.all(np.isfinite(raw.times))):
            raise RequestError("GPS positions and times must be finite")
        return raw


@dataclass(frozen=True)
class RecoveryResponse:
    """The recovered ε_ρ trajectory plus per-request serving metadata.

    ``model`` is the registry name that served the request; ``model_tag``
    is its generation tag (``name#generation``), which distinguishes
    successive checkpoints hot-swapped under the same name — a cluster
    operator rolling out a new model can watch the tag flip per shard.
    ``shard`` is the serving shard's label (empty for a standalone
    service).

    Streaming responses (``repro.stream``) additionally carry the
    ``session_id`` that produced them and ``revised_from`` — the first
    grid-step index whose recovered segment changed relative to the last
    result streamed for the same session (−1 when nothing was revised).
    One-shot responses keep the defaults, so the two traffic classes are
    distinguishable in logs and telemetry.
    """

    request_id: str
    trajectory: MatchedTrajectory
    cached: bool
    latency_ms: float
    model: str = ""
    model_tag: str = ""
    shard: str = ""
    session_id: str = ""
    revised_from: int = -1


@dataclass(frozen=True)
class IngestConfig:
    """Raw-GPS → sample assembly parameters (mirrors ``DatasetConfig``)."""

    interval: float = 12.0        # ε_ρ output grid spacing (seconds)
    beta: float = 15.0            # constraint-mask kernel scale (meters)
    max_gps_error: float = 100.0  # constraint-mask search radius (meters)


def validate_append_times(times: np.ndarray,
                          last_time: Optional[float] = None) -> np.ndarray:
    """Validate a streaming append's timestamps; returns them as float64.

    Whole-trace requests get monotonicity checked once, at ``raw()`` time.
    Streaming clients instead deliver fixes in dribs and drabs, and
    out-of-order or duplicated fixes are their bread-and-butter failure
    mode (buffered radios flush old points, retries re-send the last one).
    This is the append path's typed gate: every fix must be finite,
    strictly increasing *within* the chunk, and strictly after
    ``last_time`` (the session's newest accepted fix).  Violations raise
    :class:`RequestError` naming the offense, so HTTP layers can map them
    to 400 instead of tearing down the session.
    """
    times = np.atleast_1d(np.asarray(times, dtype=np.float64))
    if times.ndim != 1 or len(times) == 0:
        raise RequestError("an append needs a non-empty 1-D times array")
    if not np.all(np.isfinite(times)):
        raise RequestError("append timestamps must be finite")
    diffs = np.diff(times)
    if np.any(diffs == 0):
        raise RequestError(
            f"duplicate timestamp in append chunk: {times.tolist()}")
    if np.any(diffs < 0):
        raise RequestError(
            f"out-of-order timestamps in append chunk: {times.tolist()}")
    if last_time is not None:
        if times[0] == last_time:
            raise RequestError(
                f"duplicate timestamp {times[0]}: the session already has a "
                "fix at that time")
        if times[0] < last_time:
            raise RequestError(
                f"out-of-order append: timestamp {times[0]} is before the "
                f"session's newest fix at {last_time}")
    return times


def grid_alignment(times: np.ndarray, interval: float) -> tuple:
    """(grid times, snapped step indices) for a raw trace on the ε_ρ grid.

    Single source of truth for how a trace maps onto its output grid — the
    decoder (via :func:`assemble_sample`) and the result-cache key derive
    from this one function, so they can never disagree about grid length or
    fix-to-step alignment.
    """
    times = np.asarray(times, dtype=np.float64)
    grid_times = epsilon_grid(float(times[0]), float(times[-1]), interval)
    steps = np.clip(
        np.round((times - times[0]) / interval).astype(np.int64),
        0, len(grid_times) - 1,
    )
    return grid_times, steps


def assemble_sample(request: RecoveryRequest, network: RoadNetwork,
                    config: Optional[IngestConfig] = None,
                    alignment=None) -> RecoverySample:
    """Build a target-less :class:`RecoverySample` from a raw request.

    The output grid spans [t0, t_end] at ``config.interval``; each input fix
    snaps to its nearest grid step (they must map to distinct, increasing
    steps) and contributes an Eq. 16 constraint row, exactly as the offline
    dataset builder does.  The target arrays are placeholders — only their
    length and time grid drive decoding.  ``alignment`` lets a caller that
    already ran :func:`grid_alignment` (the serving cache key path) pass the
    result in instead of recomputing it.
    """
    config = config or IngestConfig()
    raw = request.raw()
    if len(raw) < 2:
        raise RequestError("a recovery request needs at least two GPS fixes")
    grid_times, steps = alignment if alignment is not None else grid_alignment(
        raw.times, config.interval)
    if np.any(np.diff(steps) <= 0):
        raise RequestError(
            "input fixes must map to distinct increasing ε_ρ steps; "
            f"got {steps.tolist()} for interval {config.interval}"
        )

    constraints: list[SparseMask] = [None] * len(grid_times)
    for input_pos, target_step in enumerate(steps):
        x, y = raw.xy[input_pos]
        constraints[int(target_step)] = constraint_for_fix(
            network, x, y, config.beta, config.max_gps_error
        )

    placeholder = MatchedTrajectory(
        np.zeros(len(grid_times), dtype=np.int64),
        np.zeros(len(grid_times)),
        grid_times,
    )
    return RecoverySample(
        raw_low=raw,
        target=placeholder,
        observed_steps=steps,
        constraints=tuple(constraints),
        hour=int(request.hour) % 24,
        holiday=bool(request.holiday),
    )
