"""Model registry: named checkpoints, hot-swap, pinned shared structures.

A bundle is a checkpoint (``<prefix>.npz`` via ``nn.serialization``) plus a
JSON sidecar (``<prefix>.json``) holding the ``RNTrajRecConfig`` the model
was trained with, so a registry can rebuild the exact architecture without
out-of-band knowledge.  The registry owns the expensive shared structures —
the :class:`RoadNetwork` (with its R-tree), one :class:`Grid` per cell
size, and one :class:`ReachabilityMask` per hop count — and pins them into
every model it loads, so hot-swapping checkpoints never rebuilds them.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict
from typing import Dict, Optional, Tuple

from ..core.config import RNTrajRecConfig
from ..core.decoder import ReachabilityMask
from ..core.model import RNTrajRec
from ..geo.grid import Grid
from ..nn.serialization import load_checkpoint, save_checkpoint
from ..nn.tensor import Tensor
from ..roadnet.artifacts import CityArtifacts
from ..roadnet.network import RoadNetwork


def bundle_paths(prefix: str) -> Tuple[str, str]:
    """(checkpoint path, config path) for a bundle prefix."""
    stem = prefix[:-4] if prefix.endswith(".npz") else prefix
    return stem + ".npz", stem + ".json"


def save_model_bundle(model: RNTrajRec, prefix: str) -> Tuple[str, str]:
    """Write ``<prefix>.npz`` + ``<prefix>.json`` and return both paths."""
    ckpt_path, config_path = bundle_paths(prefix)
    save_checkpoint(model, ckpt_path)
    with open(config_path, "w") as handle:
        json.dump({"model": "rntrajrec", "config": asdict(model.config)}, handle, indent=1)
    return ckpt_path, config_path


def load_bundle_config(prefix: str) -> Optional[RNTrajRecConfig]:
    """The config sidecar of a bundle, or None if it has none."""
    _, config_path = bundle_paths(prefix)
    if not os.path.exists(config_path):
        return None
    with open(config_path) as handle:
        payload = json.load(handle)
    fields = payload.get("config", payload)
    known = set(RNTrajRecConfig.__dataclass_fields__)
    return RNTrajRecConfig(**{k: v for k, v in fields.items() if k in known})


class ModelRegistry:
    """Named RNTrajRec checkpoints over one pinned road network."""

    def __init__(self, network: Optional[RoadNetwork] = None,
                 default_config: Optional[RNTrajRecConfig] = None,
                 artifacts: Optional[CityArtifacts] = None) -> None:
        """``network`` may be omitted when ``artifacts`` is given: the
        registry then pins the bundle's shared zero-copy network, and the
        grid / reachability / weight caches below are seeded from the
        same bundle — N registries over one ``CityArtifacts`` share one
        physical copy of everything immutable."""
        if network is None:
            if artifacts is None:
                raise ValueError("ModelRegistry needs a network or artifacts")
            network = artifacts.network()
        self.network = network
        self.artifacts = artifacts
        self.default_config = default_config
        self._lock = threading.RLock()
        self._prefixes: Dict[str, str] = {}
        self._loaded: Dict[str, RNTrajRec] = {}
        # Bumped whenever a name is (re)registered: serving cache keys and
        # batch group keys fold in the generation, so re-registering an
        # updated checkpoint under an existing name invalidates old entries.
        self._generations: Dict[str, int] = {}
        self._grids: Dict[float, Grid] = {}
        self._reachability: Dict[int, ReachabilityMask] = {}
        self._active: Optional[str] = None

    # ------------------------------------------------------------------
    def register(self, name: str, prefix: str, activate: bool = False) -> None:
        """Register a bundle prefix under ``name`` (lazy-loaded)."""
        with self._lock:
            self._prefixes[name] = prefix
            self._loaded.pop(name, None)  # re-registering invalidates the old load
            self._generations[name] = self._generations.get(name, 0) + 1
            if activate or self._active is None:
                self._active = name

    def add_loaded(self, name: str, model: RNTrajRec, activate: bool = False) -> None:
        """Register an already-built model (in-memory hot-swap, tests)."""
        model.eval()
        self._pin(model)
        with self._lock:
            self._loaded[name] = model
            self._generations[name] = self._generations.get(name, 0) + 1
            if activate or self._active is None:
                self._active = name

    def load(self, name: str) -> RNTrajRec:
        """The named model, loading and pinning it on first use.

        The expensive work (model construction, checkpoint read, mask
        building) happens outside the lock so serving threads calling
        :meth:`active` are never stalled by a hot-swap load; concurrent
        first loads of the same name race benignly (one result wins).
        """
        with self._lock:
            if name in self._loaded:
                return self._loaded[name]
            if name not in self._prefixes:
                raise KeyError(f"unknown model {name!r}; registered: {self.names()}")
            prefix = self._prefixes[name]
            generation = self._generations.get(name, 0)
        config = load_bundle_config(prefix) or self.default_config or RNTrajRecConfig()
        model = RNTrajRec(self.network, config, grid=self._shared_grid(config))
        load_checkpoint(model, bundle_paths(prefix)[0])
        model.eval()
        self._pin(model)
        with self._lock:
            if self._generations.get(name, 0) == generation:
                return self._loaded.setdefault(name, model)
        # Re-registered while we were loading: discard and load the new bundle.
        return self.load(name)

    def activate(self, name: str) -> RNTrajRec:
        """Make ``name`` the active model (hot-swap), loading if needed."""
        model = self.load(name)
        with self._lock:
            self._active = name
        return model

    def active(self) -> Tuple[str, RNTrajRec]:
        with self._lock:
            name = self._active
        if name is None:
            raise RuntimeError("registry has no active model")
        return name, self.load(name)

    def active_ref(self) -> Tuple[str, str, RNTrajRec]:
        """(name, generation tag, model) — the tag distinguishes successive
        checkpoints registered under the same name.  The pairing is atomic:
        if a re-register lands between reading the tag and loading the
        model, we retry so a tag is never paired with a newer generation's
        model (which would let stale and fresh results share cache keys)."""
        while True:
            with self._lock:
                name = self._active
                if name is None:
                    raise RuntimeError("registry has no active model")
                generation = self._generations.get(name, 0)
            model = self.load(name)
            with self._lock:
                if (self._active == name
                        and self._generations.get(name, 0) == generation):
                    return name, f"{name}#{generation}", model

    def active_tag(self) -> Tuple[str, str]:
        """(active name, generation tag) without loading the model.

        The process-backend parent tracks which generation its workers
        serve without ever materializing a model of its own; the loaded
        path keeps using :meth:`active_ref` for its atomicity guarantee.
        """
        with self._lock:
            name = self._active
            if name is None:
                raise RuntimeError("registry has no active model")
            return name, f"{name}#{self._generations.get(name, 0)}"

    def activate_unloaded(self, name: str) -> None:
        """Make ``name`` active *without* loading it.

        A process-backend parent registry is pure bookkeeping — its
        worker processes load and serve the actual models — so a swap
        must not pull a checkpoint into the parent.  The name must be
        registered; serving from this registry afterwards lazily loads
        as usual.
        """
        with self._lock:
            if name not in self._prefixes and name not in self._loaded:
                raise KeyError(
                    f"unknown model {name!r}; registered: {self.names()}")
            self._active = name

    def evict(self, name: str) -> None:
        """Drop ``name``'s loaded model (in-flight batches keep their own
        reference, so they finish unharmed).  A bundle-backed name stays
        registered and lazily reloads from disk on next use; an in-memory
        name (``add_loaded``) is gone for good.  The active model cannot
        be evicted."""
        with self._lock:
            if name == self._active:
                raise ValueError(f"cannot evict the active model {name!r}")
            self._loaded.pop(name, None)
            # The generation counter survives eviction on purpose: if the
            # name is ever re-registered, its tag must not collide with
            # cache entries produced by the evicted generation.

    def names(self):
        with self._lock:
            return sorted(set(self._prefixes) | set(self._loaded))

    @property
    def active_name(self) -> Optional[str]:
        with self._lock:
            return self._active

    # ------------------------------------------------------------------
    def register_artifact_model(self, name: str = "default",
                                activate: bool = False) -> RNTrajRec:
        """Build and register the frozen model packed in the pinned
        :class:`CityArtifacts` bundle.

        The model's parameters and buffers are adopted as read-only views
        of the artifact arrays (``load_state_dict(copy=False)``) and the
        precomputed X_road is installed directly, so loading N models from
        one bundle costs O(1) array memory per model and never reruns the
        road encoder.  The model is eval-only by construction: any
        in-place weight write raises on the protected views.
        """
        if self.artifacts is None or not self.artifacts.has_model():
            raise ValueError("registry has no artifact bundle with a packed model")
        config = (self.artifacts.model_config() or self.default_config
                  or RNTrajRecConfig())
        model = RNTrajRec(self.network, config, grid=self._shared_grid(config))
        model.load_state_dict(self.artifacts.model_state(), copy=False)
        self.add_loaded(name, model, activate=activate)
        x_road = self.artifacts.road_features()
        if x_road is not None:
            # The memo is a pure function of the frozen weights; install
            # the packed copy after add_loaded's eval() (train-mode flips
            # clear the cache, so this must be the last touch).
            model.encoder._road_cache = Tensor(x_road)
        return model

    # ------------------------------------------------------------------
    def _shared_grid(self, config: RNTrajRecConfig) -> Grid:
        cell = float(config.grid_cell_size)
        with self._lock:
            grid = self._grids.get(cell)
        if grid is None:
            built = None
            if self.artifacts is not None:
                packed = self.artifacts.grid()
                if packed is not None and float(packed.cell_size) == cell:
                    built = packed  # identical floats to make_grid(cell)
            if built is None:
                built = self.network.make_grid(cell)  # built outside the lock
            with self._lock:
                grid = self._grids.setdefault(cell, built)
        return grid

    def _pin(self, model: RNTrajRec) -> None:
        """Share one reachability mask per hop count across loaded models."""
        hops = model.config.reachability_hops
        if hops <= 0:
            return
        with self._lock:
            mask = self._reachability.get(hops)
        if mask is None:
            # Adopt a mask the model already built lazily, else the
            # artifact bundle's packed closure, rather than repeating the
            # k-hop BFS over every segment.
            built = model._reachability
            if (built is None or built.hops != hops) and self.artifacts is not None:
                packed = self.artifacts.reachability()
                if packed is not None and packed.hops == hops:
                    built = packed
            if built is None or built.hops != hops:
                built = ReachabilityMask(self.network.out_neighbors, hops=hops)
            with self._lock:
                mask = self._reachability.setdefault(hops, built)
        model._reachability = mask
