"""Continuous-batching decode engine: the shard-level slot table.

The micro-batching scheduler admits a batch and runs it to completion —
a short request admitted behind a long one waits for the whole decode.
This module is the LLM-serving-style alternative: a
:class:`ContinuousEngine` holds a fixed pool of decode *slots*, each one
in-flight greedy decode, and :meth:`ContinuousEngine.step` advances
**every** active slot one decode step.  Finished slots retire the moment
their own sequence ends (not when the longest neighbor does), and new
arrivals splice into freed slots mid-flight.

Bit-identity is the design constraint, not an aspiration.  On this
platform OpenBLAS GEMM results are *not* row-stable — ``(A @ B)[i]``
differs bitwise from ``A[i:i+1] @ B`` — so stacking slots into one
``(b, d)`` GEMM would make a request's output depend on what else is in
flight.  The engine therefore advances each slot with the exact
batch-of-1 op sequence of ``decode_greedy`` (:func:`~repro.core.decoder.\
greedy_step` on that slot's row views), which makes interleaving
unobservable *by construction*: any admission order, retirement order, or
splice pattern replays precisely the floating-point ops of a solo
run-to-completion decode.  The throughput win comes from what continuous
batching actually changes — no head-of-line blocking, no padding to the
group's longest grid, per-sequence weight unpacking and attention-key
projection hoisted to admission — not from cross-slot GEMM fusion.

The slot table packs per-sequence carries into contiguous arrays
(``state``/``prev_embed``/``prev_rate``/``prev_segment`` rows) with a
LIFO free list, so slot reuse is O(1) and the hot step loop works on row
views without allocation.  Streaming suffix decodes join the same table:
a :class:`DecodeJob` built from a PR 6 carry checkpoint (with
``checkpoint_at`` marking the commit boundary) decodes next to fresh
one-shot requests, and its boundary carry is snapshotted in-flight.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from .. import profile
from ..core.decoder import GreedyCarry, GreedyWeights, greedy_step


class EngineError(RuntimeError):
    """A decode job the engine cannot run (bad shape, saturated table)."""


def copy_carry(carry: GreedyCarry) -> GreedyCarry:
    """A deep copy — safe to hand out after the slot's rows are reused."""
    return GreedyCarry(
        state=np.array(carry.state, copy=True),
        prev_embed=np.array(carry.prev_embed, copy=True),
        prev_rate=np.array(carry.prev_rate, copy=True),
        prev_segments=(None if carry.prev_segments is None
                       else np.array(carry.prev_segments, copy=True)),
    )


@dataclass
class DecodeJob:
    """One sequence's decode work, self-contained and model-resolved.

    ``enc`` is the (1, l_τ, d) encoder output, ``carry`` the starting
    :class:`GreedyCarry` (``initial_carry`` for one-shot requests, a
    session checkpoint for streaming joins), ``constraint`` the
    (1, num_steps, |V|) mask rows for exactly the decoded span (or
    ``None``).  ``weights`` is the unpacked parameter bundle — cached per
    model ``tag`` by the scheduler so slots under the same generation
    share it.  ``keys`` is the hoisted attention-key projection; leave it
    ``None`` and admission computes ``weights.project_keys(enc)`` once.
    ``checkpoint_at`` ≥ 0 asks for a carry snapshot after that many steps
    (the streaming commit boundary); −1 disables it.
    """

    enc: np.ndarray
    carry: GreedyCarry
    num_steps: int
    constraint: Optional[np.ndarray]
    weights: GreedyWeights
    reachability: Any = None
    tag: str = ""
    keys: Optional[np.ndarray] = None
    checkpoint_at: int = -1


@dataclass
class DecodeResult:
    """What retiring a slot yields.

    ``segments``/``rates`` are (num_steps,) arrays, bit-identical to row 0
    of the equivalent ``decode_greedy``/``decode_greedy_from`` call.
    ``carry`` is the final carry (deep copy — the slot is already free),
    ``checkpoint`` the carry after ``checkpoint_at`` steps when the job
    asked for one.
    """

    segments: np.ndarray
    rates: np.ndarray
    carry: GreedyCarry
    checkpoint: Optional[GreedyCarry] = None


class SlotTable:
    """Packed ragged-batch state: one row per in-flight sequence.

    Carry components live in contiguous ``(capacity, d)`` arrays so the
    step loop reads and writes row views without per-step allocation;
    per-slot objects (job, hoisted keys, output buffers) live in parallel
    lists.  Slot ids are recycled through a LIFO free list — the most
    recently retired slot is reused first, keeping the active rows dense
    and cache-warm under steady traffic.
    """

    def __init__(self, capacity: int, hidden_dim: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}")
        self.capacity = int(capacity)
        self.hidden_dim = int(hidden_dim)
        s, d = self.capacity, self.hidden_dim
        self.state = np.zeros((s, d))
        self.prev_embed = np.zeros((s, d))
        self.prev_rate = np.zeros((s, 1))
        self.prev_segment = np.zeros(s, dtype=np.int64)
        self.has_prev = np.zeros(s, dtype=bool)
        self.step = np.zeros(s, dtype=np.int64)
        self.active = np.zeros(s, dtype=bool)
        self.jobs: List[Optional[DecodeJob]] = [None] * s
        self.keys: List[Optional[np.ndarray]] = [None] * s
        self.segments_out: List[Optional[np.ndarray]] = [None] * s
        self.rates_out: List[Optional[np.ndarray]] = [None] * s
        self.checkpoints: List[Optional[GreedyCarry]] = [None] * s
        self._free = list(range(s - 1, -1, -1))  # LIFO: pop() yields slot 0 first
        self._active_ids: List[int] = []  # ascending; mirrors ``active``
        # The row views never move (the arrays are allocated once), so the
        # per-slot carry views are built here and reused every sweep
        # instead of being resliced per step.  Two variants per slot: with
        # and without the previous-segment row (``prev_segments`` is None
        # until the slot's first decoded step).
        self._view_prev = [GreedyCarry(
            state=self.state[i:i + 1], prev_embed=self.prev_embed[i:i + 1],
            prev_rate=self.prev_rate[i:i + 1],
            prev_segments=self.prev_segment[i:i + 1]) for i in range(s)]
        self._view_no_prev = [GreedyCarry(
            state=self.state[i:i + 1], prev_embed=self.prev_embed[i:i + 1],
            prev_rate=self.prev_rate[i:i + 1], prev_segments=None)
            for i in range(s)]

    @property
    def inflight(self) -> int:
        return self.capacity - len(self._free)

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def active_slots(self) -> np.ndarray:
        return np.asarray(self._active_ids, dtype=np.int64)

    def active_ids(self) -> List[int]:
        """Active slot ids, ascending — a copy, safe to iterate while
        retiring."""
        return list(self._active_ids)

    def admit(self, job: DecodeJob, keys: np.ndarray) -> int:
        """Seat a job in a free slot; returns the slot id."""
        if not self._free:
            raise EngineError("slot table is full")
        i = self._free.pop()
        carry = job.carry
        self.state[i] = carry.state[0]
        self.prev_embed[i] = carry.prev_embed[0]
        self.prev_rate[i] = carry.prev_rate[0]
        if carry.prev_segments is None:
            self.has_prev[i] = False
        else:
            self.prev_segment[i] = carry.prev_segments[0]
            self.has_prev[i] = True
        self.step[i] = 0
        self.jobs[i] = job
        self.keys[i] = keys
        self.segments_out[i] = np.zeros(job.num_steps, dtype=np.int64)
        self.rates_out[i] = np.zeros(job.num_steps)
        # checkpoint_at == 0: the commit boundary is the admitted carry
        # itself (a streaming append whose committing chunk is empty).
        self.checkpoints[i] = copy_carry(carry) if job.checkpoint_at == 0 else None
        self.active[i] = True
        bisect.insort(self._active_ids, i)
        return i

    def carry_view(self, i: int) -> GreedyCarry:
        """The slot's carry as (1, ·) row views — zero-copy reads; the
        step writes back through :meth:`store_carry`."""
        return (self._view_prev[i] if self.has_prev[i]
                else self._view_no_prev[i])

    def store_carry(self, i: int, carry: GreedyCarry) -> None:
        self.state[i] = carry.state[0]
        self.prev_embed[i] = carry.prev_embed[0]
        self.prev_rate[i] = carry.prev_rate[0]
        if carry.prev_segments is None:
            self.has_prev[i] = False
        else:
            self.prev_segment[i] = carry.prev_segments[0]
            self.has_prev[i] = True

    def retire(self, i: int) -> None:
        """Free the slot: scrub its rows and push it back on the free list."""
        if not self.active[i]:
            raise EngineError(f"slot {i} is not active")
        self.active[i] = False
        self._active_ids.remove(i)
        self.state[i] = 0.0
        self.prev_embed[i] = 0.0
        self.prev_rate[i] = 0.0
        self.prev_segment[i] = 0
        self.has_prev[i] = False
        self.step[i] = 0
        self.jobs[i] = None
        self.keys[i] = None
        self.segments_out[i] = None
        self.rates_out[i] = None
        self.checkpoints[i] = None
        self._free.append(i)


@dataclass
class Retirement:
    """One slot finishing (or failing) during a :meth:`ContinuousEngine.step`."""

    slot: int
    job: DecodeJob
    result: Optional[DecodeResult] = None
    error: Optional[BaseException] = None


class ContinuousEngine:
    """Admit / step / retire over a :class:`SlotTable`.

    Single-threaded by design: one engine belongs to one scheduler worker
    (one per :class:`~repro.serve.RecoveryService`, so one per shard
    replica).  The table is (re)built lazily from the first admitted
    job's hidden dim; a job with a different hidden dim (a hot swap to a
    differently-sized architecture) waits until the table drains —
    :meth:`admit` returns ``None`` to signal "defer, retry when empty".
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"engine capacity must be >= 1; got {capacity}")
        self.capacity = int(capacity)
        self.table: Optional[SlotTable] = None
        self.steps = 0        # kernel sweeps run
        self.slot_steps = 0   # per-slot decode steps run (Σ occupancy)
        self.admitted = 0
        self.retired = 0

    @property
    def inflight(self) -> int:
        return self.table.inflight if self.table is not None else 0

    @property
    def free_slots(self) -> int:
        return self.table.free_slots if self.table is not None else self.capacity

    def admit(self, job: DecodeJob) -> Optional[int]:
        """Seat a job; returns its slot id, or ``None`` when the job's
        hidden dim conflicts with in-flight work (retry after a drain).
        Raises :class:`EngineError` when the table is full."""
        if job.num_steps < 1:
            raise EngineError(
                f"decode jobs need >= 1 step; got {job.num_steps}")
        if job.enc.ndim != 3 or job.enc.shape[0] != 1:
            raise EngineError(
                f"job enc must be (1, l, d); got {job.enc.shape}")
        if job.checkpoint_at > job.num_steps:
            raise EngineError(
                f"checkpoint_at {job.checkpoint_at} beyond num_steps "
                f"{job.num_steps}")
        d = int(job.enc.shape[2])
        if self.table is None or (self.table.hidden_dim != d
                                  and self.table.inflight == 0):
            self.table = SlotTable(self.capacity, d)
        elif self.table.hidden_dim != d:
            return None
        keys = job.keys if job.keys is not None else job.weights.project_keys(job.enc)
        slot = self.table.admit(job, keys)
        self.admitted += 1
        return slot

    def step(self) -> List[Retirement]:
        """Advance every active slot one decode step; returns retirements.

        Each slot runs :func:`greedy_step` on its own (1, ·) row views —
        the exact batch-of-1 op sequence of the run-to-completion kernel —
        so results cannot depend on co-residents.  A slot whose step
        raises retires with the error; the others are unaffected.
        """
        table = self.table
        if table is None:
            return []
        slots = table.active_ids()
        if not slots:
            return []
        retirements: List[Retirement] = []
        with profile.section("engine.step"):
            for i in slots:
                job = table.jobs[i]
                j = int(table.step[i])
                try:
                    mask_row = (job.constraint[:, j, :]
                                if job.constraint is not None else None)
                    predicted, step_rates, carry = greedy_step(
                        job.weights, job.enc, table.keys[i],
                        table.carry_view(i), mask_row, job.reachability)
                    table.segments_out[i][j] = predicted[0]
                    table.rates_out[i][j] = step_rates[0]
                    table.store_carry(i, carry)
                    table.step[i] = j + 1
                    if j + 1 == job.checkpoint_at:
                        table.checkpoints[i] = copy_carry(carry)
                    if j + 1 == job.num_steps:
                        result = DecodeResult(
                            segments=table.segments_out[i],
                            rates=table.rates_out[i],
                            carry=copy_carry(carry),
                            checkpoint=table.checkpoints[i],
                        )
                        retirements.append(Retirement(i, job, result=result))
                        table.retire(i)
                except Exception as exc:  # quarantine the slot, keep stepping
                    retirements.append(Retirement(i, job, error=exc))
                    table.retire(i)
        self.steps += 1
        self.slot_steps += len(slots)
        self.retired += len(retirements)
        return retirements

    def abort(self) -> List[Retirement]:
        """Drop every in-flight slot (shutdown without drain); returns the
        abandoned slots as error retirements."""
        table = self.table
        if table is None:
            return []
        dropped: List[Retirement] = []
        for i in table.active_ids():
            job = table.jobs[i]
            dropped.append(Retirement(
                i, job, error=EngineError("engine aborted before completion")))
            table.retire(i)
        self.retired += len(dropped)
        return dropped

    def stats(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "inflight": self.inflight,
            "engine_steps": self.steps,
            "slot_steps": self.slot_steps,
            "admitted": self.admitted,
            "retired": self.retired,
        }


def run_to_completion(engine: ContinuousEngine,
                      jobs: List[DecodeJob]) -> List[DecodeResult]:
    """Admit what fits, step until drained, admitting as slots free up.

    A synchronous convenience for tests and offline use — the serving
    path drives the engine from :class:`~repro.serve.batching.\
ContinuousScheduler` instead.  Results come back in ``jobs`` order.
    """
    results: List[Optional[DecodeResult]] = [None] * len(jobs)
    slot_to_index: Dict[int, int] = {}
    pending = list(enumerate(jobs))
    pending.reverse()  # pop() from the front of the original order

    def _admit_available() -> None:
        while pending and engine.free_slots > 0:
            index, job = pending[-1]
            slot = engine.admit(job)
            if slot is None:
                return  # dim conflict: head-of-line waits for a drain
            pending.pop()
            slot_to_index[slot] = index

    _admit_available()
    while slot_to_index:
        for retirement in engine.step():
            index = slot_to_index.pop(retirement.slot)
            if retirement.error is not None:
                raise retirement.error
            results[index] = retirement.result
        _admit_available()
    return [result for result in results if result is not None]
