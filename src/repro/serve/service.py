"""`RecoveryService` — the online trajectory-recovery facade.

Raw GPS requests come in; recovered ε_ρ trajectories come out.  The
pipeline per request:

1. **cache probe** — quantized-input LRU lookup (keyed with the active
   model name, so hot-swaps never serve stale results);
2. **assembly** — :func:`~repro.serve.request.assemble_sample` turns the
   raw fixes into the same sample structure the offline pipeline builds;
3. **scheduling** — by default the continuous-batching engine
   (:mod:`repro.serve.engine`): the request is admitted into a decode
   slot and advances one step per kernel sweep next to everything else
   in flight, retiring as soon as its own grid ends.  The legacy
   ``microbatch`` scheduler (coalesce by input length, pad targets, one
   :meth:`RNTrajRec.recover_padded` call, run to completion) remains
   selectable via ``ServeConfig.scheduler``;
4. **telemetry** — latency, QPS, cache and occupancy counters behind
   :meth:`RecoveryService.stats`.

``submit`` is the async surface (returns a future), ``recover`` the
blocking convenience, ``recover_many`` the bulk path used by the demo,
benchmark and CLI.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .. import profile
from ..core.config import RNTrajRecConfig
from ..core.decoder import GreedyWeights
from ..core.model import RNTrajRec
from ..nn.tensor import no_grad
from ..roadnet.network import RoadNetwork
from ..trajectory.dataset import RecoverySample, make_batch, make_padded_batch
from ..trajectory.trajectory import MatchedTrajectory
from .batching import BatchPolicy, ContinuousScheduler, MicroBatcher
from .cache import LRUCache, quantize_key
from .engine import DecodeJob, DecodeResult
from .registry import ModelRegistry
from .request import (
    IngestConfig,
    RecoveryRequest,
    RecoveryResponse,
    RequestError,
    assemble_sample,
    grid_alignment,
)
from .telemetry import ServingTelemetry


@dataclass(frozen=True)
class ServeConfig:
    """Serving-layer knobs: ingest grid, batching policy, cache sizing."""

    interval: float = 12.0         # ε_ρ output grid spacing (seconds)
    beta: float = 15.0             # constraint kernel scale (meters)
    max_gps_error: float = 100.0   # constraint search radius (meters)
    # "continuous" (default): the slot-table decode engine — max_batch_size
    # is the slot count, max_wait_ms is unused (admission is immediate).
    # "microbatch": the PR 1 run-to-completion coalescing scheduler.
    scheduler: str = "continuous"
    max_batch_size: int = 16
    max_wait_ms: float = 5.0
    cache_capacity: int = 1024
    xy_precision: float = 0.1      # cache-key quantization (meters)
    time_precision: float = 0.1    # cache-key quantization (seconds)

    def __post_init__(self) -> None:
        if self.scheduler not in ("continuous", "microbatch"):
            raise ValueError(
                f"scheduler must be 'continuous' or 'microbatch'; "
                f"got {self.scheduler!r}")

    @classmethod
    def for_spec(cls, spec, **overrides) -> "ServeConfig":
        """Ingest parameters derived from a ``DatasetSpec`` alone, so the
        serving constraint masks match the ones the model was trained with
        (ε_ρ interval, β kernel scale, GPS error radius).  This is the
        light path for servers that only need the network + spec — no
        trajectory simulation or sample building required."""
        params = dict(
            interval=spec.simulation.sample_interval,
            beta=spec.dataset.beta,
            max_gps_error=spec.dataset.max_gps_error,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def for_dataset(cls, data, **overrides) -> "ServeConfig":
        """:meth:`for_spec` over a materialized ``LoadedDataset``."""
        return cls.for_spec(data.spec, **overrides)

    def ingest(self) -> IngestConfig:
        return IngestConfig(interval=self.interval, beta=self.beta,
                            max_gps_error=self.max_gps_error)

    def policy(self) -> BatchPolicy:
        return BatchPolicy(max_batch_size=self.max_batch_size,
                           max_wait_ms=self.max_wait_ms)


class RecoveryService:
    """Online recovery over a :class:`ModelRegistry`."""

    def __init__(self, registry: ModelRegistry,
                 config: Optional[ServeConfig] = None,
                 shard: str = "") -> None:
        self.registry = registry
        self.config = config or ServeConfig()
        self.shard = shard  # cluster shard label; stamped on every response
        self.telemetry = ServingTelemetry()
        self.cache = LRUCache(self.config.cache_capacity)
        # Work items are (sample, model_tag, model): the model is resolved
        # once at submit time, and the tag travels with the item, so a
        # hot-swap or re-register mid-window never mixes models within a
        # batch nor caches a result under the wrong model's key.
        if self.config.scheduler == "continuous":
            self._weights: dict = {}  # model tag -> GreedyWeights (worker-only)
            self._batcher = ContinuousScheduler(
                self._prepare_job,
                self._finish_job,
                max_slots=self.config.max_batch_size,
                on_step=self.telemetry.record_batch,
            )
        else:
            self._batcher = MicroBatcher(
                self._run_batch,
                policy=self.config.policy(),
                group_key=lambda item: (item[0].input_length, item[1]),
                on_batch=self.telemetry.record_batch,
            )
        self._closed = False

    # ------------------------------------------------------------------
    # Construction conveniences
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(cls, prefix: str, network: RoadNetwork,
                        config: Optional[ServeConfig] = None,
                        model_config: Optional[RNTrajRecConfig] = None,
                        name: str = "default", shard: str = "") -> "RecoveryService":
        """A service over a single saved bundle (see ``save_model_bundle``)."""
        registry = ModelRegistry(network, default_config=model_config)
        registry.register(name, prefix, activate=True)
        registry.load(name)  # fail fast and warm the pinned structures
        return cls(registry, config, shard=shard)

    @classmethod
    def from_model(cls, model: RNTrajRec, config: Optional[ServeConfig] = None,
                   name: str = "default", shard: str = "") -> "RecoveryService":
        """A service over an in-memory model (tests, notebooks)."""
        registry = ModelRegistry(model.network, default_config=model.config)
        registry.add_loaded(name, model, activate=True)
        return cls(registry, config, shard=shard)

    # ------------------------------------------------------------------
    # Request surface
    # ------------------------------------------------------------------
    def submit(self, request: RecoveryRequest) -> "Future[RecoveryResponse]":
        """Asynchronously recover one request; never blocks on the model."""
        if self._closed:
            raise RuntimeError("RecoveryService is closed")
        start = time.perf_counter()
        outer: "Future[RecoveryResponse]" = Future()
        outer.set_running_or_notify_cancel()

        try:
            raw = request.raw()  # cheap validation before keying the cache
            if len(raw) < 2:
                raise RequestError("a recovery request needs at least two GPS fixes")
            model_name, model_tag, model = self.registry.active_ref()
            # The key also folds in the derived ε_ρ grid length and the
            # step each fix snaps to: two traces whose quantized times agree
            # but that would decode on different grids or alignments (e.g.
            # durations straddling a rounding boundary) must never collide.
            grid_times, steps = grid_alignment(request.times, self.config.interval)
            key = quantize_key(
                request.xy, request.times,
                xy_precision=self.config.xy_precision,
                time_precision=self.config.time_precision,
                extra=(model_tag, int(request.hour) % 24, bool(request.holiday),
                       len(grid_times), steps.tobytes()),
            )
        except Exception as exc:
            self.telemetry.record_error()
            outer.set_exception(exc)
            return outer

        cached = self.cache.get(key)
        if cached is not None:
            # Keys quantize times relative to the first fix (the model only
            # sees relative times), so a time-shifted duplicate trace hits —
            # rebase the cached grid onto this request's time origin.  The
            # arrays are copied so callers mutating a response can never
            # poison the cache entry.
            shift = float(raw.times[0]) - float(cached.times[0])
            trajectory = MatchedTrajectory(
                cached.segments.copy(), cached.ratios.copy(), cached.times + shift)
            latency = time.perf_counter() - start
            self.telemetry.record_request(latency, cache_hit=True,
                                          model_tag=model_tag)
            outer.set_result(RecoveryResponse(
                request_id=request.request_id, trajectory=trajectory,
                cached=True, latency_ms=1000.0 * latency, model=model_name,
                model_tag=model_tag, shard=self.shard,
            ))
            return outer

        try:
            sample = assemble_sample(request, self.registry.network,
                                     self.config.ingest(),
                                     alignment=(grid_times, steps))
            # close() may race us past the _closed check at entry; the
            # batcher's own refusal must fail the future, not submit().
            inner = self._batcher.submit((sample, model_tag, model))
        except Exception as exc:
            self.telemetry.record_error()
            outer.set_exception(exc)
            return outer

        def _complete(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                self.telemetry.record_error()
                outer.set_exception(exc)
                return
            trajectory: MatchedTrajectory = done.result()
            latency = time.perf_counter() - start
            self.cache.put(key, MatchedTrajectory(
                trajectory.segments.copy(), trajectory.ratios.copy(),
                trajectory.times.copy()))
            self.telemetry.record_request(latency, cache_hit=False,
                                          model_tag=model_tag)
            outer.set_result(RecoveryResponse(
                request_id=request.request_id, trajectory=trajectory,
                cached=False, latency_ms=1000.0 * latency, model=model_name,
                model_tag=model_tag, shard=self.shard,
            ))

        inner.add_done_callback(_complete)
        return outer

    def recover(self, request: RecoveryRequest,
                timeout: Optional[float] = None) -> RecoveryResponse:
        """Blocking single-request recovery."""
        return self.submit(request).result(timeout=timeout)

    def recover_many(self, requests: Sequence[RecoveryRequest],
                     timeout: Optional[float] = None) -> List[RecoveryResponse]:
        """Submit every request before waiting — the batching-friendly path."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    # Operations surface
    # ------------------------------------------------------------------
    def swap_model(self, name: str) -> None:
        """Hot-swap the active model; in-flight batches finish on the old
        one, new submissions (and cache keys) use the new one."""
        self.registry.activate(name)

    @property
    def scheduler(self) -> Optional[ContinuousScheduler]:
        """The continuous decode scheduler, when running one — streaming
        services join its slot table (``None`` under ``microbatch``)."""
        batcher = self._batcher
        return batcher if isinstance(batcher, ContinuousScheduler) else None

    def stats(self) -> dict:
        """Telemetry snapshot plus cache/scheduler/registry gauges."""
        payload = self.telemetry.stats()
        payload.update({
            "shard": self.shard,
            "scheduler": self.config.scheduler,
            "cache_size": len(self.cache),
            "cache_capacity": self.cache.capacity,
            "pending": self._batcher.pending,
            "active_model": self.registry.active_name,
            "models": self.registry.names(),
        })
        if self.scheduler is not None:
            payload["engine"] = self.scheduler.stats()
        return payload

    def flush(self) -> None:
        self._batcher.flush()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._batcher.close(drain=True)

    def __enter__(self) -> "RecoveryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _run_batch(self, items: List[Tuple[RecoverySample, str, RNTrajRec]]
                   ) -> List[MatchedTrajectory]:
        """The micro-batch scheduler's runner: one padded batched decode.

        All items share one group key, hence one (submit-time) model — so
        in-flight requests finish on the model that was active when they
        arrived, even across a hot-swap.
        """
        with profile.section("serve.batch"):
            batch, lengths = make_padded_batch([sample for sample, _, _ in items])
            model = items[0][2]
            return model.recover_padded(batch, lengths)

    # ------------------------------------------------------------------
    # Continuous-batching hooks (scheduler-worker thread only)
    # ------------------------------------------------------------------
    def _prepare_job(self, item: Tuple[RecoverySample, str, RNTrajRec]) -> DecodeJob:
        """Admission: one batch-of-1 encode + constraint build, replaying
        exactly the ops ``RNTrajRec.recover`` runs before its decode — the
        structural half of the engine's bit-identity guarantee (the other
        half is the shared per-step kernel)."""
        sample, tag, model = item
        with no_grad(), profile.section("serve.admit"):
            batch = make_batch([sample])
            with profile.section("model.encode"):
                encoded = model.encode(batch)
            return DecodeJob(
                enc=encoded.point_features.data,
                carry=model.decoder.initial_carry(
                    encoded.trajectory_feature.data),
                num_steps=batch.target_length,
                constraint=model.decode_constraint(batch),
                weights=self._greedy_weights(tag, model),
                reachability=model.reachability,
                tag=tag,
            )

    def _finish_job(self, item: Tuple[RecoverySample, str, RNTrajRec],
                    result: DecodeResult) -> MatchedTrajectory:
        sample = item[0]
        return MatchedTrajectory(result.segments, result.rates,
                                 sample.target.times)

    def _greedy_weights(self, tag: str, model: RNTrajRec) -> GreedyWeights:
        """Per-generation unpacked weight bundle, shared by every slot
        decoding under that tag (only the scheduler worker touches this)."""
        weights = self._weights.get(tag)
        if weights is None:
            if len(self._weights) >= 8:  # generations are short-lived
                self._weights.pop(next(iter(self._weights)))
            weights = GreedyWeights.from_decoder(model.decoder)
            self._weights[tag] = weights
        return weights
