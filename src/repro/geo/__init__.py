"""Geographic primitives: distances, projections, grids, spatial index."""

from .distance import (
    EARTH_RADIUS_M,
    LocalProjection,
    bearing,
    euclidean,
    gaussian_weight,
    haversine,
    point_along_polyline,
    polyline_length,
    project_point_to_polyline,
)
from .grid import Grid
from .rtree import RTree

__all__ = [
    "EARTH_RADIUS_M",
    "LocalProjection",
    "bearing",
    "euclidean",
    "gaussian_weight",
    "haversine",
    "point_along_polyline",
    "polyline_length",
    "project_point_to_polyline",
    "Grid",
    "RTree",
]
