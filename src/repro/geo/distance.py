"""Geographic primitives: haversine, local projections, point↔segment math.

Internally the whole system works in a local metric frame (meters east/
north of a reference point) because every paper quantity — GPS error radii,
the δ receptive field, γ/β weight scales, grid cells — is specified in
meters.  :class:`LocalProjection` converts to and from WGS-84 so real
lat/lon data could be plugged in unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

EARTH_RADIUS_M = 6_371_008.8


def haversine(lat1, lon1, lat2, lon2) -> np.ndarray:
    """Great-circle distance in meters between WGS-84 coordinates.

    Accepts scalars or numpy arrays (broadcasting applies).
    """
    lat1, lon1, lat2, lon2 = (np.radians(np.asarray(v, dtype=np.float64)) for v in (lat1, lon1, lat2, lon2))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))


@dataclass(frozen=True)
class LocalProjection:
    """Equirectangular projection around a reference latitude/longitude.

    Accurate to well under a meter over city-scale extents, which is all the
    trajectory-recovery pipeline requires.
    """

    ref_lat: float
    ref_lon: float

    def to_xy(self, lat, lon) -> Tuple[np.ndarray, np.ndarray]:
        lat = np.asarray(lat, dtype=np.float64)
        lon = np.asarray(lon, dtype=np.float64)
        kx = EARTH_RADIUS_M * np.cos(np.radians(self.ref_lat))
        x = np.radians(lon - self.ref_lon) * kx
        y = np.radians(lat - self.ref_lat) * EARTH_RADIUS_M
        return x, y

    def to_latlon(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        kx = EARTH_RADIUS_M * np.cos(np.radians(self.ref_lat))
        lon = self.ref_lon + np.degrees(x / kx)
        lat = self.ref_lat + np.degrees(y / EARTH_RADIUS_M)
        return lat, lon


def euclidean(p: np.ndarray, q: np.ndarray) -> float:
    """Planar distance between two (x, y) points in meters."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    return float(np.hypot(*(p - q))) if p.ndim == 1 else np.linalg.norm(p - q, axis=-1)


def project_point_to_polyline(point: np.ndarray, polyline: np.ndarray) -> Tuple[float, float, np.ndarray]:
    """Project ``point`` onto a polyline of shape ``(k, 2)``.

    Returns ``(distance, ratio, foot)`` where ``distance`` is the
    perpendicular distance in meters, ``ratio`` in [0, 1] is the arc-length
    position of the foot along the polyline (the paper's *moving ratio*),
    and ``foot`` is the projected (x, y).
    """
    point = np.asarray(point, dtype=np.float64)
    polyline = np.asarray(polyline, dtype=np.float64)
    if polyline.ndim != 2 or polyline.shape[0] < 2:
        raise ValueError("polyline must contain at least two vertices")

    starts = polyline[:-1]
    ends = polyline[1:]
    seg_vec = ends - starts
    seg_len2 = np.einsum("ij,ij->i", seg_vec, seg_vec)
    seg_len = np.sqrt(seg_len2)
    # Parameter of the projection clamped to each sub-segment.
    rel = point[None, :] - starts
    t = np.einsum("ij,ij->i", rel, seg_vec) / np.maximum(seg_len2, 1e-12)
    t = np.clip(t, 0.0, 1.0)
    feet = starts + t[:, None] * seg_vec
    dists = np.linalg.norm(point[None, :] - feet, axis=1)

    best = int(np.argmin(dists))
    cumulative = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = max(float(cumulative[-1]), 1e-12)
    along = cumulative[best] + t[best] * seg_len[best]
    ratio = float(np.clip(along / total, 0.0, 1.0))
    return float(dists[best]), ratio, feet[best]


def point_along_polyline(polyline: np.ndarray, ratio: float) -> np.ndarray:
    """Inverse of the projection: the (x, y) at arc-length fraction ``ratio``."""
    polyline = np.asarray(polyline, dtype=np.float64)
    seg_vec = polyline[1:] - polyline[:-1]
    seg_len = np.linalg.norm(seg_vec, axis=1)
    cumulative = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = max(float(cumulative[-1]), 1e-12)
    target = float(np.clip(ratio, 0.0, 1.0)) * total
    index = int(np.searchsorted(cumulative, target, side="right") - 1)
    index = min(index, len(seg_len) - 1)
    leftover = target - cumulative[index]
    frac = leftover / max(seg_len[index], 1e-12)
    return polyline[index] + frac * seg_vec[index]


def polyline_length(polyline: np.ndarray) -> float:
    polyline = np.asarray(polyline, dtype=np.float64)
    return float(np.linalg.norm(polyline[1:] - polyline[:-1], axis=1).sum())


def bearing(p: np.ndarray, q: np.ndarray) -> float:
    """Heading in degrees (0 = east, counter-clockwise) from p to q."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    return float(np.degrees(np.arctan2(q[1] - p[1], q[0] - p[0])))


def gaussian_weight(distance, scale: float) -> np.ndarray:
    """The paper's influence kernel, Eq. 5: exp(-d^2 / scale^2)."""
    distance = np.asarray(distance, dtype=np.float64)
    return np.exp(-(distance**2) / float(scale) ** 2)
