"""Uniform grid partition of the study area (§IV-B).

GridGNN represents each road segment as the sequence of grid cells its
geometry passes through; the decoder input also uses the (x, y) grid index
of each GPS point.  The paper uses 50 m × 50 m cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class Grid:
    """A rows × cols partition of the rectangle [x0, x1) × [y0, y1)."""

    x0: float
    y0: float
    x1: float
    y1: float
    cell_size: float = 50.0

    def to_array(self) -> np.ndarray:
        """The five defining floats, for artifact serialization."""
        return np.array([self.x0, self.y0, self.x1, self.y1, self.cell_size],
                        dtype=np.float64)

    @classmethod
    def from_array(cls, values: np.ndarray) -> "Grid":
        """Rebuild a grid saved with :meth:`to_array` (exact floats, so the
        result compares equal to — and hashes like — the original)."""
        values = np.asarray(values, dtype=np.float64)
        return cls(float(values[0]), float(values[1]), float(values[2]),
                   float(values[3]), float(values[4]))

    @property
    def cols(self) -> int:
        return max(1, int(np.ceil((self.x1 - self.x0) / self.cell_size)))

    @property
    def rows(self) -> int:
        return max(1, int(np.ceil((self.y1 - self.y0) / self.cell_size)))

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    def cell_of(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        """(row, col) indices of points, clamped to the grid boundary."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        col = np.clip(((x - self.x0) // self.cell_size).astype(np.int64), 0, self.cols - 1)
        row = np.clip(((y - self.y0) // self.cell_size).astype(np.int64), 0, self.rows - 1)
        return row, col

    def flat_index(self, row, col) -> np.ndarray:
        """Flattened cell index used for embedding lookup tables."""
        return np.asarray(row, dtype=np.int64) * self.cols + np.asarray(col, dtype=np.int64)

    def flat_cell_of(self, x, y) -> np.ndarray:
        row, col = self.cell_of(x, y)
        return self.flat_index(row, col)

    def cell_center(self, row: int, col: int) -> Tuple[float, float]:
        cx = self.x0 + (col + 0.5) * self.cell_size
        cy = self.y0 + (row + 0.5) * self.cell_size
        return cx, cy

    def traverse_polyline(self, polyline: np.ndarray, step: float | None = None) -> List[Tuple[int, int]]:
        """Ordered, deduplicated cells a polyline passes through.

        Samples the polyline at ``step`` meters (default: half a cell) and
        collapses consecutive duplicates — the grid sequence S_i that feeds
        GridGNN's grid GRU (Eq. 1).
        """
        polyline = np.asarray(polyline, dtype=np.float64)
        if polyline.ndim != 2 or len(polyline) < 2:
            raise ValueError("polyline must contain at least two vertices")
        step = step or self.cell_size / 2.0

        seg_vec = polyline[1:] - polyline[:-1]
        seg_len = np.linalg.norm(seg_vec, axis=1)
        total = float(seg_len.sum())
        count = max(2, int(np.ceil(total / step)) + 1)
        distances = np.linspace(0.0, total, count)

        cumulative = np.concatenate([[0.0], np.cumsum(seg_len)])
        indices = np.clip(np.searchsorted(cumulative, distances, side="right") - 1, 0, len(seg_len) - 1)
        leftover = distances - cumulative[indices]
        frac = leftover / np.maximum(seg_len[indices], 1e-12)
        points = polyline[indices] + frac[:, None] * seg_vec[indices]

        rows, cols = self.cell_of(points[:, 0], points[:, 1])
        cells: List[Tuple[int, int]] = []
        for r, c in zip(rows.tolist(), cols.tolist()):
            if not cells or cells[-1] != (r, c):
                cells.append((r, c))
        return cells
