"""A packed R-tree over rectangles (Guttman [51], STR bulk loading).

The Sub-Graph Generation module must find every road segment within δ
meters of a GPS point for each point of each trajectory, so the lookup is
on the hot path.  The tree is bulk-loaded with the Sort-Tile-Recursive
packing and answers rectangle/radius queries; it stores integer item ids so
callers keep ownership of the geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class _Node:
    bbox: Tuple[float, float, float, float]  # (xmin, ymin, xmax, ymax)
    children: List["_Node"] = field(default_factory=list)
    items: List[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _union_bbox(boxes: np.ndarray) -> Tuple[float, float, float, float]:
    return (
        float(boxes[:, 0].min()),
        float(boxes[:, 1].min()),
        float(boxes[:, 2].max()),
        float(boxes[:, 3].max()),
    )


def _intersects(a: Tuple[float, float, float, float], b: Tuple[float, float, float, float]) -> bool:
    return not (a[2] < b[0] or b[2] < a[0] or a[3] < b[1] or b[3] < a[1])


class RTree:
    """Static R-tree bulk-loaded from item bounding boxes."""

    def __init__(self, bboxes: np.ndarray, leaf_capacity: int = 16) -> None:
        bboxes = np.asarray(bboxes, dtype=np.float64)
        if bboxes.ndim != 2 or bboxes.shape[1] != 4:
            raise ValueError("bboxes must have shape (n, 4): xmin, ymin, xmax, ymax")
        if np.any(bboxes[:, 0] > bboxes[:, 2]) or np.any(bboxes[:, 1] > bboxes[:, 3]):
            raise ValueError("malformed bounding boxes (min > max)")
        self._bboxes = bboxes
        self._leaf_capacity = max(2, leaf_capacity)
        self.root: Optional[_Node] = self._build(np.arange(len(bboxes))) if len(bboxes) else None

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------
    def _build(self, ids: np.ndarray) -> _Node:
        if len(ids) <= self._leaf_capacity:
            return _Node(bbox=_union_bbox(self._bboxes[ids]), items=list(map(int, ids)))

        boxes = self._bboxes[ids]
        centers_x = (boxes[:, 0] + boxes[:, 2]) / 2.0
        centers_y = (boxes[:, 1] + boxes[:, 3]) / 2.0

        leaf_count = int(np.ceil(len(ids) / self._leaf_capacity))
        slice_count = max(1, int(np.ceil(np.sqrt(leaf_count))))
        per_slice = int(np.ceil(len(ids) / slice_count))

        order_x = np.argsort(centers_x, kind="stable")
        children: List[_Node] = []
        for i in range(0, len(ids), per_slice):
            strip = order_x[i : i + per_slice]
            strip_sorted = strip[np.argsort(centers_y[strip], kind="stable")]
            for j in range(0, len(strip_sorted), self._leaf_capacity):
                chunk = ids[strip_sorted[j : j + self._leaf_capacity]]
                children.append(
                    _Node(bbox=_union_bbox(self._bboxes[chunk]), items=list(map(int, chunk)))
                )

        # Pack upward until a single root remains.
        while len(children) > 1:
            parents: List[_Node] = []
            for i in range(0, len(children), self._leaf_capacity):
                group = children[i : i + self._leaf_capacity]
                bbox = (
                    min(c.bbox[0] for c in group),
                    min(c.bbox[1] for c in group),
                    max(c.bbox[2] for c in group),
                    max(c.bbox[3] for c in group),
                )
                parents.append(_Node(bbox=bbox, children=group))
            children = parents
        return children[0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_rect(self, xmin: float, ymin: float, xmax: float, ymax: float) -> List[int]:
        """Ids of items whose bounding box intersects the query rectangle."""
        if self.root is None:
            return []
        query = (xmin, ymin, xmax, ymax)
        result: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not _intersects(node.bbox, query):
                continue
            if node.is_leaf:
                for item in node.items:
                    if _intersects(tuple(self._bboxes[item]), query):
                        result.append(item)
            else:
                stack.extend(node.children)
        return result

    def query_radius(self, x: float, y: float, radius: float) -> List[int]:
        """Candidate ids within ``radius`` of (x, y) — bbox-level filter.

        Callers refine with exact point-to-geometry distance; the tree
        guarantees no false negatives.
        """
        return self.query_rect(x - radius, y - radius, x + radius, y + radius)

    def __len__(self) -> int:
        return len(self._bboxes)
