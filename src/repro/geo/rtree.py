"""A packed R-tree over rectangles (Guttman [51], STR bulk loading).

The Sub-Graph Generation module must find every road segment within δ
meters of a GPS point for each point of each trajectory, so the lookup is
on the hot path.  The tree is bulk-loaded with the Sort-Tile-Recursive
packing and answers rectangle/radius queries; it stores integer item ids so
callers keep ownership of the geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class _Node:
    bbox: Tuple[float, float, float, float]  # (xmin, ymin, xmax, ymax)
    children: List["_Node"] = field(default_factory=list)
    items: List[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _union_bbox(boxes: np.ndarray) -> Tuple[float, float, float, float]:
    return (
        float(boxes[:, 0].min()),
        float(boxes[:, 1].min()),
        float(boxes[:, 2].max()),
        float(boxes[:, 3].max()),
    )


def _intersects(a: Tuple[float, float, float, float], b: Tuple[float, float, float, float]) -> bool:
    return not (a[2] < b[0] or b[2] < a[0] or a[3] < b[1] or b[3] < a[1])


class RTree:
    """Static R-tree bulk-loaded from item bounding boxes."""

    def __init__(self, bboxes: np.ndarray, leaf_capacity: int = 16) -> None:
        bboxes = np.asarray(bboxes, dtype=np.float64)
        if bboxes.ndim != 2 or bboxes.shape[1] != 4:
            raise ValueError("bboxes must have shape (n, 4): xmin, ymin, xmax, ymax")
        if np.any(bboxes[:, 0] > bboxes[:, 2]) or np.any(bboxes[:, 1] > bboxes[:, 3]):
            raise ValueError("malformed bounding boxes (min > max)")
        self._bboxes = bboxes
        self._leaf_capacity = max(2, leaf_capacity)
        self.root: Optional[_Node] = self._build(np.arange(len(bboxes))) if len(bboxes) else None
        self._scan_order: Optional[np.ndarray] = None
        self._scan_boxes: Optional[np.ndarray] = None

    @classmethod
    def from_arrays(cls, bboxes: np.ndarray, scan_order: np.ndarray,
                    scan_boxes: Optional[np.ndarray] = None,
                    leaf_capacity: int = 16) -> "RTree":
        """An index over externally owned (possibly memory-mapped,
        write-protected) arrays, skipping the STR build entirely.

        Every query runs off the scan arrays (see :meth:`_scan_arrays`),
        and ``scan_order`` *is* the original build's traversal order, so
        results are bit-identical to the tree the arrays were exported
        from.  No array is copied: ``np.asarray`` on a matching-dtype
        buffer returns a sharing view and read-only inputs stay read-only.
        """
        tree = object.__new__(cls)
        tree._bboxes = np.asarray(bboxes, dtype=np.float64)
        tree._leaf_capacity = max(2, leaf_capacity)
        if len(tree._bboxes):
            tree._scan_order = np.asarray(scan_order, dtype=np.int64)
            tree._scan_boxes = (np.asarray(scan_boxes, dtype=np.float64)
                                if scan_boxes is not None
                                else tree._bboxes[tree._scan_order])
            # Queries never walk the node tree once scan arrays exist; a
            # bare root carrying the union bbox keeps `root is None`
            # emptiness checks working without re-packing.
            tree.root = _Node(bbox=_union_bbox(tree._bboxes))
        else:
            tree._scan_order = None
            tree._scan_boxes = None
            tree.root = None
        return tree

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------
    def _build(self, ids: np.ndarray) -> _Node:
        if len(ids) <= self._leaf_capacity:
            return _Node(bbox=_union_bbox(self._bboxes[ids]), items=list(map(int, ids)))

        boxes = self._bboxes[ids]
        centers_x = (boxes[:, 0] + boxes[:, 2]) / 2.0
        centers_y = (boxes[:, 1] + boxes[:, 3]) / 2.0

        leaf_count = int(np.ceil(len(ids) / self._leaf_capacity))
        slice_count = max(1, int(np.ceil(np.sqrt(leaf_count))))
        per_slice = int(np.ceil(len(ids) / slice_count))

        order_x = np.argsort(centers_x, kind="stable")
        children: List[_Node] = []
        for i in range(0, len(ids), per_slice):
            strip = order_x[i : i + per_slice]
            strip_sorted = strip[np.argsort(centers_y[strip], kind="stable")]
            for j in range(0, len(strip_sorted), self._leaf_capacity):
                chunk = ids[strip_sorted[j : j + self._leaf_capacity]]
                children.append(
                    _Node(bbox=_union_bbox(self._bboxes[chunk]), items=list(map(int, chunk)))
                )

        # Pack upward until a single root remains.
        while len(children) > 1:
            parents: List[_Node] = []
            for i in range(0, len(children), self._leaf_capacity):
                group = children[i : i + self._leaf_capacity]
                bbox = (
                    min(c.bbox[0] for c in group),
                    min(c.bbox[1] for c in group),
                    max(c.bbox[2] for c in group),
                    max(c.bbox[3] for c in group),
                )
                parents.append(_Node(bbox=bbox, children=group))
            children = parents
        return children[0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _scan_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Item ids in full depth-first traversal order plus their bboxes
        gathered into that order, built lazily on first query.

        A rectangle query emits hits as a *subsequence* of this fixed
        order: the stack walk visits nodes in one deterministic sequence
        and pruning only removes whole subtrees, never reorders survivors.
        That makes the vectorized scan below order-identical to the
        original per-node walk.
        """
        if self._scan_order is None:
            order: List[int] = []
            stack = [self.root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    order.extend(node.items)
                else:
                    stack.extend(node.children)
            self._scan_order = np.asarray(order, dtype=np.int64)
            self._scan_boxes = self._bboxes[self._scan_order]
        return self._scan_order, self._scan_boxes

    def query_rect(self, xmin: float, ymin: float, xmax: float, ymax: float) -> List[int]:
        """Ids of items whose bounding box intersects the query rectangle.

        One vectorized bbox test over every item (gathered in traversal
        order) instead of a recursive node walk: the same float
        comparisons as :func:`_intersects`, the same hit set (a node bbox
        contains its items' bboxes, so node-level pruning never removes a
        hit), and the same output order — bit-identical results for every
        caller, ~an order of magnitude faster on constraint-mask / prior /
        sub-graph hot paths.
        """
        if self.root is None:
            return []
        order, boxes = self._scan_arrays()
        hit = ~((boxes[:, 2] < xmin) | (xmax < boxes[:, 0])
                | (boxes[:, 3] < ymin) | (ymax < boxes[:, 1]))
        return order[hit].tolist()

    def query_radius(self, x: float, y: float, radius: float) -> List[int]:
        """Candidate ids within ``radius`` of (x, y) — bbox-level filter.

        Callers refine with exact point-to-geometry distance; the tree
        guarantees no false negatives.
        """
        return self.query_rect(x - radius, y - radius, x + radius, y + radius)

    def query_radius_many(self, points: np.ndarray, radius: float,
                          block: Optional[int] = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """CSR-packed radius queries for many points in one bbox pass.

        Returns ``(indptr, ids)`` where point ``q``'s candidates occupy
        ``ids[indptr[q]:indptr[q+1]]`` — each row exactly the ids (and
        order) :meth:`query_radius` returns for that point.  The broadcast
        test runs over blocks of query points so peak memory is bounded by
        ``block × n`` booleans rather than ``Q × n`` on large road
        networks, while each block keeps the vectorized inner test.
        ``block`` overrides the default ~4M-boolean budget per block.
        """
        points = np.asarray(points, dtype=np.float64)
        if self.root is None or not len(points):
            return np.zeros(len(points) + 1, dtype=np.int64), np.zeros(0, dtype=np.int64)
        order, boxes = self._scan_arrays()
        if block is None:
            block = (1 << 22) // max(1, len(order))
        block = max(1, min(len(points), block))
        counts = np.zeros(len(points), dtype=np.int64)
        id_blocks: List[np.ndarray] = []
        for start in range(0, len(points), block):
            x = points[start:start + block, 0:1]
            y = points[start:start + block, 1:2]
            hit = ~((boxes[None, :, 2] < x - radius) | (x + radius < boxes[None, :, 0])
                    | (boxes[None, :, 3] < y - radius) | (y + radius < boxes[None, :, 1]))
            counts[start:start + block] = hit.sum(axis=1)
            id_blocks.append(np.broadcast_to(order, hit.shape)[hit])
        indptr = np.zeros(len(points) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        ids = (np.concatenate(id_blocks) if id_blocks
               else np.zeros(0, dtype=np.int64))
        return indptr, ids

    def __len__(self) -> int:
        return len(self._bboxes)
