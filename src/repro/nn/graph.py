"""Graph neural network layers over flat node/edge arrays.

All layers share one calling convention designed for *batched* graphs: the
nodes of every graph in a batch are concatenated into a single
``(num_nodes, dim)`` tensor, and ``edge_index`` is a ``(2, num_edges)``
integer array of (source, target) pairs into that flat numbering.  A
disjoint union of graphs is then just one big graph, so one layer call
processes a whole mini-batch of trajectory sub-graphs (§IV-C) at once.

Self-loops are the caller's responsibility (see
:func:`add_self_loops`); GAT follows Velickovic et al. (Eqs. 3-4 of the
paper) with multi-head attention, GCN uses symmetric degree
normalization, and GIN uses a sum aggregator with an MLP.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .functional import segment_mean, segment_softmax, segment_sum
from .layers import Linear
from .module import Module, ModuleList, Parameter
from .tensor import Tensor, concat, gather_rows


def add_self_loops(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Append (i, i) edges for every node; returns a new ``(2, E')`` array."""
    loops = np.arange(num_nodes, dtype=np.int64)
    return np.concatenate([edge_index, np.stack([loops, loops])], axis=1)


def csr_from_lists(neighbor_lists) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(indptr, indices, degree) CSR arrays from per-node adjacency lists.

    The array form every vectorized adjacency consumer gathers from; node
    ``s``'s neighbors are ``indices[indptr[s]:indptr[s+1]]``.
    """
    n = len(neighbor_lists)
    degree = np.fromiter((len(nbrs) for nbrs in neighbor_lists),
                         dtype=np.int64, count=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degree, out=indptr[1:])
    indices = np.fromiter(
        (v for nbrs in neighbor_lists for v in nbrs),
        dtype=np.int64, count=int(degree.sum()),
    )
    return indptr, indices, degree


def sorted_lookup(haystack: np.ndarray,
                  needles: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Membership of ``needles`` in a sorted ``haystack``.

    Returns ``(hit, positions)`` where ``hit`` is a boolean mask and
    ``positions[hit]`` indexes the matching haystack entries.  The
    searchsorted-then-compare idiom shared by the sub-graph arena's key
    resolution and the reachability BFS frontier dedup.
    """
    needles = np.asarray(needles)
    if not len(haystack):
        return np.zeros(len(needles), dtype=bool), np.zeros(len(needles),
                                                            dtype=np.int64)
    positions = np.minimum(np.searchsorted(haystack, needles),
                           len(haystack) - 1)
    return haystack[positions] == needles, positions


def ragged_positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat gather positions for CSR-style ragged slices.

    Given per-row slice ``starts`` and ``counts`` into some flat array,
    returns the concatenation of ``[starts[k], ..., starts[k] + counts[k])``
    for every row ``k`` — i.e. the index array that gathers all the slices
    at once.  This replaces per-row Python loops over CSR adjacency
    (sub-graph generation, k-hop reachability) with one fancy-indexing op.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    block_ends = np.cumsum(counts)
    # Position within each block: global arange minus the block's offset.
    within = np.arange(total, dtype=np.int64) - np.repeat(block_ends - counts, counts)
    return within + np.repeat(starts, counts)


def validate_edge_index(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    edge_index = np.asarray(edge_index, dtype=np.int64)
    if edge_index.ndim != 2 or edge_index.shape[0] != 2:
        raise ValueError(f"edge_index must have shape (2, E), got {edge_index.shape}")
    if edge_index.size and (edge_index.min() < 0 or edge_index.max() >= num_nodes):
        raise IndexError("edge_index refers to nonexistent nodes")
    return edge_index


class GATLayer(Module):
    """Multi-head graph attention (paper Eqs. 3-4).

    Attention logits use the concatenation form
    ``LeakyReLU(a^T [W h_i || W h_j])`` which decomposes into
    ``a_src^T W h_i + a_dst^T W h_j`` — computed per node then gathered per
    edge, so the cost is O(V + E).
    Heads are concatenated; ``out_dim`` must be divisible by ``num_heads``.
    """

    def __init__(self, in_dim: int, out_dim: int, num_heads: int = 4, slope: float = 0.2) -> None:
        super().__init__()
        if out_dim % num_heads:
            raise ValueError(f"out_dim {out_dim} not divisible by num_heads {num_heads}")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.slope = slope
        self.w = Parameter(init.xavier_uniform(in_dim, out_dim), name="gat.w")
        self.attn_src = Parameter(
            init.xavier_uniform(self.head_dim, num_heads, shape=(num_heads, self.head_dim)),
            name="gat.attn_src",
        )
        self.attn_dst = Parameter(
            init.xavier_uniform(self.head_dim, num_heads, shape=(num_heads, self.head_dim)),
            name="gat.attn_dst",
        )

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        edge_index = validate_edge_index(edge_index, num_nodes)
        src, dst = edge_index[0], edge_index[1]

        transformed = (x @ self.w).reshape(num_nodes, self.num_heads, self.head_dim)
        # Per-node halves of the attention logit, shape (nodes, heads).
        alpha_src = (transformed * self.attn_src).sum(axis=-1)
        alpha_dst = (transformed * self.attn_dst).sum(axis=-1)

        logits = (gather_rows(alpha_src, src) + gather_rows(alpha_dst, dst)).leaky_relu(self.slope)
        weights = segment_softmax(logits, dst, num_nodes)  # normalize over incoming edges

        messages = gather_rows(transformed, src)  # (edges, heads, head_dim)
        weighted = messages * weights.reshape(len(src), self.num_heads, 1)
        aggregated = segment_sum(weighted, dst, num_nodes)
        out = aggregated.reshape(num_nodes, self.out_dim)
        return out.leaky_relu(self.slope)


class GCNLayer(Module):
    """Graph convolution with symmetric normalization (Kipf & Welling)."""

    def __init__(self, in_dim: int, out_dim: int) -> None:
        super().__init__()
        self.linear = Linear(in_dim, out_dim)

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        edge_index = validate_edge_index(edge_index, num_nodes)
        src, dst = edge_index[0], edge_index[1]
        out_degree = np.bincount(src, minlength=num_nodes).astype(np.float64)
        in_degree = np.bincount(dst, minlength=num_nodes).astype(np.float64)
        norm = 1.0 / np.sqrt(np.maximum(out_degree[src], 1.0) * np.maximum(in_degree[dst], 1.0))

        transformed = self.linear(x)
        messages = gather_rows(transformed, src) * Tensor(norm[:, None])
        aggregated = segment_sum(messages, dst, num_nodes)
        return aggregated.relu()


class GINLayer(Module):
    """Graph isomorphism layer: MLP((1 + eps) h_i + sum_j h_j)."""

    def __init__(self, in_dim: int, out_dim: int) -> None:
        super().__init__()
        self.eps = Parameter(np.zeros(1), name="gin.eps")
        self.fc1 = Linear(in_dim, out_dim)
        self.fc2 = Linear(out_dim, out_dim)

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        num_nodes = x.shape[0]
        edge_index = validate_edge_index(edge_index, num_nodes)
        src, dst = edge_index[0], edge_index[1]
        neighbor_sum = segment_sum(gather_rows(x, src), dst, num_nodes)
        combined = x * (1.0 + self.eps) + neighbor_sum
        return self.fc2(self.fc1(combined).relu())


class GraphStack(Module):
    """A stack of homogeneous GNN layers (used for Fig. 7(a) comparisons)."""

    def __init__(self, kind: str, dim: int, num_layers: int, num_heads: int = 4) -> None:
        super().__init__()
        kind = kind.lower()
        builders = {
            "gat": lambda: GATLayer(dim, dim, num_heads=num_heads),
            "gcn": lambda: GCNLayer(dim, dim),
            "gin": lambda: GINLayer(dim, dim),
        }
        if kind not in builders:
            raise ValueError(f"unknown GNN kind {kind!r}; expected one of {sorted(builders)}")
        self.kind = kind
        self.layers = ModuleList(builders[kind]() for _ in range(num_layers))

    def forward(self, x: Tensor, edge_index: np.ndarray) -> Tensor:
        for layer in self.layers:
            x = layer(x, edge_index)
        return x


def graph_mean_pool(x: Tensor, graph_ids: np.ndarray, num_graphs: int) -> Tensor:
    """Mean-pool node features per graph (paper Eq. 8 / GraphReadout)."""
    return segment_mean(x, graph_ids, num_graphs)
