"""Recurrent layers: GRU (Eq. 1 of the paper), LSTM, and bidirectional GRU.

The paper uses GRU cells in three places — GridGNN's grid-sequence encoder,
the MTrajRec-style decoder, and several baselines — and (Bi)LSTM/(Bi)GRU in
the t2vec/T3S/NeuTraj baselines.  Cells operate on a whole batch per step;
sequence wrappers loop over time in Python, which is acceptable at the
sequence lengths used here (tens of steps).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, concat, stack


class GRUCell(Module):
    """Gated recurrent unit cell following Eq. 1.

    ``z`` (update), ``r`` (reset) and candidate ``c`` gates over the
    concatenation ``[h, x]`` with sigmoid/tanh activations.
    """

    def __init__(self, input_dim: int, hidden_dim: int) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        total = input_dim + hidden_dim
        self.w_z = Parameter(init.xavier_uniform(total, hidden_dim), name="gru.w_z")
        self.b_z = Parameter(init.zeros((hidden_dim,)), name="gru.b_z")
        self.w_r = Parameter(init.xavier_uniform(total, hidden_dim), name="gru.w_r")
        self.b_r = Parameter(init.zeros((hidden_dim,)), name="gru.b_r")
        self.w_c = Parameter(init.xavier_uniform(total, hidden_dim), name="gru.w_c")
        self.b_c = Parameter(init.zeros((hidden_dim,)), name="gru.b_c")

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        hx = concat([h, x], axis=-1)
        z = (hx @ self.w_z + self.b_z).sigmoid()
        r = (hx @ self.w_r + self.b_r).sigmoid()
        rhx = concat([r * h, x], axis=-1)
        c = (rhx @ self.w_c + self.b_c).tanh()
        return (1.0 - z) * h + z * c

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_dim)))


class LSTMCell(Module):
    """Standard LSTM cell (Hochreiter & Schmidhuber)."""

    def __init__(self, input_dim: int, hidden_dim: int) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        total = input_dim + hidden_dim
        self.w_i = Parameter(init.xavier_uniform(total, hidden_dim), name="lstm.w_i")
        self.b_i = Parameter(init.zeros((hidden_dim,)), name="lstm.b_i")
        self.w_f = Parameter(init.xavier_uniform(total, hidden_dim), name="lstm.w_f")
        self.b_f = Parameter(init.ones((hidden_dim,)), name="lstm.b_f")
        self.w_o = Parameter(init.xavier_uniform(total, hidden_dim), name="lstm.w_o")
        self.b_o = Parameter(init.zeros((hidden_dim,)), name="lstm.b_o")
        self.w_g = Parameter(init.xavier_uniform(total, hidden_dim), name="lstm.w_g")
        self.b_g = Parameter(init.zeros((hidden_dim,)), name="lstm.b_g")

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h, c = state
        hx = concat([h, x], axis=-1)
        i = (hx @ self.w_i + self.b_i).sigmoid()
        f = (hx @ self.w_f + self.b_f).sigmoid()
        o = (hx @ self.w_o + self.b_o).sigmoid()
        g = (hx @ self.w_g + self.b_g).tanh()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_dim))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class GRU(Module):
    """Unidirectional GRU over ``(batch, time, features)`` inputs."""

    def __init__(self, input_dim: int, hidden_dim: int) -> None:
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor, h0: Optional[Tensor] = None) -> Tuple[Tensor, Tensor]:
        """Return (outputs ``(batch, time, hidden)``, final state)."""
        batch, steps = x.shape[0], x.shape[1]
        h = h0 if h0 is not None else self.cell.initial_state(batch)
        outputs: List[Tensor] = []
        for t in range(steps):
            h = self.cell(x[:, t, :], h)
            outputs.append(h)
        return stack(outputs, axis=1), h


class LSTM(Module):
    """Unidirectional LSTM over ``(batch, time, features)`` inputs."""

    def __init__(self, input_dim: int, hidden_dim: int) -> None:
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor, state=None) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        batch, steps = x.shape[0], x.shape[1]
        if state is None:
            state = self.cell.initial_state(batch)
        h, c = state
        outputs: List[Tensor] = []
        for t in range(steps):
            h, c = self.cell(x[:, t, :], (h, c))
            outputs.append(h)
        return stack(outputs, axis=1), (h, c)


class BiGRU(Module):
    """Bidirectional GRU; outputs concatenate forward and backward passes.

    t2vec's BiLSTM role is filled by this layer (the paper itself swaps GRU
    and LSTM freely between baselines).
    """

    def __init__(self, input_dim: int, hidden_dim: int) -> None:
        super().__init__()
        if hidden_dim % 2:
            raise ValueError("BiGRU hidden_dim must be even (split across directions)")
        half = hidden_dim // 2
        self.forward_rnn = GRU(input_dim, half)
        self.backward_rnn = GRU(input_dim, half)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        fwd_out, fwd_h = self.forward_rnn(x)
        reversed_x = x[:, ::-1, :]
        bwd_out, bwd_h = self.backward_rnn(reversed_x)
        bwd_out = bwd_out[:, ::-1, :]
        outputs = concat([fwd_out, bwd_out], axis=-1)
        final = concat([fwd_h, bwd_h], axis=-1)
        return outputs, final
