"""``repro.nn`` — a pure-numpy neural network substrate.

The RNTrajRec paper builds on PyTorch; PyTorch is not available in this
environment, so this package reimplements the needed subset: a reverse-mode
autograd :class:`~repro.nn.tensor.Tensor`, standard layers (Linear,
Embedding, LayerNorm, BatchNorm, dropout), recurrent cells (GRU/LSTM,
bidirectional), multi-head and additive attention, transformer encoder
layers, graph neural networks (GAT/GCN/GIN) over batched edge lists, and
optimizers (Adam/SGD).
"""

from . import functional, init
from .attention import AdditiveAttention, MultiHeadAttention
from .graph import (
    GATLayer,
    GCNLayer,
    GINLayer,
    GraphStack,
    add_self_loops,
    graph_mean_pool,
    ragged_positions,
)
from .layers import BatchNorm, Dropout, Embedding, FeedForward, LayerNorm, Linear
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, StepLR, clip_grad_norm
from .rnn import GRU, LSTM, BiGRU, GRUCell, LSTMCell
from .serialization import load_archive, load_checkpoint, save_archive, save_checkpoint
from .tensor import (
    Tensor,
    concat,
    gather_rows,
    is_grad_enabled,
    no_grad,
    segment_mean,
    segment_softmax,
    segment_sum,
    stack,
    where,
)
from .transformer import PositionalEncoding, TransformerEncoder, TransformerEncoderLayer, sinusoidal_positions

__all__ = [
    "functional",
    "init",
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concat",
    "stack",
    "where",
    "gather_rows",
    "segment_sum",
    "segment_mean",
    "segment_softmax",
    "Module",
    "ModuleList",
    "Sequential",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "BatchNorm",
    "FeedForward",
    "GRUCell",
    "GRU",
    "BiGRU",
    "LSTMCell",
    "LSTM",
    "MultiHeadAttention",
    "AdditiveAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "PositionalEncoding",
    "sinusoidal_positions",
    "GATLayer",
    "GCNLayer",
    "GINLayer",
    "GraphStack",
    "add_self_loops",
    "graph_mean_pool",
    "ragged_positions",
    "SGD",
    "Adam",
    "StepLR",
    "clip_grad_norm",
    "save_checkpoint",
    "load_checkpoint",
    "save_archive",
    "load_archive",
]
