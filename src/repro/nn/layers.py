"""Core feed-forward layers: Linear, Embedding, Dropout, LayerNorm, BatchNorm.

BatchNorm here is the 1-D variant used as the inner statistic engine of the
paper's GraphNorm (Eq. 9): normalize over everything except the feature
axis, with running statistics for inference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .functional import dropout as dropout_fn
from .module import Module, Parameter
from .tensor import Tensor, gather_rows


class Linear(Module):
    """Affine map ``y = x W + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(in_features, out_features), name="linear.weight")
        self.bias = Parameter(init.zeros((out_features,)), name="linear.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, std: float = 0.02) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=std), name="embedding.weight")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"got min={indices.min()} max={indices.max()}"
            )
        return gather_rows(self.weight, indices)


class Dropout(Module):
    """Inverted dropout with a per-layer RNG stream."""

    def __init__(self, p: float = 0.1, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.p, self._rng, self.training)


class LayerNorm(Module):
    """Layer normalization over the last axis (Vaswani et al.)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(init.ones((dim,)), name="layernorm.gamma")
        self.beta = Parameter(init.zeros((dim,)), name="layernorm.beta")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class BatchNorm(Module):
    """Batch normalization over all axes except the trailing feature axis.

    Running estimates make inference deterministic and independent of batch
    composition, matching the batch-norm semantics inside the paper's graph
    normalization (Eq. 9).
    """

    def __init__(self, dim: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((dim,)), name="batchnorm.gamma")
        self.beta = Parameter(init.zeros((dim,)), name="batchnorm.beta")
        self.register_buffer("running_mean", np.zeros((dim,), dtype=np.float64))
        self.register_buffer("running_var", np.ones((dim,), dtype=np.float64))

    def forward(self, x: Tensor) -> Tensor:
        axes = tuple(range(x.ndim - 1))
        if self.training:
            batch_mean = x.data.mean(axis=axes)
            batch_var = x.data.var(axis=axes)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * batch_var
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=axes, keepdims=True)
            normalized = centered / (var + self.eps).sqrt()
        else:
            normalized = (x - Tensor(self.running_mean)) / Tensor(
                np.sqrt(self.running_var + self.eps)
            )
        return normalized * self.gamma + self.beta


class FeedForward(Module):
    """Position-wise feed-forward network, Eq. 11: ReLU(x W1 + b1) W2 + b2."""

    def __init__(self, dim: int, hidden_dim: Optional[int] = None, dropout: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        hidden_dim = hidden_dim or 4 * dim
        self.fc1 = Linear(dim, hidden_dim)
        self.fc2 = Linear(hidden_dim, dim)
        self.drop = Dropout(dropout, seed=seed)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.drop(self.fc1(x).relu()))
