"""Module/Parameter system: a minimal ``torch.nn.Module`` equivalent.

Modules register :class:`Parameter` attributes and child modules
automatically via ``__setattr__``; ``parameters()`` walks the tree, and
``state_dict()`` / ``load_state_dict()`` give flat name->array views used
by :mod:`repro.nn.serialization`.  Non-learned state that must survive a
checkpoint round-trip (batch/graph-norm running statistics) is declared
with :meth:`Module.register_buffer` and travels with the state dict.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is updated by an optimizer (always requires grad)."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Declare non-learned persistent state (e.g. running statistics).

        Buffers are plain numpy arrays: forward passes may reassign the
        attribute freely (``self.running_mean = ...``); the registry only
        records the *name*, so the current value is always what
        ``state_dict()`` captures.
        """
        self._buffers[name] = True
        object.__setattr__(self, name, np.asarray(value, dtype=np.float64))

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, owner, attr in self._buffer_owners(prefix):
            yield name, getattr(owner, attr)

    def _buffer_owners(self, prefix: str = "") -> Iterator[Tuple[str, "Module", str]]:
        for name in self._buffers:
            yield prefix + name, self, name
        for name, module in self._modules.items():
            yield from module._buffer_owners(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters (paper Fig. 6 reports these)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval switches
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        state.update({name: np.asarray(value).copy() for name, value in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True,
                        copy: bool = True) -> None:
        """Install ``state`` into the module's parameters and buffers.

        With ``copy=False`` the incoming arrays are adopted as-is (views,
        not copies) whenever dtype already matches — the zero-copy path
        used for memory-mapped artifacts.  Adopted views may be
        write-protected; that is deliberate: an eval-only model never
        writes its weights, and an accidental in-place update raises
        instead of silently corrupting shared state.
        """
        own_params = dict(self.named_parameters())
        own_buffers = {name: (owner, attr) for name, owner, attr in self._buffer_owners()}
        own_names = set(own_params) | set(own_buffers)
        # Missing *buffers* are tolerated even under strict loading: older
        # checkpoints predate buffer serialization, and an absent buffer
        # simply keeps its initialized value.  Parameters stay strict.
        missing = set(own_params) - set(state)
        unexpected = set(state) - own_names
        if strict and (missing or unexpected):
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own_params.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: saved {value.shape}, model {param.data.shape}"
                )
            param.data = value.copy() if copy else value
        for name, (owner, attr) in own_buffers.items():
            if name not in state:
                continue
            current = np.asarray(getattr(owner, attr))
            value = np.asarray(state[name], dtype=current.dtype)
            if value.shape != current.shape:
                raise ValueError(
                    f"shape mismatch for buffer {name}: saved {value.shape}, model {current.shape}"
                )
            object.__setattr__(owner, attr, value.copy() if copy else value)

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of sub-modules."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._items))] = module
        self._items.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Sequential(Module):
    """Apply modules one after another."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self._modules[str(len(self._items))] = module
            self._items.append(module)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x
