"""Transformer encoder layer (§IV-E) and sinusoidal positional encoding.

The paper's GPSFormer interleaves this standard encoder layer (temporal
modeling) with the Graph Refinement Layer (spatial modeling); baselines
``Transformer + Decoder`` reuse it directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .attention import MultiHeadAttention
from .layers import Dropout, FeedForward, LayerNorm
from .module import Module
from .tensor import Tensor


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Classic sin/cos positional table of shape ``(length, dim)``."""
    positions = np.arange(length, dtype=np.float64)[:, None]
    inv_freq = np.exp(-np.log(10000.0) * (np.arange(0, dim, 2, dtype=np.float64) / dim))
    angles = positions * inv_freq[None, :]
    table = np.zeros((length, dim))
    table[:, 0::2] = np.sin(angles)
    table[:, 1::2] = np.cos(angles[:, : dim // 2])
    return table


class PositionalEncoding(Module):
    """Adds sinusoidal position embeddings (Eq. 12)."""

    def __init__(self, dim: int, max_len: int = 4096, dropout: float = 0.0, seed: int = 0) -> None:
        super().__init__()
        self.dim = dim
        self.table = sinusoidal_positions(max_len, dim)
        self.drop = Dropout(dropout, seed=seed)

    def forward(self, x: Tensor) -> Tensor:
        length = x.shape[1]
        return self.drop(x + Tensor(self.table[None, :length, :]))


class TransformerEncoderLayer(Module):
    """Post-norm transformer encoder layer: MHA + FFN with residuals.

    The output of each sub-layer is ``LayerNorm(x + SubLayer(x))`` exactly
    as in §IV-E.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ffn_dim: Optional[int] = None,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.attention = MultiHeadAttention(dim, num_heads)
        self.ffn = FeedForward(dim, ffn_dim or 2 * dim, dropout=dropout, seed=seed)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.drop1 = Dropout(dropout, seed=seed + 1)
        self.drop2 = Dropout(dropout, seed=seed + 2)

    def forward(self, x: Tensor, key_mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.attention(x, x, x, key_mask=key_mask)
        x = self.norm1(x + self.drop1(attended))
        x = self.norm2(x + self.drop2(self.ffn(x)))
        return x


class TransformerEncoder(Module):
    """A stack of encoder layers with shared input positional encoding."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        num_layers: int,
        ffn_dim: Optional[int] = None,
        dropout: float = 0.0,
        max_len: int = 4096,
    ) -> None:
        super().__init__()
        self.positional = PositionalEncoding(dim, max_len=max_len, dropout=dropout)
        from .module import ModuleList

        self.layers = ModuleList(
            TransformerEncoderLayer(dim, num_heads, ffn_dim, dropout, seed=i)
            for i in range(num_layers)
        )

    def forward(self, x: Tensor, key_mask: Optional[np.ndarray] = None) -> Tensor:
        x = self.positional(x)
        for layer in self.layers:
            x = layer(x, key_mask=key_mask)
        return x
