"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper's
artifact uses PyTorch; PyTorch is unavailable in this environment, so we
implement the subset of tensor algebra that RNTrajRec and its baselines
need: broadcasting arithmetic, matrix products, element-wise nonlinear
functions, reductions, indexing/gather, concatenation, and segment
(scatter) operations for batched graph neural networks.

The design mirrors the classic tape-based approach:

* a :class:`Tensor` wraps a ``numpy.ndarray`` and remembers the tensors it
  was computed from (``_parents``) together with a closure (``_backward``)
  that propagates the output gradient to the parents;
* :meth:`Tensor.backward` topologically sorts the graph once and runs the
  closures in reverse order.

Only float64/float32 data participates in differentiation; integer tensors
(indices) are carried as plain arrays.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

DEFAULT_DTYPE = np.float64

# Thread-local autograd switch (serving decodes in worker threads while the
# main thread may train, so the flag must not leak across threads).
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Whether new operations record the autograd graph on this thread."""
    return getattr(_GRAD_STATE, "enabled", True)


class no_grad:
    """Context manager disabling autograd-graph construction (inference).

    Inside the block every op produced by :meth:`Tensor._make` is a plain
    constant tensor: no parent links, no backward closures, no graph
    retention.  The *values* computed are bit-identical — only the
    bookkeeping is skipped — so inference paths (greedy/beam decoding, the
    serving scheduler) use this for a pure-speed win.  Re-entrant and
    thread-local.
    """

    def __enter__(self) -> "no_grad":
        self._previous = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc_info) -> None:
        _GRAD_STATE.enabled = self._previous


def _as_array(value: ArrayLike, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, reversing numpy broadcasting.

    Broadcasting replicates values along new leading axes and along axes of
    size one; its adjoint therefore sums over those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size one in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus the bookkeeping needed for reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = parents
        self._backward = backward
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag}, name={self.name!r})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A view of this tensor cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents) and is_grad_enabled()
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, parents=parents, backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad.flags.writeable is False else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate ``grad`` (default: ones) from this tensor."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} != tensor shape {self.data.shape}")

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(other)

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    ga = np.multiply.outer(grad, other.data) if grad.ndim else grad * other.data
                else:
                    ga = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(unbroadcast(_match_matmul(ga, self.data), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    gb = np.multiply.outer(self.data, grad) if grad.ndim else self.data * grad
                else:
                    gb = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(unbroadcast(_match_matmul(gb, other.data), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out_data = np.swapaxes(self.data, a, b)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, a, b))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient evenly across ties so the op stays well-defined.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / denom)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities (used by functional.py wrappers)
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function (clip both tails; both
        # np.where branches are evaluated, so each must stay finite).
        clipped = np.clip(self.data, -60.0, 60.0)
        exp_neg = np.exp(-np.abs(clipped))
        out_data = np.where(clipped >= 0, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, slope))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)


def _match_matmul(grad: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Collapse batched-matmul gradients back to the operand's rank."""
    if grad.ndim == target.ndim:
        return grad
    extra = grad.ndim - target.ndim
    if extra > 0:
        return grad.sum(axis=tuple(range(extra)))
    return grad


# ----------------------------------------------------------------------
# Free functions that need access to several tensors at once
# ----------------------------------------------------------------------


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(int(start), int(stop))
                tensor._accumulate(grad[tuple(index)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor._accumulate(slab)

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean array."""
    condition = np.asarray(condition)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * (~condition), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def gather_rows(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``table[indices]`` with scatter-add gradient.

    ``indices`` may have any shape; the result has shape
    ``indices.shape + table.shape[1:]``.  This is the primitive behind
    :class:`repro.nn.layers.Embedding` and graph gather operations.
    """
    indices = np.asarray(indices, dtype=np.int64)
    out_data = table.data[indices]

    def backward(grad: np.ndarray) -> None:
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, *table.shape[1:]))
            table._accumulate(full)

    return Tensor._make(out_data, (table,), backward)


def scatter_sum_array(values: np.ndarray, segment_ids: np.ndarray,
                      num_segments: int) -> np.ndarray:
    """Plain-array scatter-add of rows into ``num_segments`` buckets.

    Uses ``np.bincount`` (per column for 2-D values) instead of
    ``np.add.at``: both add the contributions of each bucket in input
    order, so the floating-point result is bit-identical, but bincount's
    C loop is several times faster for the flat/2-D shapes GNN attention
    and pooling use.  For ≥3-D values (multi-head message blocks) add.at's
    block-wise dispatch is already the faster kernel, so it is kept.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if values.dtype != np.float64 or values.ndim > 2 or len(values) == 0:
        out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
        np.add.at(out, segment_ids, values)
        return out
    if values.ndim == 1:
        out = np.bincount(segment_ids, weights=values, minlength=num_segments)
        if len(out) > num_segments:  # minlength is a floor: match add.at's error
            raise IndexError(
                f"segment id {int(segment_ids.max())} out of range "
                f"for {num_segments} segments")
        return out
    out = np.empty((num_segments, values.shape[1]), dtype=np.float64)
    for column in range(values.shape[1]):
        out[:, column] = np.bincount(segment_ids, weights=values[:, column],
                                     minlength=num_segments)
    return out


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets.

    The adjoint of a segment sum is a gather, which keeps batched GNN
    message passing differentiable without per-graph Python loops.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_data = scatter_sum_array(values.data, segment_ids, num_segments)

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (values,), backward)


def segment_mean(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Average rows of ``values`` per segment (empty segments yield zero)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(values.dtype)
    counts = np.maximum(counts, 1.0)
    total = segment_sum(values, segment_ids, num_segments)
    shape = (num_segments,) + (1,) * (values.ndim - 1)
    return total * Tensor(1.0 / counts.reshape(shape))


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over rows grouped by ``segment_ids`` (for GAT attention)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    # Shift by the per-segment max for numerical stability (constant wrt grad).
    seg_max = np.full((num_segments,) + scores.shape[1:], -np.inf, dtype=scores.dtype)
    np.maximum.at(seg_max, segment_ids, scores.data)
    seg_max[~np.isfinite(seg_max)] = 0.0
    shifted = scores - Tensor(seg_max[segment_ids])
    exp = shifted.exp()
    denom = segment_sum(exp, segment_ids, num_segments)
    denom_per_row = gather_rows(denom, segment_ids)
    return exp / (denom_per_row + 1e-12)
