"""Optimizers (SGD, Adam), gradient clipping and LR schedules.

The paper trains everything with Adam (lr 1e-3); SGD is kept for tests and
ablation sanity checks.  Both optimizers expose ``state_dict()`` /
``load_state_dict()`` so :mod:`repro.train` can bundle the full update
state (Adam moments, bias-correction step count, momentum velocities) into
a resumable :class:`~repro.train.TrainState` archive — resuming then
continues the exact update sequence a straight-through run would produce.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm (useful for divergence diagnostics).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Serialization (flat name -> array, suitable for one .npz archive)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Everything needed to continue the update sequence exactly."""
        return {"lr": np.asarray(self.lr)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.lr = float(state["lr"])

    def _load_slots(self, state: Dict[str, np.ndarray], prefix: str,
                    slots: List[np.ndarray]) -> None:
        """Restore one per-parameter array list saved as ``prefix.<i>``."""
        for i, slot in enumerate(slots):
            key = f"{prefix}.{i}"
            if key not in state:
                raise KeyError(f"optimizer state missing {key!r}")
            value = np.asarray(state[key])
            if value.shape != slot.shape:
                raise ValueError(
                    f"optimizer state shape mismatch for {key}: "
                    f"saved {value.shape}, current {slot.shape}"
                )
            slot[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum > 0.0:
                v *= self.momentum
                v += p.grad
                p.data = p.data - self.lr * v
            else:
                p.data = p.data - self.lr * p.grad

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        state["momentum"] = np.asarray(self.momentum)
        for i, v in enumerate(self._velocity):
            state[f"velocity.{i}"] = v.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self.momentum = float(state["momentum"])
        self._load_slots(state, "velocity", self._velocity)


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction and optional weight decay."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        state["step"] = np.asarray(self._step)
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{i}"] = m.copy()
            state[f"v.{i}"] = v.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._step = int(state["step"])
        self._load_slots(state, "m", self._m)
        self._load_slots(state, "v", self._v)


class StepLR:
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
