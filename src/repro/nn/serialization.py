"""Checkpoint save/load: state dicts as ``.npz`` archives.

Two layers:

* :func:`save_archive` / :func:`load_archive` — generic flat
  ``name -> ndarray`` archives.  Both normalize the path to a ``.npz``
  suffix, so ``save_archive(state, "ckpt")`` followed by
  ``load_archive("ckpt")`` round-trips.
* :func:`save_checkpoint` / :func:`load_checkpoint` — the module-level
  convenience pair over ``Module.state_dict()``.

Archives are written as *uncompressed* zip files whose member payloads
start on 64-byte boundaries (via the zip extra field, the same trick
``zipfile`` tools use for alignment).  ``np.savez`` cannot do either, and
both matter: an aligned uncompressed member can be memory-mapped in
place, which is what ``load_archive(path, mmap=True)`` does — every array
comes back as a read-only ``np.memmap`` view backed by the page cache,
shared across processes and replicas at zero copy.  The files remain
ordinary ``.npz`` archives readable by ``np.load``.

:mod:`repro.train` composes the generic layer into single-archive
training states; :mod:`repro.roadnet.artifacts` composes it into
shared-memory city bundles.
"""

from __future__ import annotations

import io
import os
import struct
import zipfile
from typing import Dict

import numpy as np

from .module import Module

#: Array payloads are aligned to this many bytes inside the archive so a
#: memory-mapped view starts on a cache-line/word boundary.  numpy pads
#: ``.npy`` headers to 64-byte multiples for exactly this reason, so an
#: aligned member start implies an aligned array-data start.
ALIGNMENT = 64

# Private extra-field tag for alignment padding (mirrors zipalign's use
# of an opaque vendor tag; any unknown tag is skipped by zip readers).
_PAD_TAG = 0x4242


def _normalize(path) -> str:
    """The on-disk archive path: ``np.savez`` semantics made explicit."""
    path = os.fspath(path)
    return path if path.endswith(".npz") else path + ".npz"


def save_archive(arrays: Dict[str, np.ndarray], path: str) -> str:
    """Write a flat ``name -> ndarray`` mapping to ``path`` (npz).

    Returns the normalized path actually written.  Keys may contain dots
    (``model.encoder.w``) but not ``/`` — they become zip member names.
    Members are stored uncompressed with array data aligned to
    :data:`ALIGNMENT` bytes, and timestamps are fixed, so identical
    inputs produce byte-identical archives and :func:`load_archive` can
    memory-map every member in place.
    """
    path = _normalize(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_STORED) as archive:
        for key, value in arrays.items():
            buffer = io.BytesIO()
            np.lib.format.write_array(buffer, np.asarray(value), allow_pickle=False)
            name = key + ".npy"
            info = zipfile.ZipInfo(name, date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_STORED
            # Pad the local header's extra field so the member payload
            # (and therefore the npy array data, whose header numpy pads
            # to a 64-byte multiple) starts on an ALIGNMENT boundary.
            header_offset = archive.fp.tell()
            data_start = header_offset + 30 + len(name.encode("utf-8"))
            pad = (-data_start) % ALIGNMENT
            if 0 < pad < 4:  # an extra-field entry needs a 4-byte header
                pad += ALIGNMENT
            if pad:
                info.extra = struct.pack("<HH", _PAD_TAG, pad - 4) + b"\x00" * (pad - 4)
            archive.writestr(info, buffer.getvalue())
    return path


def _mmap_member(path: str, handle, info: zipfile.ZipInfo) -> np.ndarray:
    """A read-only view of one stored archive member, mapped in place.

    The *local* file header is parsed from the raw file — its extra field
    (where the alignment padding lives) may legitimately differ from the
    central directory's, so ``ZipInfo`` alone cannot locate the payload.
    """
    handle.seek(info.header_offset)
    header = handle.read(30)
    if len(header) != 30 or header[:4] != b"PK\x03\x04":
        raise ValueError(f"corrupt archive member {info.filename!r} in {path}")
    name_len, extra_len = struct.unpack("<HH", header[26:30])
    handle.seek(info.header_offset + 30 + name_len + extra_len)
    version = np.lib.format.read_magic(handle)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
    else:
        raise ValueError(f"unsupported npy format {version} for {info.filename!r}")
    if dtype.hasobject:
        raise ValueError(f"cannot memory-map object array {info.filename!r}")
    if int(np.prod(shape)) == 0:
        # mmap cannot map zero bytes; an empty read-only array is
        # indistinguishable from a view for every consumer.
        empty = np.zeros(shape, dtype=dtype)
        empty.flags.writeable = False
        return empty
    return np.memmap(path, dtype=dtype, mode="r", offset=handle.tell(),
                     shape=shape, order="F" if fortran else "C")


def load_archive(path: str, mmap: bool = False) -> Dict[str, np.ndarray]:
    """Read back a mapping written by :func:`save_archive`.

    With ``mmap=False`` every array is a private in-memory copy (writable,
    owned by the caller).  With ``mmap=True`` stored members come back as
    read-only ``np.memmap`` views — zero-copy, backed by the page cache,
    shared across processes; mutating one raises ``ValueError``.
    Compressed members (archives written by plain ``np.savez_compressed``)
    cannot be mapped and fall back to read-only copies.
    """
    path = _normalize(path)
    if not mmap:
        with np.load(path) as archive:
            return {key: archive[key] for key in archive.files}
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        infos = archive.infolist()
        with open(path, "rb") as handle:
            for info in infos:
                name = info.filename
                key = name[:-4] if name.endswith(".npy") else name
                if info.compress_type == zipfile.ZIP_STORED:
                    arrays[key] = _mmap_member(path, handle, info)
                else:
                    value = np.lib.format.read_array(
                        io.BytesIO(archive.read(name)), allow_pickle=False)
                    value.flags.writeable = False
                    arrays[key] = value
    return arrays


def save_checkpoint(module: Module, path: str) -> str:
    """Write the module's parameters and buffers to ``path`` (npz).

    Returns the normalized path actually written.
    """
    return save_archive(module.state_dict(), path)


def load_checkpoint(module: Module, path: str, strict: bool = True,
                    mmap: bool = False) -> Module:
    """Load parameters saved by :func:`save_checkpoint` into ``module``.

    ``mmap=True`` installs read-only memory-mapped views directly as the
    module's parameters and buffers (no copies) — the module must stay in
    eval mode; any attempted in-place update raises.
    """
    module.load_state_dict(load_archive(path, mmap=mmap), strict=strict,
                           copy=not mmap)
    return module
