"""Checkpoint save/load: model state dicts as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .module import Module


def save_checkpoint(module: Module, path: str) -> None:
    """Write the module's parameters to ``path`` (npz)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    state = module.state_dict()
    # npz keys may not contain '/', so keep the dotted names as-is.
    np.savez(path, **state)


def load_checkpoint(module: Module, path: str, strict: bool = True) -> Module:
    """Load parameters saved by :func:`save_checkpoint` into ``module``."""
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    module.load_state_dict(state, strict=strict)
    return module
