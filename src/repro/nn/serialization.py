"""Checkpoint save/load: model state dicts as ``.npz`` archives.

Both functions normalize the path to a ``.npz`` suffix, so
``save_checkpoint(m, "ckpt")`` followed by ``load_checkpoint(m, "ckpt")``
round-trips: ``np.savez`` appends the suffix on write, and without the
same normalization the reader would look for a file that does not exist.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .module import Module


def _normalize(path) -> str:
    """The on-disk archive path: ``np.savez`` semantics made explicit."""
    path = os.fspath(path)
    return path if path.endswith(".npz") else path + ".npz"


def save_checkpoint(module: Module, path: str) -> str:
    """Write the module's parameters and buffers to ``path`` (npz).

    Returns the normalized path actually written.
    """
    path = _normalize(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    state = module.state_dict()
    # npz keys may not contain '/', so keep the dotted names as-is.
    np.savez(path, **state)
    return path


def load_checkpoint(module: Module, path: str, strict: bool = True) -> Module:
    """Load parameters saved by :func:`save_checkpoint` into ``module``."""
    with np.load(_normalize(path)) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    module.load_state_dict(state, strict=strict)
    return module
