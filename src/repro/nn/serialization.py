"""Checkpoint save/load: state dicts as ``.npz`` archives.

Two layers:

* :func:`save_archive` / :func:`load_archive` — generic flat
  ``name -> ndarray`` archives.  Both normalize the path to a ``.npz``
  suffix, so ``save_archive(state, "ckpt")`` followed by
  ``load_archive("ckpt")`` round-trips: ``np.savez`` appends the suffix on
  write, and without the same normalization the reader would look for a
  file that does not exist.
* :func:`save_checkpoint` / :func:`load_checkpoint` — the module-level
  convenience pair over ``Module.state_dict()``.

:mod:`repro.train` composes the generic layer into single-archive
training states (model parameters + buffers, optimizer moments, RNG
streams and counters under dotted key prefixes).
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .module import Module


def _normalize(path) -> str:
    """The on-disk archive path: ``np.savez`` semantics made explicit."""
    path = os.fspath(path)
    return path if path.endswith(".npz") else path + ".npz"


def save_archive(arrays: Dict[str, np.ndarray], path: str) -> str:
    """Write a flat ``name -> ndarray`` mapping to ``path`` (npz).

    Returns the normalized path actually written.  Keys may contain dots
    (``model.encoder.w``) but not ``/`` — they become zip member names.
    """
    path = _normalize(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **{key: np.asarray(value) for key, value in arrays.items()})
    return path


def load_archive(path: str) -> Dict[str, np.ndarray]:
    """Read back a mapping written by :func:`save_archive`."""
    with np.load(_normalize(path)) as archive:
        return {key: archive[key] for key in archive.files}


def save_checkpoint(module: Module, path: str) -> str:
    """Write the module's parameters and buffers to ``path`` (npz).

    Returns the normalized path actually written.
    """
    return save_archive(module.state_dict(), path)


def load_checkpoint(module: Module, path: str, strict: bool = True) -> Module:
    """Load parameters saved by :func:`save_checkpoint` into ``module``."""
    module.load_state_dict(load_archive(path), strict=strict)
    return module
