"""Functional interface over :class:`repro.nn.tensor.Tensor`.

These helpers mirror ``torch.nn.functional`` for the operations RNTrajRec
uses: activations, softmax (optionally masked, as required by the
constraint-mask decoder of Eq. 16), dropout, and the two loss primitives
(cross entropy with additive log-mask, mean squared error).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, concat, gather_rows, segment_mean, segment_softmax, segment_sum, stack, where

__all__ = [
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "masked_log_softmax",
    "dropout",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "concat",
    "stack",
    "where",
    "gather_rows",
    "segment_sum",
    "segment_mean",
    "segment_softmax",
]


def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, slope: float = 0.01) -> Tensor:
    return x.leaky_relu(slope)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def masked_log_softmax(
    logits: Tensor, mask: np.ndarray, axis: int = -1, floor: float = 1e-12
) -> Tensor:
    """``log softmax(exp(logits) * mask)`` computed stably.

    ``mask`` holds non-negative weights (the constraint mask ``c`` of
    Eq. 16; a hard mask is the 0/1 special case).  Entries with zero weight
    receive probability exactly zero (log-probability ``-inf`` is avoided
    by flooring at ``log(floor)``).
    """
    mask = np.asarray(mask, dtype=logits.dtype)
    log_mask = np.log(np.maximum(mask, floor))
    return log_softmax(logits + Tensor(log_mask), axis=axis)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)


def nll_loss(log_probs: Tensor, targets: np.ndarray, sample_weight: Optional[np.ndarray] = None) -> Tensor:
    """Negative log likelihood of integer ``targets`` under ``log_probs``.

    ``log_probs`` has shape ``(n, classes)``; ``targets`` shape ``(n,)``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    if sample_weight is not None:
        weight = np.asarray(sample_weight, dtype=log_probs.dtype)
        total = max(float(weight.sum()), 1e-12)
        return -(picked * Tensor(weight)).sum() * (1.0 / total)
    return -picked.mean()


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    mask: Optional[np.ndarray] = None,
    sample_weight: Optional[np.ndarray] = None,
) -> Tensor:
    """Cross entropy over the last axis, optionally with a constraint mask."""
    if mask is not None:
        log_probs = masked_log_softmax(logits, mask, axis=-1)
    else:
        log_probs = log_softmax(logits, axis=-1)
    return nll_loss(log_probs, targets, sample_weight)


def mse_loss(prediction: Tensor, target: np.ndarray, sample_weight: Optional[np.ndarray] = None) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = prediction - Tensor(np.asarray(target, dtype=prediction.dtype))
    sq = diff * diff
    if sample_weight is not None:
        weight = np.asarray(sample_weight, dtype=prediction.dtype)
        total = max(float(weight.sum()), 1e-12)
        return (sq * Tensor(weight)).sum() * (1.0 / total)
    return sq.mean()
