"""Weight initialization schemes (Glorot/Xavier, He/Kaiming, embeddings).

A module-level seeded generator keeps model construction deterministic:
call :func:`seed_everything` before building a model to make experiments
reproducible end to end.
"""

from __future__ import annotations

import numpy as np

_GENERATOR = np.random.default_rng(0)


def seed_everything(seed: int) -> np.random.Generator:
    """Reset the global initializer RNG; returns the generator."""
    global _GENERATOR
    _GENERATOR = np.random.default_rng(seed)
    return _GENERATOR


def generator() -> np.random.Generator:
    return _GENERATOR


def xavier_uniform(fan_in: int, fan_out: int, shape=None, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    if shape is None:
        shape = (fan_in, fan_out)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _GENERATOR.uniform(-bound, bound, size=shape)


def kaiming_uniform(fan_in: int, shape) -> np.ndarray:
    """He uniform for ReLU fan-in scaling."""
    bound = np.sqrt(3.0 / fan_in) if fan_in > 0 else 0.0
    return _GENERATOR.uniform(-bound, bound, size=shape)


def normal(shape, std: float = 0.02) -> np.ndarray:
    """Small-variance normal init (used for embedding tables)."""
    return _GENERATOR.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
