"""Attention modules: scaled dot-product / multi-head (Eq. 10) and the
additive (Bahdanau) attention used by the MTrajRec-style decoder (Eq. 14).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .functional import softmax
from .module import Module, Parameter
from .layers import Linear
from .tensor import Tensor


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product attention over ``(batch, len, dim)``.

    Implements Eq. 10: per-head projections of Q/K/V, softmax over scaled
    scores, concatenation, and an output projection.  ``key_mask`` (shape
    ``(batch, len)``; 1 = valid) excludes padded timesteps.
    """

    def __init__(self, dim: int, num_heads: int) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.w_q = Linear(dim, dim, bias=False)
        self.w_k = Linear(dim, dim, bias=False)
        self.w_v = Linear(dim, dim, bias=False)
        self.w_o = Linear(dim, dim, bias=False)

    def _split(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        key_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        batch, q_len, _ = query.shape
        q = self._split(self.w_q(query))
        k = self._split(self.w_k(key))
        v = self._split(self.w_v(value))

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if key_mask is not None:
            bias = np.where(np.asarray(key_mask, dtype=bool), 0.0, -1e9)
            scores = scores + Tensor(bias[:, None, None, :])
        weights = softmax(scores, axis=-1)
        context = weights @ v
        merged = context.transpose(0, 2, 1, 3).reshape(batch, q_len, self.dim)
        return self.w_o(merged)


class AdditiveAttention(Module):
    """Bahdanau-style attention of Eq. 14.

    score_i = v^T tanh(W_g h_dec + W_h enc_i); the context is the
    softmax-weighted sum of encoder states.
    """

    def __init__(self, dim: int) -> None:
        super().__init__()
        self.w_g = Linear(dim, dim, bias=False)
        self.w_h = Linear(dim, dim, bias=False)
        self.v = Parameter(init.xavier_uniform(dim, 1), name="attn.v")

    def project_keys(self, encoder_outputs: Tensor) -> Tensor:
        """W_h · enc — constant across decode steps, so step loops compute
        it once and pass it back via ``projected_keys``."""
        return self.w_h(encoder_outputs)

    def forward(
        self,
        decoder_state: Tensor,
        encoder_outputs: Tensor,
        key_mask: Optional[np.ndarray] = None,
        projected_keys: Optional[Tensor] = None,
    ) -> Tensor:
        """``decoder_state``: (batch, dim); ``encoder_outputs``: (batch, len, dim)."""
        projected_query = self.w_g(decoder_state)  # (batch, dim)
        if projected_keys is None:
            projected_keys = self.project_keys(encoder_outputs)  # (batch, len, dim)
        batch, dim = projected_query.shape
        expanded = projected_query.reshape(batch, 1, dim)
        energy = (expanded + projected_keys).tanh() @ self.v  # (batch, len, 1)
        scores = energy.reshape(batch, encoder_outputs.shape[1])
        if key_mask is not None:
            bias = np.where(np.asarray(key_mask, dtype=bool), 0.0, -1e9)
            scores = scores + Tensor(bias)
        weights = softmax(scores, axis=-1)  # (batch, len)
        context = weights.reshape(batch, 1, -1) @ encoder_outputs  # (batch, 1, dim)
        return context.reshape(batch, dim)
