"""`StreamingRecoveryService` — sessionized recovery over a model registry.

The one-shot :class:`~repro.serve.RecoveryService` answers "here is a
whole trace, recover it".  This facade answers the online question —
"here is the *next fix* of a trace still being driven" — by keeping a
bounded :class:`~repro.stream.session.SessionStore` of live sessions and
running the :class:`~repro.stream.engine.IncrementalEngine` split decode
on each append.  The lifecycle:

``open`` → N × ``append`` (each returns a :class:`StreamUpdate` whose
suffix may be revised later) → ``finalize`` (the exact one-shot answer;
the session is then gone).

Telemetry flows through the same :class:`~repro.serve.ServingTelemetry`
the one-shot service uses, with ``streaming=True`` so operators can split
the two traffic classes and watch per-model-tag revision rates.  Hot
swaps are safe mid-session: each append resolves the registry's active
model, a tag change invalidates the session's carry checkpoint (the next
decode restarts from step 0 under the new weights), and ``finalize``
re-decodes fully under whatever model is then active.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.model import RNTrajRec
from ..serve.registry import ModelRegistry
from ..serve.request import IngestConfig, RecoveryResponse, RequestError
from ..serve.service import ServeConfig
from ..serve.telemetry import ServingTelemetry
from ..trajectory.trajectory import MatchedTrajectory
from .engine import IncrementalEngine
from .session import SessionState, SessionStore, StoreConfig


@dataclass(frozen=True)
class StreamConfig:
    """Streaming knobs: ingest grid + commit horizon + store bounds."""

    interval: float = 12.0         # ε_ρ output grid spacing (seconds)
    beta: float = 15.0             # constraint kernel scale (meters)
    max_gps_error: float = 100.0   # constraint search radius (meters)
    # Newest grid steps kept *provisional* (re-decoded each append, may be
    # revised); steps aging past this get committed — frozen, with the
    # decoder carry checkpointed at the boundary so later appends resume
    # there.  0 commits everything instantly (fastest, most
    # revision-blind); a huge value never commits (every append is a full
    # re-decode from step 0, exactly the one-shot result each time).
    commit_horizon: int = 8
    capacity: int = 256            # SessionStore bounds (see StoreConfig)
    ttl_seconds: float = 1800.0
    evict_idle_seconds: float = 0.0
    eviction_log: int = 256

    @classmethod
    def for_spec(cls, spec, **overrides) -> "StreamConfig":
        """Ingest parameters from a ``DatasetSpec`` (same derivation as
        ``ServeConfig.for_spec`` — masks match what the model trained with)."""
        params = dict(
            interval=spec.simulation.sample_interval,
            beta=spec.dataset.beta,
            max_gps_error=spec.dataset.max_gps_error,
        )
        params.update(overrides)
        return cls(**params)

    @classmethod
    def from_serve(cls, serve: ServeConfig, **overrides) -> "StreamConfig":
        """Adopt a serving config's ingest grid (the cluster-affinity path:
        shards already derive their ``ServeConfig`` from the dataset)."""
        params = dict(interval=serve.interval, beta=serve.beta,
                      max_gps_error=serve.max_gps_error)
        params.update(overrides)
        return cls(**params)

    def ingest(self) -> IngestConfig:
        return IngestConfig(interval=self.interval, beta=self.beta,
                            max_gps_error=self.max_gps_error)

    def store(self) -> StoreConfig:
        return StoreConfig(capacity=self.capacity,
                           ttl_seconds=self.ttl_seconds,
                           evict_idle_seconds=self.evict_idle_seconds,
                           eviction_log=self.eviction_log)


@dataclass(frozen=True)
class StreamUpdate:
    """What one ``append`` streamed back to the client.

    ``trajectory`` is the current best recovery — committed prefix plus
    provisional suffix — and is ``None`` until the session has the two
    fixes a grid needs.  ``revised_from`` is the first grid step whose
    segment changed relative to the previous update (−1: pure extension).
    ``decoded_steps``/``skipped_steps`` expose the split the engine ran,
    which is what the streaming benchmark measures.
    """

    session_id: str
    trajectory: Optional[MatchedTrajectory]
    grid_length: int
    committed_steps: int
    revised_from: int
    decoded_steps: int
    skipped_steps: int
    latency_ms: float
    model: str = ""
    model_tag: str = ""
    shard: str = ""


class StreamingRecoveryService:
    """Sessionized incremental recovery over a :class:`ModelRegistry`."""

    def __init__(self, registry: ModelRegistry,
                 config: Optional[StreamConfig] = None,
                 shard: str = "",
                 telemetry: Optional[ServingTelemetry] = None,
                 scheduler=None,
                 clock=time.monotonic) -> None:
        self.registry = registry
        self.config = config or StreamConfig()
        self.shard = shard
        self.telemetry = telemetry or ServingTelemetry()
        self.engine = IncrementalEngine(registry.network, self.config.ingest())
        self.store = SessionStore(self.config.store(), clock=clock)
        # Optional ContinuousScheduler: suffix decodes then join the same
        # slot table as the shard's one-shot traffic (see engine.decode).
        self.scheduler = scheduler
        self._closed = False

    @classmethod
    def from_model(cls, model: RNTrajRec,
                   config: Optional[StreamConfig] = None,
                   name: str = "default", shard: str = "",
                   **kwargs) -> "StreamingRecoveryService":
        """A streaming service over an in-memory model (tests, demos)."""
        registry = ModelRegistry(model.network, default_config=model.config)
        registry.add_loaded(name, model, activate=True)
        return cls(registry, config, shard=shard, **kwargs)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open(self, session_id: Optional[str] = None, hour: int = 12,
             holiday: bool = False) -> str:
        """Open a streaming session; returns its id (fresh UUID when the
        client didn't name one).  Raises :class:`SessionOverloaded` when
        the store is full of busy sessions."""
        self._check_open()
        if session_id is None:
            session_id = uuid.uuid4().hex
        session = SessionState(session_id=str(session_id),
                               hour=int(hour) % 24, holiday=bool(holiday))
        self.store.open(session)
        return session.session_id

    def append(self, session_id: str, xy, times) -> StreamUpdate:
        """Ingest new fixes and extend the recovery incrementally."""
        self._check_open()
        start = time.perf_counter()
        session = self.store.get(session_id)
        model_name, model_tag, model = self.registry.active_ref()
        try:
            with session.lock:
                if session.model_tag and session.model_tag != model_tag:
                    # Hot swap mid-session: the checkpointed carry was
                    # computed under the old weights, so the next decode
                    # restarts from step 0 under the new model.
                    session.carry = None
                    session.committed = 0
                session.model_tag = model_tag
                self.engine.append_fixes(session, xy, times)
                session.appends += 1
                outcome = (self.engine.decode(model, session,
                                              self.config.commit_horizon,
                                              scheduler=self.scheduler)
                           if session.num_fixes >= 2 else None)
        except Exception:
            self.telemetry.record_error()
            raise
        latency = time.perf_counter() - start
        revised = outcome is not None and outcome.revised_from >= 0
        self.telemetry.record_request(latency, cache_hit=False,
                                      model_tag=model_tag, streaming=True,
                                      revised=revised)
        if outcome is None:
            return StreamUpdate(
                session_id=session.session_id, trajectory=None,
                grid_length=0, committed_steps=0, revised_from=-1,
                decoded_steps=0, skipped_steps=0,
                latency_ms=1000.0 * latency, model=model_name,
                model_tag=model_tag, shard=self.shard)
        return StreamUpdate(
            session_id=session.session_id,
            trajectory=MatchedTrajectory(outcome.segments, outcome.rates,
                                         outcome.times),
            grid_length=outcome.grid_length,
            committed_steps=outcome.committed,
            revised_from=outcome.revised_from,
            decoded_steps=outcome.decoded_steps,
            skipped_steps=outcome.skipped_steps,
            latency_ms=1000.0 * latency, model=model_name,
            model_tag=model_tag, shard=self.shard)

    def finalize(self, session_id: str) -> RecoveryResponse:
        """Close the session and return the exact recovery of its full fix
        set — identical to one-shot ``recover()`` over the same points."""
        self._check_open()
        start = time.perf_counter()
        session = self.store.get(session_id)
        model_name, model_tag, model = self.registry.active_ref()
        try:
            with session.lock:
                if session.num_fixes < 2:
                    raise RequestError(
                        "a recovery needs at least two GPS fixes; session "
                        f"{session_id!r} has {session.num_fixes}")
                trajectory, revised_from, _ = self.engine.finalize(model, session)
        except Exception:
            self.telemetry.record_error()
            raise
        self.store.remove(session_id)
        latency = time.perf_counter() - start
        self.telemetry.record_request(latency, cache_hit=False,
                                      model_tag=model_tag, streaming=True,
                                      revised=revised_from >= 0)
        return RecoveryResponse(
            request_id=session_id, trajectory=trajectory, cached=False,
            latency_ms=1000.0 * latency, model=model_name,
            model_tag=model_tag, shard=self.shard,
            session_id=session_id, revised_from=revised_from)

    # ------------------------------------------------------------------
    # Operations surface
    # ------------------------------------------------------------------
    def evictions(self) -> List[Dict[str, Any]]:
        """Recent TTL/LRU eviction records (oldest first)."""
        return self.store.evictions()

    def stats(self) -> Dict[str, Any]:
        """Serving telemetry plus session-store gauges."""
        payload = self.telemetry.stats()
        payload.update({
            "shard": self.shard,
            "commit_horizon": self.config.commit_horizon,
            "sessions": self.store.stats(),
            "active_model": self.registry.active_name,
            "models": self.registry.names(),
        })
        return payload

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "StreamingRecoveryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("StreamingRecoveryService is closed")
