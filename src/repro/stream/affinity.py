"""Session→shard affinity: streaming sessions over a `RecoveryCluster`.

A streaming session is *stateful* — its ingest and decode state live
wherever its first append landed — so unlike one-shot requests it cannot
be re-routed per call.  :class:`StreamingCluster` pins each session to
the shard owning its opening fix (resolved through the cluster's existing
:class:`~repro.cluster.router.ShardRouter`) and forwards every subsequent
append there, localized into that city's coordinate frame exactly like
the one-shot path (``Shard.localize``).

Per-shard :class:`~repro.stream.StreamingRecoveryService` instances are
built lazily over the shard's own registry and dataset-derived serving
config, so a 30-city map pays for streaming state only on shards that
actually see sessions — and a hot swap deployed through the cluster's
``deploy_model`` is picked up by that shard's streams on their next
append (both read the same registry).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..cluster.cluster import RecoveryCluster
from ..cluster.shard import Shard
from ..serve.request import RecoveryResponse
from .service import StreamConfig, StreamingRecoveryService, StreamUpdate
from .session import UnknownSession


class StreamingCluster:
    """Session-affine streaming over the shards of a `RecoveryCluster`."""

    def __init__(self, cluster: RecoveryCluster,
                 config: Optional[StreamConfig] = None,
                 clock=None) -> None:
        self.cluster = cluster
        self._config = config      # None: derive per shard from its dataset
        self._clock = clock        # injectable for store-lifecycle tests
        self._lock = threading.Lock()
        self._services: Dict[str, StreamingRecoveryService] = {}
        self._affinity: Dict[str, str] = {}  # session_id -> shard name

    # ------------------------------------------------------------------
    def open(self, xy, hour: int = 12, holiday: bool = False,
             session_id: Optional[str] = None) -> Tuple[str, str]:
        """Open a session pinned to the shard owning the given global-frame
        position(s); returns (session_id, shard name).  Raises
        :class:`~repro.cluster.router.RouteError` when no shard owns them
        and :class:`~repro.stream.SessionOverloaded` when the owning
        shard's session store sheds."""
        points = np.atleast_2d(np.asarray(xy, dtype=np.float64))
        shard = self.cluster.shards[
            self.cluster.router.shard_of_points(points)]
        service = self._service(shard)
        sid = service.open(session_id=session_id, hour=hour, holiday=holiday)
        with self._lock:
            self._affinity[sid] = shard.name
        return sid, shard.name

    def append(self, session_id: str, xy, times) -> StreamUpdate:
        """Forward an append to the session's pinned shard (localized)."""
        shard, service = self._resolve(session_id)
        return self._forward(
            session_id,
            lambda: service.append(session_id, self._localize(shard, xy), times))

    def finalize(self, session_id: str) -> RecoveryResponse:
        """Finalize on the pinned shard and release the affinity pin."""
        shard, service = self._resolve(session_id)
        response = self._forward(session_id, lambda: service.finalize(session_id))
        with self._lock:
            self._affinity.pop(session_id, None)
        return response

    # ------------------------------------------------------------------
    def evictions(self) -> List[Dict[str, Any]]:
        """Eviction records across all shards, each stamped with its shard."""
        records: List[Dict[str, Any]] = []
        for name, service in self._snapshot_services():
            for record in service.evictions():
                records.append({**record, "shard": name})
        return records

    def stats(self) -> Dict[str, Any]:
        """Per-shard streaming stats plus the affinity-table gauge."""
        with self._lock:
            pinned = len(self._affinity)
        return {
            "pinned_sessions": pinned,
            "shards": {name: service.stats()
                       for name, service in self._snapshot_services()},
        }

    def close(self) -> None:
        for _, service in self._snapshot_services():
            service.close()

    def __enter__(self) -> "StreamingCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _service(self, shard: Shard) -> StreamingRecoveryService:
        with self._lock:
            service = self._services.get(shard.name)
            if service is None:
                shard.warm()
                config = self._config or StreamConfig.from_serve(
                    shard.serve_config())
                kwargs = {"clock": self._clock} if self._clock else {}
                service = StreamingRecoveryService(
                    shard.registry, config, shard=shard.name,
                    scheduler=shard.decode_scheduler(), **kwargs)
                self._services[shard.name] = service
            return service

    def _resolve(self, session_id: str) -> Tuple[Shard, StreamingRecoveryService]:
        with self._lock:
            name = self._affinity.get(session_id)
            service = self._services.get(name) if name else None
        if name is None or service is None:
            raise UnknownSession(session_id)
        return self.cluster.shard(name), service

    def _forward(self, session_id: str, call):
        """Run a pinned-shard call; if the shard's store no longer knows
        the session (TTL/LRU eviction), drop the stale pin too."""
        try:
            return call()
        except UnknownSession:
            with self._lock:
                self._affinity.pop(session_id, None)
            raise

    @staticmethod
    def _localize(shard: Shard, xy) -> np.ndarray:
        """Global-frame points into the shard's city frame (same translation
        as ``Shard.localize`` applies to one-shot requests)."""
        points = np.asarray(xy, dtype=np.float64)
        ox, oy = shard.spec.origin
        if ox == 0.0 and oy == 0.0:
            return points
        return points - np.array([ox, oy])

    def _snapshot_services(self) -> List[Tuple[str, StreamingRecoveryService]]:
        with self._lock:
            return sorted(self._services.items())
