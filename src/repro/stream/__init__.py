"""``repro.stream`` — sessionized incremental trajectory recovery.

The serving layers answer one-shot questions: a complete low-sample trace
in, a recovered ε_ρ trajectory out.  This package serves the *online*
shape of the same problem — a device streaming fixes one (or a few) at a
time while the trip is still underway:

* :class:`SessionStore` (``session.py``) — bounded per-session state:
  TTL expiry, LRU eviction under capacity pressure, 429-style
  :class:`SessionOverloaded` backpressure, and an eviction-record ring;
* :class:`IncrementalEngine` (``engine.py``) — per-append split decode:
  incremental constraint ingest, committed-prefix *replay* (no |V|-wide
  segment head) and full decoding of only the suffix behind the commit
  horizon;
* :class:`StreamingRecoveryService` (``service.py``) — the
  open → append* → finalize facade, wired through the one-shot serving
  telemetry (streaming vs one-shot traffic, per-model-tag revision rates);
* :class:`StreamingCluster` (``affinity.py``) — session→shard affinity
  over a :class:`~repro.cluster.RecoveryCluster`.

Correctness anchor (``tests/test_stream.py``): ``finalize()`` after N
appends returns exactly what one-shot ``recover()`` returns for the same
N points.  See ``docs/streaming.md`` for the session model and operator
runbook, and ``benchmarks/bench_streaming.py`` for the per-append speedup
over re-decoding from scratch.
"""

from .engine import DecodeOutcome, IncrementalEngine
from .service import StreamConfig, StreamingRecoveryService, StreamUpdate
from .session import (
    SessionOverloaded,
    SessionState,
    SessionStore,
    StoreConfig,
    StreamError,
    UnknownSession,
)
from .affinity import StreamingCluster

__all__ = [
    "DecodeOutcome",
    "IncrementalEngine",
    "StreamConfig",
    "StreamingRecoveryService",
    "StreamUpdate",
    "SessionOverloaded",
    "SessionState",
    "SessionStore",
    "StoreConfig",
    "StreamError",
    "UnknownSession",
    "StreamingCluster",
]
