"""Session state and the bounded :class:`SessionStore`.

A streaming session accumulates GPS fixes over minutes; between appends it
must hold whatever lets the next append avoid re-doing old work: the raw
fixes, the per-fix Eq. 16 constraint entries (ingest state), and the
committed prefix of the recovered trajectory (the incremental decode
state).  Fleets open sessions far faster than they close them — devices
drop offline mid-trip and never ``finalize`` — so the store is **bounded**
on three axes:

* **TTL** — a session idle longer than ``ttl_seconds`` is expired lazily
  (on the next store operation that touches the map);
* **LRU eviction** — at capacity, the least-recently-used session that has
  been idle at least ``evict_idle_seconds`` is evicted to make room;
* **backpressure** — when every resident session is busier than that,
  ``open`` sheds with :class:`SessionOverloaded` (the HTTP layer maps it
  to 429, mirroring the cluster's ``ShardOverloaded``).

Every eviction lands in a bounded ring the operator can read back
(``/session/evictions``), so a device that lost its session can learn why.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np


class StreamError(RuntimeError):
    """Base class for streaming-session failures."""


class SessionOverloaded(StreamError):
    """The session store is at capacity and nothing is idle enough to
    evict (429-style backpressure, mirroring ``ShardOverloaded``)."""

    def __init__(self, capacity: int, evict_idle_seconds: float) -> None:
        super().__init__(
            f"session store overloaded: {capacity} resident session(s), none "
            f"idle >= {evict_idle_seconds:g}s; open shed")
        self.capacity = capacity


class UnknownSession(StreamError):
    """No such session — never opened, expired, evicted, or finalized."""

    def __init__(self, session_id: str) -> None:
        super().__init__(
            f"unknown session {session_id!r} (never opened, expired, "
            "evicted, or already finalized); check /session/evictions")
        self.session_id = session_id


@dataclass
class SessionState:
    """Everything one streaming trajectory carries between appends."""

    session_id: str
    hour: int = 12
    holiday: bool = False
    created: float = 0.0
    last_touch: float = 0.0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # Raw fixes accepted so far (session-local coordinates).
    xy: np.ndarray = field(default_factory=lambda: np.zeros((0, 2)))
    times: np.ndarray = field(default_factory=lambda: np.zeros(0))
    # Incremental ingest state: ε_ρ grid step -> sparse Eq. 16 constraint
    # entry (ids, weights).  Steps are stable across appends (the grid
    # origin t0 is fixed at the first fix), so entries are computed once
    # per fix, ever.
    constraints: Dict[int, Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict)
    observed_steps: List[int] = field(default_factory=list)

    # Incremental decode state: the committed prefix (frozen, never
    # re-decoded), the decoder carry checkpointed at the commit boundary
    # (``repro.core.GreedyCarry`` — lets the next append resume decoding
    # mid-sequence instead of from step 0), and the last result streamed
    # to the client (committed prefix + provisional suffix).
    committed: int = 0
    carry: Optional[object] = None
    segments: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64))
    rates: np.ndarray = field(default_factory=lambda: np.zeros(0))
    # True while ``segments`` came from a decode that started at step 0
    # over the *current* fix set — finalize can then return it verbatim
    # instead of re-decoding (it already IS the one-shot result).
    full_decode: bool = False

    appends: int = 0
    revisions: int = 0
    model_tag: str = ""

    @property
    def num_fixes(self) -> int:
        return len(self.times)

    @property
    def last_time(self) -> Optional[float]:
        return float(self.times[-1]) if len(self.times) else None

    @property
    def last_step(self) -> int:
        return self.observed_steps[-1] if self.observed_steps else -1


@dataclass(frozen=True)
class StoreConfig:
    """Bounds of the session store."""

    capacity: int = 256            # max resident sessions
    ttl_seconds: float = 1800.0    # idle lifetime before lazy expiry
    evict_idle_seconds: float = 0.0  # idle time before LRU eviction is legal
    eviction_log: int = 256        # bounded ring of eviction records


class SessionStore:
    """LRU-ordered, TTL-swept, capacity-bounded map of live sessions.

    ``clock`` is injectable (monotonic seconds) so lifecycle tests don't
    sleep.  All map operations are lock-protected; per-session decode work
    serializes on ``SessionState.lock`` *outside* the store lock, so a slow
    decode never blocks unrelated opens/appends.
    """

    def __init__(self, config: Optional[StoreConfig] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or StoreConfig()
        if self.config.capacity < 1:
            raise ValueError("session store capacity must be >= 1")
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: "OrderedDict[str, SessionState]" = OrderedDict()
        self._evictions: Deque[Dict[str, Any]] = deque(
            maxlen=self.config.eviction_log)
        self.opened = 0
        self.finalized = 0
        self.expired_ttl = 0
        self.evicted_lru = 0
        self.shed = 0

    # ------------------------------------------------------------------
    def open(self, session: SessionState) -> SessionState:
        """Admit a new session, expiring/evicting to make room, or shed."""
        with self._lock:
            now = self._clock()
            self._sweep(now)
            if session.session_id in self._sessions:
                raise StreamError(
                    f"session {session.session_id!r} is already open")
            if len(self._sessions) >= self.config.capacity:
                self._evict_lru(now)
            if len(self._sessions) >= self.config.capacity:
                self.shed += 1
                raise SessionOverloaded(self.config.capacity,
                                        self.config.evict_idle_seconds)
            session.created = session.last_touch = now
            self._sessions[session.session_id] = session
            self.opened += 1
            return session

    def get(self, session_id: str) -> SessionState:
        """Look up and touch a session (moves it to the MRU end)."""
        with self._lock:
            self._sweep(self._clock())
            session = self._sessions.get(session_id)
            if session is None:
                raise UnknownSession(session_id)
            session.last_touch = self._clock()
            self._sessions.move_to_end(session_id)
            return session

    def remove(self, session_id: str) -> SessionState:
        """Remove a finalized session (no eviction record: it completed)."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is None:
                raise UnknownSession(session_id)
            self.finalized += 1
            return session

    # ------------------------------------------------------------------
    def _sweep(self, now: float) -> None:
        """Expire TTL-stale sessions (lock held)."""
        ttl = self.config.ttl_seconds
        stale = [sid for sid, s in self._sessions.items()
                 if now - s.last_touch >= ttl]
        for sid in stale:
            self._record_eviction(self._sessions.pop(sid), "ttl", now)
            self.expired_ttl += 1

    def _evict_lru(self, now: float) -> None:
        """Evict the LRU session idle >= evict_idle_seconds (lock held)."""
        for sid, session in self._sessions.items():  # LRU-first order
            if now - session.last_touch >= self.config.evict_idle_seconds:
                self._record_eviction(self._sessions.pop(sid), "lru", now)
                self.evicted_lru += 1
                return

    def _record_eviction(self, session: SessionState, reason: str,
                         now: float) -> None:
        self._evictions.append({
            "session_id": session.session_id,
            "reason": reason,
            "idle_seconds": round(now - session.last_touch, 3),
            "age_seconds": round(now - session.created, 3),
            "fixes": session.num_fixes,
            "appends": session.appends,
            "revisions": session.revisions,
            "committed_steps": int(session.committed),
        })

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions

    def evictions(self) -> List[Dict[str, Any]]:
        """Recent eviction records, oldest first."""
        with self._lock:
            return list(self._evictions)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "active_sessions": len(self._sessions),
                "capacity": self.config.capacity,
                "opened": self.opened,
                "finalized": self.finalized,
                "expired_ttl": self.expired_ttl,
                "evicted_lru": self.evicted_lru,
                "shed": self.shed,
            }
