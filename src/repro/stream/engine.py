"""The incremental decode engine: extend a recovery instead of redoing it.

One-shot recovery (``RNTrajRec.recover``) pays O(l_ρ) decode steps — each
with a |V|-wide segment head, constraint-mask materialization and an
R-tree-backed interpolation prior — every time it runs.  A streaming
session that re-ran it on every appended fix would pay O(N·l_ρ) over its
lifetime.  This engine exploits two structural facts:

* **Ingest state is append-only.**  The ε_ρ grid origin is pinned at the
  session's first fix, so every fix's snapped grid step — and therefore
  its sparse Eq. 16 constraint entry — never changes once computed.  Each
  append ingests only the new fixes.
* **Greedy decoding is stepwise-causal.**  Everything step j consumes
  from steps < j is the :class:`~repro.core.decoder.GreedyCarry`, so the
  engine checkpoints the carry at the commit boundary inside the session.
  An append resumes :meth:`~repro.core.decoder.RecoveryDecoder.\
decode_greedy_from` (the PR 2 raw-numpy step kernel, attention keys
  hoisted once per call) from that checkpoint and decodes **only the
  steps past it** — the still-revisable window behind the commit horizon
  plus whatever the new fix added — with constraint rows and the
  interpolation prior built for those steps alone.  Per-append decode
  work is O(horizon + new steps), independent of session length.

The encoder *is* re-run per append: GPSFormer attends bidirectionally and
normalizes time by the trace duration, so a new fix legitimately shifts
every point feature.  That cost is shared with the one-shot baseline and
is small next to the decode (l_τ ≪ l_ρ, and X_road plus per-point
sub-graphs are memoized across appends).

Because encoder outputs drift as the trace grows, a committed decision —
and the checkpointed carry that extends it — is an *approximation* of
what a from-scratch decode would now pick; that is the commit-horizon
trade.  ``finalize`` therefore runs the one-shot path (unless the last
append already decoded from step 0, in which case the split-kernel
equivalence makes the stored result bit-identical to it), giving the
exact guarantee: finalize after N appends ≡ one-shot recovery of the
same N points.  ``tests/test_stream.py`` asserts both halves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import profile
from ..core.model import RNTrajRec
from ..nn.tensor import no_grad
from ..roadnet.network import RoadNetwork
from ..serve.request import IngestConfig, RequestError, validate_append_times
from ..trajectory.dataset import (
    RecoverySample,
    constraint_for_fix,
    make_batch,
)
from ..trajectory.resample import epsilon_grid
from ..trajectory.trajectory import MatchedTrajectory, RawTrajectory
from .session import SessionState


@dataclass(frozen=True)
class DecodeOutcome:
    """One append's decode result and its bookkeeping."""

    segments: np.ndarray      # (l_ρ,) full recovered segment path
    rates: np.ndarray         # (l_ρ,) moving ratios
    times: np.ndarray         # (l_ρ,) the ε_ρ grid
    grid_length: int
    committed: int            # steps now frozen (≤ grid_length)
    decoded_steps: int        # steps run through the decode kernel
    skipped_steps: int        # committed prefix steps not re-decoded
    revised_from: int         # first step whose segment changed vs the
                              # session's previous result (-1: none)
    full_decode: bool         # decode started at step 0 (≡ one-shot)


class IncrementalEngine:
    """Per-network streaming ingest + split-decode engine."""

    def __init__(self, network: RoadNetwork,
                 ingest: Optional[IngestConfig] = None) -> None:
        self.network = network
        self.ingest = ingest or IngestConfig()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def append_fixes(self, session: SessionState, xy, times) -> int:
        """Validate and ingest new fixes; returns how many were added.

        Constraint entries are computed for the new fixes only — the grid
        origin is the session's first fix, so earlier steps are stable.
        Raises :class:`RequestError` on out-of-order/duplicate timestamps,
        non-finite coordinates, or fixes that land on an already-observed
        ε_ρ step (same rule as one-shot ``assemble_sample``).
        """
        times = validate_append_times(times, session.last_time)
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim == 1:
            xy = xy.reshape(1, -1)
        if xy.shape != (len(times), 2):
            raise RequestError(
                f"append points must be ({len(times)}, 2); got {xy.shape}")
        if not np.all(np.isfinite(xy)):
            raise RequestError("GPS positions must be finite")

        interval = self.ingest.interval
        t0 = float(session.times[0]) if session.num_fixes else float(times[0])
        steps = np.round((times - t0) / interval).astype(np.int64)
        trail = np.concatenate(([session.last_step], steps))
        if np.any(np.diff(trail) <= 0):
            raise RequestError(
                "appended fixes must map to distinct increasing ε_ρ steps; "
                f"got {steps.tolist()} after step {session.last_step} for "
                f"interval {interval}")

        for (x, y), step in zip(xy, steps):
            session.constraints[int(step)] = constraint_for_fix(
                self.network, float(x), float(y),
                self.ingest.beta, self.ingest.max_gps_error)
            session.observed_steps.append(int(step))
        session.xy = np.concatenate([session.xy, xy])
        session.times = np.concatenate([session.times, times])
        return len(times)

    def sample_for(self, session: SessionState) -> RecoverySample:
        """The session's current fix set as a target-less recovery sample
        (same structure one-shot ``assemble_sample`` builds)."""
        grid_times = epsilon_grid(float(session.times[0]),
                                  float(session.times[-1]),
                                  self.ingest.interval)
        placeholder = MatchedTrajectory(
            np.zeros(len(grid_times), dtype=np.int64),
            np.zeros(len(grid_times)),
            grid_times,
        )
        return RecoverySample(
            raw_low=RawTrajectory(session.xy, session.times),
            target=placeholder,
            observed_steps=np.asarray(session.observed_steps, dtype=np.int64),
            constraints=tuple(
                session.constraints.get(step)
                for step in range(len(grid_times))),
            hour=session.hour,
            holiday=session.holiday,
        )

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def decode(self, model: RNTrajRec, session: SessionState,
               commit_horizon: int,
               scheduler=None) -> DecodeOutcome:
        """Extend the session's recovery from the checkpointed carry.

        Decodes the grid steps past the commit boundary in two chunks of
        the same kernel — the steps now aging past the horizon (their
        carry becomes the next checkpoint) and the still-provisional tail
        — which by the split-kernel equivalence is bit-identical to
        decoding the span in one call.

        With a ``scheduler`` (a :class:`~repro.serve.ContinuousScheduler`,
        the cluster-affinity path), the suffix is decoded as **one**
        continuous-batching job joining the shard's slot table next to
        one-shot traffic, with ``checkpoint_at`` snapshotting the carry at
        the commit boundary in-flight — the same bits as the two-chunk
        local path, again by the split-kernel equivalence."""
        sample = self.sample_for(session)
        batch = make_batch([sample])
        length = sample.target_length
        start = int(min(session.committed, length))
        commit = max(start, length - max(int(commit_horizon), 0))

        with no_grad(), profile.section("stream.decode"):
            with profile.section("model.encode"):
                encoded = model.encode(batch)
            enc = encoded.point_features.data
            if start and session.carry is not None:
                carry = session.carry
            else:
                start = 0
                commit = max(0, length - max(int(commit_horizon), 0))
                carry = model.decoder.initial_carry(
                    encoded.trajectory_feature.data)
            constraint = self._suffix_constraint(model, sample, start)
            chunks = []
            if scheduler is not None and length > start:
                from ..core.decoder import GreedyWeights
                from ..serve.engine import DecodeJob

                job = DecodeJob(
                    enc=enc, carry=carry, num_steps=length - start,
                    constraint=constraint,
                    weights=GreedyWeights.from_decoder(model.decoder),
                    reachability=model.reachability,
                    tag=session.model_tag,
                    checkpoint_at=commit - start,
                )
                result = scheduler.submit_job(job).result()
                # checkpoint is the carry after (commit - start) steps —
                # the admitted carry itself when nothing commits this turn.
                carry = result.checkpoint
                chunks.append((result.segments, result.rates))
            else:
                if commit > start:  # committing steps: checkpoint their carry
                    seg, rate, carry = model.decoder.decode_greedy_from(
                        enc, carry, commit - start,
                        constraint[:, :commit - start],
                        reachability=model.reachability)
                    chunks.append((seg[0], rate[0]))
                if length > commit:  # the provisional tail (carry discarded)
                    seg, rate, _ = model.decoder.decode_greedy_from(
                        enc, carry, length - commit,
                        constraint[:, commit - start:],
                        reachability=model.reachability)
                    chunks.append((seg[0], rate[0]))

        segments = np.concatenate(
            [session.segments[:start]] + [seg for seg, _ in chunks])
        rates = np.concatenate(
            [session.rates[:start]] + [rate for _, rate in chunks])

        revised_from = self._first_revision(session.segments, segments, start)
        outcome = DecodeOutcome(
            segments=segments, rates=rates, times=sample.target.times,
            grid_length=length, committed=commit,
            decoded_steps=length - start, skipped_steps=start,
            revised_from=revised_from, full_decode=(start == 0),
        )
        session.segments = segments
        session.rates = rates
        session.committed = commit
        session.carry = carry  # the carry at the (new) commit boundary
        session.full_decode = outcome.full_decode
        if revised_from >= 0:
            session.revisions += 1
        return outcome

    def finalize(self, model: RNTrajRec,
                 session: SessionState) -> Tuple[MatchedTrajectory, int, bool]:
        """The exact recovery of the session's full fix set.

        Returns (trajectory, revised_from vs the last streamed result,
        whether a fresh full decode ran).  When the last append already
        decoded from step 0 — short sessions that never crossed the commit
        horizon — the stored result is bit-identical to the one-shot path
        (split-kernel equivalence) and is returned without another decode.
        """
        sample = self.sample_for(session)
        with profile.section("stream.finalize"):
            if session.full_decode and len(session.segments) == sample.target_length:
                segments, rates = session.segments, session.rates
                decoded = False
            else:
                seg2d, rate2d = model.recover(make_batch([sample]))
                segments, rates = seg2d[0], rate2d[0]
                decoded = True
        revised_from = self._first_revision(session.segments, segments, 0)
        trajectory = MatchedTrajectory(segments, rates, sample.target.times)
        return trajectory, revised_from, decoded

    # ------------------------------------------------------------------
    def _suffix_constraint(self, model: RNTrajRec, sample: RecoverySample,
                           start: int) -> np.ndarray:
        """(1, l_ρ-start, |V|) constraint rows for the decoded suffix only.

        Row values are identical to slicing the full-grid tensor the
        one-shot path builds (``constraint_tensor * interpolation_prior``)
        at ``[start:]`` — per-step values never depend on other steps —
        but only the suffix rows are materialized and only the suffix's
        distinct interpolated positions hit the R-tree.
        """
        num_segments = self.network.num_segments
        length = sample.target_length
        n = length - start
        mask = np.ones((n, num_segments), dtype=np.float64)
        for step, entry in enumerate(sample.constraints[start:]):
            if entry is None:
                continue
            mask[step] = 0.0
            mask[step, entry[0]] = entry[1]

        config = model.config
        if config.decode_prior_scale > 0:
            scale, floor = config.decode_prior_scale, config.decode_prior_floor
            low = sample.raw_low
            times = sample.target.times[start:]
            positions = np.stack([
                np.interp(times, low.times, low.xy[:, 0]),
                np.interp(times, low.times, low.xy[:, 1]),
            ], axis=1)
            prior = np.full((n, num_segments), floor)
            _, first, inverse = np.unique(positions, axis=0, return_index=True,
                                          return_inverse=True)
            inverse = inverse.reshape(-1)
            order = np.argsort(inverse, kind="stable")
            boundaries = np.searchsorted(inverse[order],
                                         np.arange(len(first) + 1))
            for u, representative in enumerate(first):
                x, y = positions[representative]
                ids, dists = self.network.segments_within_arrays(
                    float(x), float(y), 3.0 * scale)
                if not len(ids):
                    continue
                weights = np.maximum(np.exp(-(dists / scale) ** 2), floor)
                rows = order[boundaries[u]:boundaries[u + 1]]
                prior[np.ix_(rows, ids)] = weights
            mask = mask * prior
        return mask[None, :, :]

    @staticmethod
    def _first_revision(old: np.ndarray, new: np.ndarray, start: int) -> int:
        """First index where the new result contradicts the old one (-1 if
        the old result is a prefix-consistent subset of the new)."""
        overlap = min(len(old), len(new))
        if overlap <= start:
            return -1
        changed = np.nonzero(old[start:overlap] != new[start:overlap])[0]
        return int(changed[0]) + start if len(changed) else -1
