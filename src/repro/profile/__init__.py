"""Lightweight wall-clock profiling for the recovery hot path.

A :class:`Profiler` is a thread-safe registry of named **sections** (timed
spans) and **counters**.  The hot paths of the model and the serving layer
are instrumented with ``profile.section("...")`` context managers — encode,
decode, sub-graph generation, and the micro-batch scheduler — so any
caller (benchmarks, the serving CLI, a notebook) can flip profiling on and
read a per-stage wall-clock breakdown without touching model code:

    from repro import profile

    profile.enable()
    model.recover(batch)
    print(profile.report())

Profiling is **disabled by default** and costs one attribute check plus a
shared no-op context manager per instrumented span when off, so the
instrumentation can stay in the production code path permanently.
``benchmarks/bench_hotpath.py`` uses the same registry to emit the
``BENCH_hotpath.json`` perf-trajectory artifact.

Section names used by the built-in instrumentation:

==========================  ====================================================
``model.recover``           end-to-end recovery (encode + priors + decode)
``model.encode``            full GPSFormer forward
``encoder.road_features``   road representation (X_road; cache misses only)
``encoder.blocks``          the GPSFormer transformer/refinement block stack
``road.grid_gru``           GridGNN grid-sequence GRU (inside road features)
``road.gat``                GridGNN GAT stack (inside road features)
``subgraph.batch``          sub-graph generation over a (b, l) point grid
``decode.prior``            interpolation-prior construction
``decode.greedy``           greedy decode step loop (also ``recover_padded``)
``decode.beam``             beam-search decode
``serve.batch``             one micro-batched decode in the serving scheduler
==========================  ====================================================
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

__all__ = [
    "Profiler",
    "SectionStat",
    "PROFILER",
    "section",
    "count",
    "enable",
    "disable",
    "memory_snapshot",
    "proc_pss_mb",
    "proc_rss_mb",
    "reset",
    "stats",
    "report",
]


class SectionStat:
    """Aggregated timings of one named section."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def snapshot(self) -> Dict[str, float]:
        mean = self.total_s / self.count if self.count else 0.0
        return {
            "count": self.count,
            "total_s": round(self.total_s, 6),
            "mean_ms": round(1000.0 * mean, 4),
            "min_ms": round(1000.0 * (self.min_s if self.count else 0.0), 4),
            "max_ms": round(1000.0 * self.max_s, 4),
        }


class _Section:
    """Context manager recording one timed span into a profiler."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.add(self._name, time.perf_counter() - self._start)


class _NullSection:
    """Shared no-op context manager returned while profiling is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SECTION = _NullSection()


class Profiler:
    """Thread-safe named timer/counter registry."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._sections: Dict[str, SectionStat] = {}
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def enable(self) -> "Profiler":
        self.enabled = True
        return self

    def disable(self) -> "Profiler":
        self.enabled = False
        return self

    def reset(self) -> None:
        with self._lock:
            self._sections.clear()
            self._counters.clear()

    # ------------------------------------------------------------------
    def section(self, name: str):
        """A context manager timing the enclosed block (no-op when off)."""
        if not self.enabled:
            return _NULL_SECTION
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Record one completed span of ``seconds`` under ``name``."""
        with self._lock:
            stat = self._sections.get(name)
            if stat is None:
                stat = self._sections[name] = SectionStat()
            stat.add(seconds)

    def count(self, name: str, n: int = 1) -> None:
        """Bump counter ``name`` by ``n`` (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, dict]:
        """Snapshot: ``{"sections": {...}, "counters": {...}}``."""
        with self._lock:
            return {
                "sections": {name: stat.snapshot()
                             for name, stat in sorted(self._sections.items())},
                "counters": dict(sorted(self._counters.items())),
            }

    def report(self) -> str:
        """Human-readable per-section table, widest total first."""
        snap = self.stats()
        lines = [f"{'section':<28}{'count':>8}{'total s':>10}{'mean ms':>10}"
                 f"{'min ms':>10}{'max ms':>10}"]
        lines.append("-" * len(lines[0]))
        ordered = sorted(snap["sections"].items(),
                         key=lambda kv: -kv[1]["total_s"])
        for name, stat in ordered:
            lines.append(f"{name:<28}{stat['count']:>8}{stat['total_s']:>10.3f}"
                         f"{stat['mean_ms']:>10.2f}{stat['min_ms']:>10.2f}"
                         f"{stat['max_ms']:>10.2f}")
        for name, value in snap["counters"].items():
            lines.append(f"{name:<28}{value:>8}")
        return "\n".join(lines)


#: The process-wide default profiler every instrumented hot path reports to.
PROFILER = Profiler()


def section(name: str):
    """``with profile.section("decode.greedy"): ...`` on the default profiler."""
    return PROFILER.section(name)


def count(name: str, n: int = 1) -> None:
    PROFILER.count(name, n)


def enable() -> Profiler:
    return PROFILER.enable()


def disable() -> Profiler:
    return PROFILER.disable()


def reset() -> None:
    PROFILER.reset()


def stats() -> Dict[str, dict]:
    return PROFILER.stats()


def report() -> str:
    return PROFILER.report()


def _read_status_mb(pid) -> Dict[str, float]:
    """{"rss_mb", "peak_rss_mb"} of one pid from ``/proc/<pid>/status``
    (zeros if the process is gone or /proc is unavailable)."""
    current = peak = 0.0
    try:
        with open(f"/proc/{pid}/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    current = int(line.split()[1]) / 1024.0
                elif line.startswith("VmHWM:"):
                    peak = int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return {"rss_mb": current, "peak_rss_mb": peak}


def proc_rss_mb(pid) -> float:
    """One process's current VmRSS in MiB (0.0 if unreadable) — the
    cluster's per-worker memory gauge for process-backed shards."""
    return round(_read_status_mb(pid)["rss_mb"], 3)


def proc_pss_mb(pid) -> Optional[float]:
    """One process's proportional set size in MiB (None where the kernel
    hides ``smaps_rollup``).  The memory-scaling benchmark sums this over
    worker pids: pages N workers share — the mmap'd city artifacts, the
    fork-shared model — are charged once across the tree, so the figure
    answers "what do N replicas actually cost" instead of N x VmRSS."""
    return _read_pss_mb(pid)


def _read_pss_mb(pid) -> Optional[float]:
    """Proportional set size of one pid (``/proc/<pid>/smaps_rollup``),
    or None where the kernel doesn't expose it.  PSS divides each shared
    page by its number of sharers, so summing it over a worker tree
    counts an mmap'd city artifact (or fork-shared model) once instead
    of N times."""
    try:
        with open(f"/proc/{pid}/smaps_rollup") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return None


def memory_snapshot(pids=()) -> Dict[str, float]:
    """Resident set size of this process — plus, with ``pids``, its
    worker children — in MiB.

    Memory joins latency/throughput as a first-class tracked metric: the
    cluster stats rollup, serving telemetry, and the ``bench_cluster``
    memory-scaling section all sample it at measurement boundaries.
    Reads ``/proc/self/status`` (``VmRSS`` / ``VmHWM``); where /proc is
    unavailable it falls back to ``resource.getrusage`` peak RSS and
    reports 0.0 for the current value.

    ``pids`` names worker processes (a process-backed shard's replicas)
    to fold in: ``rss_mb`` / ``peak_rss_mb`` become sums over the whole
    tree, and the snapshot gains ``processes``, ``children_rss_mb`` and —
    where ``smaps_rollup`` is readable — ``pss_mb``, the proportional set
    size that counts pages shared between the workers (mmap'd artifacts,
    fork-inherited networks) **once**.  Plain ``rss_mb`` over N sharing
    workers multiple-counts those pages; compare the two to see how much
    of the fleet is truly shared.
    """
    own = _read_status_mb("self")
    current, peak = own["rss_mb"], own["peak_rss_mb"]
    if current == 0.0 and peak == 0.0:
        try:
            import resource
            peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        except Exception:
            pass
    payload = {"rss_mb": current, "peak_rss_mb": peak}
    if pids:
        children = 0.0
        pss_total = _read_pss_mb("self")
        for pid in pids:
            child = _read_status_mb(pid)
            children += child["rss_mb"]
            payload["peak_rss_mb"] += child["peak_rss_mb"]
            if pss_total is not None:
                child_pss = _read_pss_mb(pid)
                pss_total = (None if child_pss is None
                             else pss_total + child_pss)
        payload["rss_mb"] += children
        payload["children_rss_mb"] = round(children, 3)
        payload["processes"] = len(pids) + 1
        if pss_total is not None:
            payload["pss_mb"] = round(pss_total, 3)
    payload["rss_mb"] = round(payload["rss_mb"], 3)
    payload["peak_rss_mb"] = round(payload["peak_rss_mb"], 3)
    return payload
