"""``repro.cluster`` — sharded multi-city recovery serving.

One :class:`RecoveryCluster` front door over many per-city
:class:`~repro.serve.RecoveryService` shards: a grid-backed
:class:`ShardRouter` resolves each global-frame trace to the shard owning
its region (dead-lettering traces that straddle shards or fall outside
all of them), each :class:`Shard` lazily materializes its road network
and model replicas, admits bounded in-flight work (shedding with
:class:`ShardOverloaded` under overload), and one city's model can be
hot-swapped without touching siblings.  Topologies come from a
:class:`ShardMap` (in code, or a TOML/JSON file via
:func:`load_shard_map`).

See ``docs/cluster.md`` for topology, shard-map format and the operator
runbook; ``scripts/serve.py cluster`` and ``examples/cluster_demo.py``
are the runnable entries, and ``benchmarks/bench_cluster.py`` measures
sharded vs monolithic serving.
"""

from .cluster import ClusterResult, RecoveryCluster
from .router import RouteError, ShardRouter
from .shard import Shard, ShardOverloaded
from .shardmap import ShardMap, ShardSpec, load_shard_map, side_by_side
from .telemetry import ClusterTelemetry
from .workers import (
    BackendDegraded,
    WorkerCrashed,
    WorkerError,
    WorkerPool,
    WorkerTimeout,
)

__all__ = [
    "ClusterResult",
    "RecoveryCluster",
    "RouteError",
    "ShardRouter",
    "Shard",
    "ShardOverloaded",
    "ShardMap",
    "ShardSpec",
    "load_shard_map",
    "side_by_side",
    "ClusterTelemetry",
    "BackendDegraded",
    "WorkerCrashed",
    "WorkerError",
    "WorkerPool",
    "WorkerTimeout",
]
