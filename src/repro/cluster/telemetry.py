"""Cluster-level counters: routing, shedding, dead letters.

Per-shard serving metrics (latency reservoirs, cache hits, batch
occupancy, per-model-generation request counts) live in each replica's
:class:`repro.serve.ServingTelemetry`; this module only tracks what the
single-service layer cannot see — routing decisions, overload sheds, and
the bounded dead-letter ring of traces the cluster refused.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List


class ClusterTelemetry:
    """Counters behind ``RecoveryCluster.stats()`` and ``dead_letters()``."""

    def __init__(self, dead_letter_capacity: int = 256) -> None:
        self._lock = threading.Lock()
        self._start = time.perf_counter()
        self.routed: Dict[str, int] = {}
        self.shed: Dict[str, int] = {}
        self.unroutable: Dict[str, int] = {"outside": 0, "straddle": 0}
        self.errors = 0
        self._dead: Deque[Dict[str, Any]] = deque(maxlen=max(0, dead_letter_capacity))

    # ------------------------------------------------------------------
    def record_routed(self, shard: str) -> None:
        with self._lock:
            self.routed[shard] = self.routed.get(shard, 0) + 1

    def record_shed(self, shard: str, request_id: str, detail: str) -> None:
        with self._lock:
            self.shed[shard] = self.shed.get(shard, 0) + 1
            self._dead.append({"request_id": request_id, "reason": "shed",
                               "shard": shard, "detail": detail})

    def record_unroutable(self, reason: str, request_id: str, detail: str) -> None:
        with self._lock:
            self.unroutable[reason] = self.unroutable.get(reason, 0) + 1
            self._dead.append({"request_id": request_id, "reason": reason,
                               "shard": "", "detail": detail})

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    # ------------------------------------------------------------------
    def dead_letters(self) -> List[Dict[str, Any]]:
        """Newest-last snapshot of refused traces (bounded ring)."""
        with self._lock:
            return list(self._dead)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            routed = sum(self.routed.values())
            shed = sum(self.shed.values())
            unroutable = sum(self.unroutable.values())
            elapsed = max(time.perf_counter() - self._start, 1e-9)
            return {
                "uptime_seconds": round(elapsed, 3),
                "routed": routed,
                "routed_by_shard": dict(sorted(self.routed.items())),
                "shed": shed,
                "shed_by_shard": dict(sorted(self.shed.items())),
                "unroutable": unroutable,
                "unroutable_by_reason": dict(self.unroutable),
                "errors": self.errors,
                "dead_letters": len(self._dead),
            }
