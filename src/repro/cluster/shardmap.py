"""Shard topology: which city lives where in the global frame.

A cluster serves several road networks behind one front door.  Each
:class:`ShardSpec` places one city (a `repro.datasets` recipe or an
explicitly bounded custom network) at an ``origin`` in a shared global
coordinate frame and says how it is served: which model bundle, how many
replicas, how much in-flight work it admits before shedding.  A
:class:`ShardMap` is the full topology plus cluster-wide knobs, and is
what the ``scripts/serve.py cluster`` entrypoint loads from a TOML or
JSON file — see ``docs/cluster.md`` for the file format.

Shard bounding boxes must be disjoint: the router resolves a trace to at
most one shard, and an ambiguous map is a configuration error, not a
runtime condition.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..datasets.registry import get_spec
from ..serve.service import ServeConfig

try:  # Python >= 3.11; JSON maps remain fully supported without it.
    import tomllib
except ModuleNotFoundError:  # pragma: no cover
    tomllib = None

#: Default slack added around a city's nominal rectangle so GPS fixes with
#: realistic noise (σ ≈ 12-15 m in the dataset recipes) still route home.
DEFAULT_MARGIN = 60.0

BBox = Tuple[float, float, float, float]


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a city placed in the global frame plus serving knobs.

    ``dataset`` names a `repro.datasets` recipe; the shard's road network
    is rebuilt deterministically from it on first use (lazy warm-up).  A
    shard serving a custom network instead (e.g. a merged multi-district
    baseline) sets ``dataset=None`` and provides an explicit ``bbox`` —
    its network then comes from the cluster's ``network_factory``.
    """

    name: str
    dataset: Optional[str] = None
    origin: Tuple[float, float] = (0.0, 0.0)
    bundle: Optional[str] = None      # checkpoint prefix (see save_model_bundle)
    replicas: int = 1
    max_inflight: int = 32            # per-replica admission bound
    margin: float = DEFAULT_MARGIN    # bbox slack around the city rectangle
    bbox: Optional[BBox] = None       # explicit global bbox (overrides derived)
    # "inproc": replicas are RecoveryService threads in this process.
    # "process": replicas are forked worker processes (repro.cluster.workers)
    # — true multi-core decode throughput; see docs/cluster.md.
    backend: str = "inproc"
    # Per-request wall-clock bound for process workers (seconds); a worker
    # exceeding it is killed and respawned and the future fails with a
    # typed WorkerTimeout.  0 disables the watchdog.  Ignored for inproc.
    worker_timeout: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a shard needs a non-empty name")
        if self.replicas < 1:
            raise ValueError(f"shard {self.name!r}: replicas must be >= 1")
        if self.max_inflight < 1:
            raise ValueError(f"shard {self.name!r}: max_inflight must be >= 1")
        if self.backend not in ("inproc", "process"):
            raise ValueError(
                f"shard {self.name!r}: backend must be 'inproc' or "
                f"'process'; got {self.backend!r}")
        if self.worker_timeout < 0:
            raise ValueError(
                f"shard {self.name!r}: worker_timeout must be >= 0")
        if self.dataset is None and self.bbox is None:
            raise ValueError(
                f"shard {self.name!r} needs a dataset name or an explicit bbox")
        object.__setattr__(self, "origin",
                           (float(self.origin[0]), float(self.origin[1])))
        if self.bbox is not None:
            x0, y0, x1, y1 = (float(v) for v in self.bbox)
            if x0 >= x1 or y0 >= y1:
                raise ValueError(f"shard {self.name!r}: degenerate bbox {self.bbox}")
            object.__setattr__(self, "bbox", (x0, y0, x1, y1))

    def resolved_bbox(self) -> BBox:
        """Global-frame bounding box this shard owns.

        Derived from the dataset's city rectangle plus ``margin`` unless
        an explicit ``bbox`` was given.  Known before the network is
        materialized, so routing works against cold shards.
        """
        if self.bbox is not None:
            return self.bbox
        city = get_spec(self.dataset).city
        ox, oy = self.origin
        return (ox - self.margin, oy - self.margin,
                ox + city.width + self.margin, oy + city.height + self.margin)


def _boxes_overlap(a: BBox, b: BBox) -> bool:
    return not (a[2] <= b[0] or b[2] <= a[0] or a[3] <= b[1] or b[3] <= a[1])


@dataclass(frozen=True)
class ShardMap:
    """The full cluster topology plus cluster-wide serving knobs.

    ``serve`` holds :class:`~repro.serve.ServeConfig` overrides applied to
    every shard (e.g. ``max_batch_size``, ``cache_capacity``); per-dataset
    ingest parameters (ε_ρ interval, β, GPS error radius) still come from
    each shard's own dataset spec.
    """

    shards: Tuple[ShardSpec, ...]
    cell_size: float = 200.0          # router grid resolution (meters)
    dead_letter_capacity: int = 256
    serve: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "shards", tuple(self.shards))
        if not self.shards:
            raise ValueError("a shard map needs at least one shard")
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")
        names = [shard.name for shard in self.shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names in map: {sorted(names)}")
        # Fail at construction, not on first lazy warm-up mid-traffic.
        unknown = set(self.serve) - set(ServeConfig.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"unknown serve override keys {sorted(unknown)}; valid: "
                f"{sorted(ServeConfig.__dataclass_fields__)}")
        boxes = [(shard.name, shard.resolved_bbox()) for shard in self.shards]
        for i, (name_a, box_a) in enumerate(boxes):
            for name_b, box_b in boxes[i + 1:]:
                if _boxes_overlap(box_a, box_b):
                    raise ValueError(
                        f"shards {name_a!r} and {name_b!r} have overlapping "
                        f"bounding boxes {box_a} / {box_b}; routing must be "
                        "unambiguous")

    def names(self) -> List[str]:
        return [shard.name for shard in self.shards]

    def __iter__(self):
        return iter(self.shards)


def side_by_side(datasets: Sequence[str], gap: float = 500.0,
                 **shard_kwargs) -> ShardMap:
    """A shard map laying the named cities out left to right.

    Origins are computed from each city's width plus ``gap`` meters of
    empty corridor, so the bounding boxes can never overlap.  Repeated
    dataset names get ``-2``, ``-3`` … suffixes.
    """
    if gap <= 2 * shard_kwargs.get("margin", DEFAULT_MARGIN):
        raise ValueError("gap must exceed twice the bbox margin")
    shards: List[ShardSpec] = []
    seen: Dict[str, int] = {}
    x = 0.0
    for dataset in datasets:
        seen[dataset] = seen.get(dataset, 0) + 1
        name = dataset if seen[dataset] == 1 else f"{dataset}-{seen[dataset]}"
        shards.append(ShardSpec(name=name, dataset=dataset, origin=(x, 0.0),
                                **shard_kwargs))
        x += get_spec(dataset).city.width + gap
    return ShardMap(shards=tuple(shards))


def _parse_payload(payload: Dict[str, Any], source: str) -> ShardMap:
    cluster = dict(payload.get("cluster", {}))
    serve = dict(payload.get("serve", {}))
    raw_shards = payload.get("shard", payload.get("shards"))
    if not raw_shards:
        raise ValueError(f"{source}: no [[shard]] entries / 'shards' list")
    known = set(ShardSpec.__dataclass_fields__)
    shards = []
    for entry in raw_shards:
        unknown = set(entry) - known
        if unknown:
            raise ValueError(f"{source}: unknown shard keys {sorted(unknown)}")
        entry = dict(entry)
        if "origin" in entry:
            entry["origin"] = tuple(entry["origin"])
        if "bbox" in entry and entry["bbox"] is not None:
            entry["bbox"] = tuple(entry["bbox"])
        shards.append(ShardSpec(**entry))
    return ShardMap(
        shards=tuple(shards),
        cell_size=float(cluster.get("cell_size", 200.0)),
        dead_letter_capacity=int(cluster.get("dead_letter_capacity", 256)),
        serve=serve,
    )


def load_shard_map(path: str) -> ShardMap:
    """Parse a shard-map file (``.toml`` or ``.json``) into a ShardMap.

    See ``docs/cluster.md`` for the schema; ``examples/cluster_demo.py``
    builds the same structure in code via :func:`side_by_side`.
    """
    file = Path(path)
    text = file.read_text(encoding="utf-8")
    if file.suffix.lower() == ".toml":
        if tomllib is None:  # pragma: no cover
            raise RuntimeError("TOML shard maps need Python >= 3.11; use JSON")
        payload = tomllib.loads(text)
    else:
        payload = json.loads(text)
    return _parse_payload(payload, source=str(path))
