"""Trace → shard routing over a coarse spatial grid.

The router answers one question per request: *which shard owns every fix
of this trace?*  It reuses :class:`repro.geo.grid.Grid` as the spatial
key: a coarse grid over the union of all shard bounding boxes, with each
cell pre-assigned to the shard whose bbox contains its center.  Routing a
trace is then one vectorized cell lookup; the candidate answer is
confirmed with an exact bbox containment check so boundary cells (whose
centers may sit on the wrong side of a shard edge) can never misroute.

Traces the grid cannot place are classified exactly:

* ``outside``  — at least one fix lies in no shard's bbox;
* ``straddle`` — every fix is covered, but by more than one shard (the
  trace crosses a shard boundary; a single recovery request cannot span
  two road networks).

Both raise :class:`RouteError`; the cluster turns them into dead-letter
entries instead of serving a wrong-city recovery.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..geo.grid import Grid
from .shardmap import BBox


class RouteError(ValueError):
    """A trace no single shard can own. ``reason`` ∈ {outside, straddle}."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"unroutable trace ({reason}): {detail}")
        self.reason = reason
        self.detail = detail


#: Upper bound on router grid cells — the owner array covers the UNION of
#: all shard bboxes, so far-apart cities (e.g. real projected coordinates
#: megameters apart) would otherwise allocate area-proportional memory.
#: Beyond the cap the cell size auto-coarsens; routing stays exact because
#: the grid is only a fast path confirmed by precise bbox containment.
MAX_GRID_CELLS = 1 << 18


class ShardRouter:
    """Maps traces to shard indices by bounding box via a coarse grid."""

    def __init__(self, boxes: Sequence[BBox], cell_size: float = 200.0) -> None:
        if not boxes:
            raise ValueError("router needs at least one shard bbox")
        self.boxes = [tuple(float(v) for v in box) for box in boxes]
        arr = np.asarray(self.boxes, dtype=np.float64)  # (n, 4)
        self._x0, self._y0 = arr[:, 0], arr[:, 1]
        self._x1, self._y1 = arr[:, 2], arr[:, 3]

        x0, y0 = float(arr[:, 0].min()), float(arr[:, 1].min())
        x1, y1 = float(arr[:, 2].max()), float(arr[:, 3].max())
        cell = float(cell_size)
        while (max(1, np.ceil((x1 - x0) / cell))
               * max(1, np.ceil((y1 - y0) / cell))) > MAX_GRID_CELLS:
            cell *= 2.0
        self.grid = Grid(x0=x0, y0=y0, x1=x1, y1=y1, cell_size=cell)
        # Cell → owning shard (or -1).  Centers are unambiguous because
        # shard boxes are disjoint (ShardMap enforces it); cells straddling
        # a bbox edge get the shard of their center and are re-checked
        # exactly at route time.
        rows, cols = np.meshgrid(np.arange(self.grid.rows),
                                 np.arange(self.grid.cols), indexing="ij")
        cx = self.grid.x0 + (cols.ravel() + 0.5) * self.grid.cell_size
        cy = self.grid.y0 + (rows.ravel() + 0.5) * self.grid.cell_size
        inside = self._containment(cx, cy)           # (n_shards, n_cells)
        owner = np.where(inside.any(axis=0), inside.argmax(axis=0), -1)
        self._owner = owner.astype(np.int64)

    # ------------------------------------------------------------------
    def _containment(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """(n_shards, n_points) exact bbox membership (edges inclusive)."""
        return ((x >= self._x0[:, None]) & (x <= self._x1[:, None])
                & (y >= self._y0[:, None]) & (y <= self._y1[:, None]))

    def shard_of_points(self, xy: np.ndarray) -> int:
        """The single shard index owning every point, else RouteError."""
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2 or len(xy) == 0:
            raise ValueError(f"expected (n, 2) points, got shape {xy.shape}")
        x, y = xy[:, 0], xy[:, 1]

        # Fast path: one vectorized cell lookup.  Points outside the union
        # rectangle clamp onto border cells, so guard with the union bounds.
        in_union = ((x >= self.grid.x0) & (x <= self.grid.x1)
                    & (y >= self.grid.y0) & (y <= self.grid.y1))
        if bool(in_union.all()):
            owners = self._owner[self.grid.flat_cell_of(x, y)]
            candidate = int(owners[0])
            if candidate >= 0 and bool((owners == candidate).all()):
                inside = self._containment(x, y)[candidate]
                if bool(inside.all()):  # confirm: cell centers approximate
                    return candidate

        # Slow path (boundary cells, rejections): exact containment per
        # shard, also used to classify the failure reason precisely.
        inside = self._containment(x, y)             # (n_shards, n_points)
        full = np.flatnonzero(inside.all(axis=1))
        if len(full) == 1:
            return int(full[0])
        covered = inside.any(axis=0)
        if not bool(covered.all()):
            missing = np.flatnonzero(~covered)
            fix = xy[missing[0]]
            raise RouteError(
                "outside",
                f"{len(missing)}/{len(xy)} fixes outside every shard "
                f"(first: ({fix[0]:.1f}, {fix[1]:.1f}))",
            )
        touched = sorted(int(i) for i in np.flatnonzero(inside.any(axis=1)))
        raise RouteError(
            "straddle",
            f"trace spans shards {touched}; recovery cannot cross shard "
            "boundaries",
        )

    def coverage(self) -> Tuple[int, int]:
        """(cells owned by some shard, total cells) — telemetry/debugging."""
        return int((self._owner >= 0).sum()), int(self._owner.size)
