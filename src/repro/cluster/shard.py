"""One shard: a city's recovery stack behind admission control.

A :class:`Shard` owns everything needed to serve one region: the road
network, a shared :class:`~repro.serve.ModelRegistry` (so a hot swap
reaches every replica at once), and N :class:`~repro.serve.RecoveryService`
replicas drained round-robin.  Two cluster-level concerns live here
because a single service cannot express them:

* **Lazy warm-up** — a shard starts *spec-only*: routing works against
  its declared bbox immediately, but the network, registry and replicas
  materialize on the first routed request (or an explicit ``warm()``).
  A 30-city map doesn't pay 30 city builds at boot.
* **Backpressure** — each replica admits at most ``max_inflight``
  outstanding requests.  When every replica is saturated the shard sheds
  the request with :class:`ShardOverloaded` (the HTTP layer maps it to
  429) instead of queueing unboundedly.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future
from dataclasses import asdict
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..core.model import RNTrajRec
from ..datasets.registry import get_spec
from ..nn.tensor import Tensor
from ..roadnet.artifacts import CityArtifacts
from ..roadnet.generator import generate_city
from ..roadnet.network import RoadNetwork
from ..serve.registry import ModelRegistry
from ..serve.request import RecoveryRequest, RecoveryResponse
from ..serve.service import RecoveryService, ServeConfig
from ..serve.telemetry import ServingTelemetry
from .shardmap import ShardSpec
from .workers import WorkerError, WorkerFactory, WorkerPool

#: model_factory(spec, network) -> eval-mode RNTrajRec (bundle-less shards)
ModelFactory = Callable[[ShardSpec, RoadNetwork], RNTrajRec]
#: network_factory(spec) -> RoadNetwork (shards with dataset=None)
NetworkFactory = Callable[[ShardSpec], RoadNetwork]


class ShardOverloaded(RuntimeError):
    """Every replica of a shard is at its in-flight admission bound."""

    def __init__(self, shard: str, limit: int, replicas: int) -> None:
        super().__init__(
            f"shard {shard!r} overloaded: {replicas} replica(s) at "
            f"max_inflight={limit}; request shed")
        self.shard = shard
        self.limit = limit
        self.replicas = replicas


def _default_network_factory(spec: ShardSpec) -> RoadNetwork:
    if spec.dataset is None:
        raise ValueError(
            f"shard {spec.name!r} has no dataset; pass a network_factory")
    return generate_city(get_spec(spec.dataset).city)


class Shard:
    """A lazily materialized, admission-controlled per-city recovery stack."""

    def __init__(self, spec: ShardSpec,
                 model_factory: Optional[ModelFactory] = None,
                 network_factory: Optional[NetworkFactory] = None,
                 serve_overrides: Optional[Dict[str, Any]] = None,
                 artifact_dir: Optional[str] = None) -> None:
        self.spec = spec
        self._model_factory = model_factory
        self._network_factory = network_factory or _default_network_factory
        self._serve_overrides = dict(serve_overrides or {})
        self._artifact_dir = artifact_dir
        # "built" | "loaded" after warm() when artifact_dir is set; the
        # elapsed seconds cover the whole materialization either way, so
        # operators can read the warm-start win off stats()/logs.
        self.artifact_source = ""
        self.artifact_seconds = 0.0
        self._lock = threading.RLock()
        # Serializes deploy/swap sequences (register → activate → evict)
        # without blocking request admission, which only needs _lock.
        self._deploy_lock = threading.Lock()
        self._network: Optional[RoadNetwork] = None
        self._registry: Optional[ModelRegistry] = None
        self._services: Optional[List[RecoveryService]] = None
        self._pool: Optional[WorkerPool] = None  # backend == "process"
        self._inflight: List[int] = [0] * spec.replicas
        self._rr = 0
        self.shed_count = 0
        self.deploy_count = 0
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def materialized(self) -> bool:
        with self._lock:
            return self._services is not None

    @property
    def network(self) -> RoadNetwork:
        self.warm()
        return self._network

    @property
    def registry(self) -> ModelRegistry:
        self.warm()
        return self._registry

    def serve_config(self) -> ServeConfig:
        """Ingest/batching config: dataset-derived where possible, so the
        serving constraint masks match what the shard's model trained with."""
        if self.spec.dataset is not None:
            return ServeConfig.for_spec(get_spec(self.spec.dataset),
                                        **self._serve_overrides)
        return ServeConfig(**self._serve_overrides)

    def warm(self) -> "Shard":
        """Materialize network, registry and replicas (idempotent).

        The first caller pays the build; concurrent callers block on the
        lock until the shard is ready — by construction a request is never
        half-served by a partially built shard.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError(f"shard {self.name!r} is closed")
            if self._services is not None:
                return self
            started = time.perf_counter()
            artifacts: Optional[CityArtifacts] = None
            network: Optional[RoadNetwork] = None
            if self._artifact_dir:
                path = self._artifact_path()
                if CityArtifacts.exists(path):
                    artifacts = CityArtifacts.load(path, mmap=True)
                    network = artifacts.network()
                    self.artifact_source = "loaded"
            if network is None:
                network = self._network_factory(self.spec)
            registry = ModelRegistry(network, artifacts=artifacts)
            if artifacts is not None and artifacts.has_model():
                # Warm start: the frozen model snapshot supersedes the
                # bundle/factory — same weights, zero-copy views.
                registry.register_artifact_model("default", activate=True)
            elif self.spec.bundle is not None:
                registry.register("default", self.spec.bundle, activate=True)
                registry.load("default")  # fail fast on a bad bundle
            elif self._model_factory is not None:
                model = self._model_factory(self.spec, network)
                model.eval()
                registry.add_loaded("default", model, activate=True)
            else:
                raise ValueError(
                    f"shard {self.name!r} has neither a bundle nor a "
                    "model_factory; nothing to serve")
            if self._artifact_dir and artifacts is None:
                # First boot: freeze this shard's city (structures + the
                # just-loaded model) so every later boot mmap-loads it.
                _, _, model = registry.active_ref()
                CityArtifacts.build(network, model=model).save(self._artifact_path())
                self.artifact_source = "built"
            config = self.serve_config()
            self._network = network
            self._registry = registry
            if self.spec.backend == "process":
                # Replicas become forked worker processes; the parent keeps
                # the registry purely for generation-tag bookkeeping (and,
                # on first boot, to freeze the artifacts the workers map).
                self._pool = WorkerPool(
                    self._worker_factory(network, registry, config),
                    workers=self.spec.replicas, label=self.name,
                    request_timeout=self.spec.worker_timeout or None)
                self._pool.start()
                self._services = []
            else:
                self._services = [
                    RecoveryService(registry, config, shard=self.name)
                    for _ in range(self.spec.replicas)]
            if self._artifact_dir:
                self.artifact_seconds = time.perf_counter() - started
            return self

    def _worker_factory(self, network: RoadNetwork, registry: ModelRegistry,
                        config: ServeConfig) -> WorkerFactory:
        """The closure each worker process runs post-fork to build its
        serving stack from scratch (fresh locks, fresh scheduler thread).

        With an artifact dir the child is fully independent: it mmap-loads
        the same frozen city, so N workers share one physical copy via the
        page cache.  Without one, the closure captures the parent's warmed
        network and the active model's arrays — fork shares those pages
        copy-on-write, and the child only rebuilds the cheap object shell
        around them.
        """
        shard_name = self.name
        if self._artifact_dir:
            # warm() guaranteed the directory exists (loaded or just built).
            path = self._artifact_path()

            def factory() -> RecoveryService:
                artifacts = CityArtifacts.load(path, mmap=True)
                worker_registry = ModelRegistry(artifacts=artifacts)
                worker_registry.register_artifact_model("default", activate=True)
                return RecoveryService(worker_registry, config, shard=shard_name)

            return factory

        _, _, model = registry.active_ref()
        state = model.state_dict()
        model_config = model.config
        road_cache = getattr(model.encoder, "_road_cache", None)
        x_road = road_cache.data if road_cache is not None else None

        def factory() -> RecoveryService:
            worker_registry = ModelRegistry(network)
            child = RNTrajRec(network, model_config,
                              grid=worker_registry._shared_grid(model_config))
            child.load_state_dict(state, copy=False)
            worker_registry.add_loaded("default", child, activate=True)
            if x_road is not None:
                # Installed after add_loaded's eval() — mode flips clear
                # the memo (see ModelRegistry.register_artifact_model).
                child.encoder._road_cache = Tensor(x_road)
            return RecoveryService(worker_registry, config, shard=shard_name)

        return factory

    def _artifact_path(self) -> str:
        return os.path.join(self._artifact_dir, self.spec.name)

    def artifact_info(self) -> Dict[str, Any]:
        """{"source": "built"|"loaded"|"", "seconds": float} for logs/stats."""
        with self._lock:
            return {"source": self.artifact_source,
                    "seconds": round(self.artifact_seconds, 3)}

    # ------------------------------------------------------------------
    def localize(self, request: RecoveryRequest) -> RecoveryRequest:
        """The request translated from the global frame into this city's
        local frame (shard origin ↦ the network's own coordinates)."""
        ox, oy = self.spec.origin
        if ox == 0.0 and oy == 0.0:
            return request
        return RecoveryRequest(
            xy=request.xy - np.array([ox, oy]), times=request.times,
            hour=request.hour, holiday=request.holiday,
            request_id=request.request_id,
        )

    def submit(self, request: RecoveryRequest) -> "Future[RecoveryResponse]":
        """Admit onto the least-recently-used non-saturated replica, or
        shed with :class:`ShardOverloaded`; ``request`` is global-frame.

        Admission is backend-agnostic: a process-backed shard bounds
        in-flight work per worker exactly like an in-process one bounds it
        per service; only the execution target differs.
        """
        self.warm()
        with self._lock:
            replica = self._pick_replica()
            if replica is None:
                self.shed_count += 1
                raise ShardOverloaded(self.name, self.spec.max_inflight,
                                      self.spec.replicas)
            self._inflight[replica] += 1
            pool = self._pool
            service = None if pool is not None else self._services[replica]

        def _release(_: Future) -> None:
            with self._lock:
                self._inflight[replica] -= 1

        try:
            if pool is not None:
                future = pool.submit_to(replica, self.localize(request))
            else:
                future = service.submit(self.localize(request))
        except Exception:
            _release(None)
            raise
        future.add_done_callback(_release)
        return future

    def decode_scheduler(self):
        """Replica 0's continuous decode scheduler (``None`` when the shard
        was configured with ``scheduler="microbatch"``).  The streaming
        affinity layer joins session suffix decodes to this slot table, so
        one shard's streaming and one-shot traffic share a ragged batch.

        Process-backed shards return ``None``: their decode slots live in
        other processes, so streaming sessions fall back to solo suffix
        decodes in this process (see docs/cluster.md, Execution backends).
        """
        self.warm()
        with self._lock:
            if self._pool is not None:
                return None
            return self._services[0].scheduler

    def _pick_replica(self) -> Optional[int]:
        """Round-robin over replicas with admission headroom (lock held)."""
        n = self.spec.replicas
        for step in range(n):
            candidate = (self._rr + step) % n
            if self._inflight[candidate] < self.spec.max_inflight:
                self._rr = (candidate + 1) % n
                return candidate
        return None

    # ------------------------------------------------------------------
    # Operations surface
    # ------------------------------------------------------------------
    def deploy(self, name: str, model_or_prefix, activate: bool = True) -> None:
        """Register a new model generation on this shard — a bundle prefix
        (str) or an in-memory eval model — optionally activating it.  All
        replicas share the registry, so one deploy reaches every replica;
        sibling shards are untouched.

        On activation, loaded generations other than the new one and its
        immediate predecessor are evicted, so a long-running shard under
        rolling deploys holds at most two resident models (the previous
        one stays warm for instant rollback; bundle-backed names beyond
        that reload lazily from disk).  In-flight batches keep their own
        model references and finish unharmed.
        """
        self.warm()
        with self._deploy_lock:
            # Serialized with other deploys/swaps: a concurrent deploy
            # could otherwise evict this not-yet-active registration (or
            # crash evicting a freshly activated one).
            previous = self._registry.active_name
            if isinstance(model_or_prefix, str):
                self._registry.register(name, model_or_prefix, activate=False)
            else:
                model_or_prefix.eval()
                self._registry.add_loaded(name, model_or_prefix, activate=False)
            if self._pool is not None:
                # The parent mirrors the registry ops without loading, so
                # its generation counter stays in lockstep with the
                # workers' — every ack tag must match the parent's tag.
                payload = self._deploy_payload(name, model_or_prefix, activate)
                if activate:
                    self._registry.activate_unloaded(name)
                    self._evict_stale(name, previous)
                acks = self._pool.deploy(payload)
                self._check_acks("deploy", acks)
            elif activate:
                self._registry.activate(name)
                self._evict_stale(name, previous)
        with self._lock:
            self.deploy_count += 1

    def _deploy_payload(self, name: str, model_or_prefix,
                        activate: bool) -> Dict[str, Any]:
        """What crosses the pipe for one deploy: a bundle path (workers
        load from disk), or the model's arrays + config (workers rebuild
        the object shell around them).  Never the network or grid."""
        if isinstance(model_or_prefix, str):
            return {"name": name, "activate": activate,
                    "prefix": model_or_prefix}
        road_cache = getattr(model_or_prefix.encoder, "_road_cache", None)
        return {"name": name, "activate": activate,
                "config": asdict(model_or_prefix.config),
                "state": model_or_prefix.state_dict(),
                "x_road": road_cache.data if road_cache is not None else None}

    def _evict_stale(self, name: str, previous: Optional[str]) -> None:
        for stale in self._registry.names():
            if stale not in (name, previous):
                self._registry.evict(stale)

    def _check_acks(self, op: str, acks: List[Dict[str, Any]]) -> None:
        """Every worker must ack with the parent's active generation tag;
        divergence (a failed apply, a worker serving a stale generation)
        is an operator-visible error, not a silent split-brain."""
        _, expected = self._registry.active_tag()
        bad = [ack for ack in acks
               if ack.get("error") or ack.get("model_tag") != expected]
        if bad:
            raise WorkerError(
                f"shard {self.name!r} {op} diverged on workers {bad}; "
                f"expected model_tag {expected!r}")

    def swap(self, name: str) -> None:
        """Hot-swap this shard's active model; in-flight work finishes on
        the old generation (see ``RecoveryService.swap_model``).  On a
        process backend the swap is broadcast worker by worker — each
        worker applies it atomically between requests and acks with the
        new tag."""
        self.warm()
        with self._deploy_lock:
            if self._pool is not None:
                self._registry.activate_unloaded(name)
                acks = self._pool.swap(name)
                self._check_acks("swap", acks)
            else:
                self._registry.activate(name)

    def active_model(self) -> Dict[str, str]:
        """{"model": active name, "model_tag": generation tag} (warm only)."""
        if not self.materialized:
            return {"model": "", "model_tag": ""}
        name, tag = self._registry.active_tag()
        return {"model": name, "model_tag": tag}

    # ------------------------------------------------------------------
    def stats(self, latencies: Optional[List[float]] = None) -> Dict[str, Any]:
        """Shard gauge snapshot plus rolled-up replica serving stats.

        ``latencies`` lets a caller that already snapshotted the replica
        reservoirs (the cluster rollup, which needs them for its own
        cross-shard percentiles) pass them in instead of copying every
        reservoir a second time.
        """
        with self._lock:
            payload: Dict[str, Any] = {
                "materialized": self._services is not None,
                "backend": self.spec.backend,
                "replicas": self.spec.replicas,
                "max_inflight": self.spec.max_inflight,
                "inflight": sum(self._inflight),
                "shed": self.shed_count,
                "deploys": self.deploy_count,
            }
            if self._artifact_dir:
                payload["artifacts"] = {"source": self.artifact_source,
                                        "seconds": round(self.artifact_seconds, 3)}
            services = list(self._services or ())
            pool = self._pool
        if pool is not None:
            payload.update(self.active_model())
            pool_stats = pool.stats()
            if latencies is None:
                latencies = pool.latencies()
            else:
                latencies = list(latencies)
            latencies.sort()
            requests = pool_stats["requests"]
            payload.update({
                "requests": requests,
                "cache_hits": pool_stats["cache_hits"],
                "cache_hit_rate": round(pool_stats["cache_hits"] / requests, 4)
                if requests else 0.0,
                "errors": pool_stats["errors"],
                "requests_by_model": pool_stats["requests_by_model"],
                "latency_ms_p50": round(
                    1000.0 * ServingTelemetry._percentile(latencies, 0.50), 3),
                "latency_ms_p99": round(
                    1000.0 * ServingTelemetry._percentile(latencies, 0.99), 3),
                "crashes": pool_stats["crashes"],
                "respawns": pool_stats["respawns"],
                "degraded": pool_stats["degraded"],
                "worker_stats": pool_stats["workers"],
            })
            return payload
        if not services:
            return payload

        payload.update(self.active_model())
        if latencies is None:
            latencies = []
            for service in services:
                latencies.extend(service.telemetry.latencies())
        else:
            latencies = list(latencies)
        requests = cache_hits = errors = 0
        by_model: Dict[str, int] = {}
        replica_stats = []
        engine_rollup: Dict[str, int] = {}
        for service in services:
            stats = service.stats()
            replica_stats.append(stats)
            requests += stats["requests"]
            cache_hits += stats["cache_hits"]
            errors += stats["errors"]
            for tag, count in stats["requests_by_model"].items():
                by_model[tag] = by_model.get(tag, 0) + count
            for gauge, value in stats.get("engine", {}).items():
                engine_rollup[gauge] = engine_rollup.get(gauge, 0) + value
        latencies.sort()
        if engine_rollup:
            payload["engine"] = engine_rollup
        payload.update({
            "requests": requests,
            "cache_hits": cache_hits,
            "cache_hit_rate": round(cache_hits / requests, 4) if requests else 0.0,
            "errors": errors,
            "requests_by_model": dict(sorted(by_model.items())),
            "latency_ms_p50": round(
                1000.0 * ServingTelemetry._percentile(latencies, 0.50), 3),
            "latency_ms_p99": round(
                1000.0 * ServingTelemetry._percentile(latencies, 0.99), 3),
            "replica_stats": replica_stats,
        })
        return payload

    def latencies(self) -> List[float]:
        """All replicas' latency observations (seconds), for cluster rollup."""
        with self._lock:
            services = list(self._services or ())
            pool = self._pool
        if pool is not None:
            return pool.latencies()
        out: List[float] = []
        for service in services:
            out.extend(service.telemetry.latencies())
        return out

    def worker_pids(self) -> List[int]:
        """Alive worker-process pids (empty for in-process shards) — the
        cluster folds them into its children-aware memory snapshot."""
        with self._lock:
            pool = self._pool
        return pool.pids() if pool is not None else []

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            services = list(self._services or ())
            pool = self._pool
        for service in services:
            service.close()
        if pool is not None:
            pool.close(drain=True)
