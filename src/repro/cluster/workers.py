"""Process-based replica workers: decode throughput past the GIL.

An in-process shard scales *latency overlap* with replica threads but
never *decode throughput*: every replica's kernel sweep runs under one
interpreter lock, and the PR 9 memory benchmark measured 4 thread
replicas at 0.91x the QPS of one (a GIL convoy).  This module moves the
replicas into long-lived **worker processes**:

* each worker builds its full serving stack (registry, cache, continuous
  scheduler) *fresh after fork*, so no thread or lock state crosses the
  process boundary;
* workers warm from the same ``CityArtifacts`` directory via
  ``CityArtifacts.load(mmap=True)`` — N processes mapping one archive
  share a single physical copy of the city through the page cache, so
  the memory story of PR 9 survives the move out-of-process (without
  artifacts, the fork itself shares the parent's warmed network and
  model arrays copy-on-write);
* requests and responses cross a ``multiprocessing`` pipe as
  **raw-numpy frames** — a one-byte kind tag, a fixed ``struct`` header
  and the arrays' own bytes; city state never crosses the pipe.
  Control traffic (ping / deploy / swap / close) is pickled, measured
  ~2-4x slower per message than the raw codec (see the ``ipc`` section
  of ``BENCH_cluster.json``) but runs off the hot path.

Lifecycle is the point, not an afterthought: a worker that dies
mid-request fails or retries exactly the futures it owned (typed
:class:`WorkerCrashed` / :class:`WorkerTimeout`, one sibling retry per
request), is respawned with its deploy/swap history replayed, and a pool
that keeps crashing degrades (:class:`BackendDegraded`) instead of
respawn-looping.  ``close(drain=True)`` lets queued work finish first.

The pool is deliberately *dumb about placement*: admission control,
shedding and round-robin stay in :class:`~repro.cluster.shard.Shard`,
which treats ``submit_to(index, ...)`` as the process twin of
``services[index].submit(...)``.
"""

from __future__ import annotations

import itertools
import os
import pickle
import struct
import threading
import time
import traceback
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Any, Callable, Dict, List, Optional, Tuple

import multiprocessing as mp

import numpy as np

from ..profile import proc_rss_mb
from ..serve.request import RecoveryRequest, RecoveryResponse, RequestError
from ..serve.service import RecoveryService
from ..serve.telemetry import ServingTelemetry
from ..trajectory.trajectory import MatchedTrajectory

#: worker_factory() -> RecoveryService, called once inside the forked child.
WorkerFactory = Callable[[], RecoveryService]


class WorkerError(RuntimeError):
    """Base class for process-backend failures."""


class WorkerCrashed(WorkerError):
    """A worker process died while owning this request or control call."""


class WorkerTimeout(WorkerError):
    """A request exceeded the pool's ``request_timeout``; the wedged
    worker was killed and respawned, and this future failed typed."""


class BackendDegraded(WorkerError):
    """The pool exhausted its respawn budget and refuses new work.

    Raised on submit instead of silently respawn-looping a worker that
    crashes deterministically (bad artifact dir, poisoned deploy); the
    shard stays up and reports ``degraded`` in stats so an operator can
    swap the backend or fix the cause and restart.
    """


# ----------------------------------------------------------------------
# Wire format: one-byte kind + struct header + raw array bytes.
# ----------------------------------------------------------------------
_REQUEST = 0x01   # parent -> worker: seq + one RecoveryRequest
_RESPONSE = 0x02  # worker -> parent: seq + one recovered trajectory
_ERROR = 0x03     # worker -> parent: seq + typed request failure
_CONTROL = 0x04   # parent -> worker: pickled (seq, op, payload)
_ACK = 0x05       # worker -> parent: pickled (seq, result_dict)

_REQ_HEADER = struct.Struct("<BQIiBH")      # kind, seq, n, hour, holiday, rid_len
_RESP_HEADER = struct.Struct("<BQIBHHH")    # kind, seq, n, cached, rid/model/tag lens


def encode_request(seq: int, request: RecoveryRequest) -> bytes:
    """seq + request as one raw frame (no pickle on the hot path)."""
    xy = np.ascontiguousarray(request.xy, dtype=np.float64)
    times = np.ascontiguousarray(request.times, dtype=np.float64)
    rid = request.request_id.encode("utf-8")
    header = _REQ_HEADER.pack(_REQUEST, seq, len(times), int(request.hour),
                              1 if request.holiday else 0, len(rid))
    return b"".join((header, rid, xy.tobytes(), times.tobytes()))


def decode_request(frame: bytes) -> Tuple[int, RecoveryRequest]:
    _, seq, n, hour, holiday, rid_len = _REQ_HEADER.unpack_from(frame)
    offset = _REQ_HEADER.size
    rid = frame[offset:offset + rid_len].decode("utf-8")
    offset += rid_len
    xy = np.frombuffer(frame, dtype=np.float64, count=2 * n,
                       offset=offset).reshape(n, 2)
    offset += 16 * n
    times = np.frombuffer(frame, dtype=np.float64, count=n, offset=offset)
    return seq, RecoveryRequest(xy=xy, times=times, hour=hour,
                                holiday=bool(holiday), request_id=rid)


def encode_response(seq: int, response: RecoveryResponse) -> bytes:
    trajectory = response.trajectory
    segments = np.ascontiguousarray(trajectory.segments, dtype=np.int64)
    ratios = np.ascontiguousarray(trajectory.ratios, dtype=np.float64)
    times = np.ascontiguousarray(trajectory.times, dtype=np.float64)
    rid = response.request_id.encode("utf-8")
    model = response.model.encode("utf-8")
    tag = response.model_tag.encode("utf-8")
    header = _RESP_HEADER.pack(_RESPONSE, seq, len(segments),
                               1 if response.cached else 0,
                               len(rid), len(model), len(tag))
    return b"".join((header, rid, model, tag,
                     segments.tobytes(), ratios.tobytes(), times.tobytes()))


def decode_response(frame: bytes, shard: str,
                    latency_ms: float) -> Tuple[int, RecoveryResponse]:
    """Rebuild the response; ``latency_ms`` is the parent-observed span
    (submit → frame decoded), which is what the cluster actually serves."""
    _, seq, n, cached, rid_len, model_len, tag_len = _RESP_HEADER.unpack_from(frame)
    offset = _RESP_HEADER.size
    rid = frame[offset:offset + rid_len].decode("utf-8")
    offset += rid_len
    model = frame[offset:offset + model_len].decode("utf-8")
    offset += model_len
    tag = frame[offset:offset + tag_len].decode("utf-8")
    offset += tag_len
    segments = np.frombuffer(frame, dtype=np.int64, count=n, offset=offset).copy()
    offset += 8 * n
    ratios = np.frombuffer(frame, dtype=np.float64, count=n, offset=offset).copy()
    offset += 8 * n
    times = np.frombuffer(frame, dtype=np.float64, count=n, offset=offset).copy()
    response = RecoveryResponse(
        request_id=rid, trajectory=MatchedTrajectory(segments, ratios, times),
        cached=bool(cached), latency_ms=latency_ms, model=model,
        model_tag=tag, shard=shard)
    return seq, response


def _encode_error(seq: int, exc: Exception) -> bytes:
    return bytes([_ERROR]) + pickle.dumps(
        (seq, type(exc).__name__, str(exc)), protocol=pickle.HIGHEST_PROTOCOL)


def _encode_control(seq: int, op: str, payload: Any) -> bytes:
    return bytes([_CONTROL]) + pickle.dumps(
        (seq, op, payload), protocol=pickle.HIGHEST_PROTOCOL)


def _encode_ack(seq: int, result: Dict[str, Any]) -> bytes:
    return bytes([_ACK]) + pickle.dumps(
        (seq, result), protocol=pickle.HIGHEST_PROTOCOL)


# ----------------------------------------------------------------------
# Child side
# ----------------------------------------------------------------------
def _apply_deploy(service: RecoveryService, payload: Dict[str, Any]) -> None:
    """Mirror ``Shard.deploy`` inside the worker: register the new
    generation, optionally activate it and evict all but it and its
    immediate predecessor.  The parent runs the same registry ops in
    lockstep, so generation tags agree on both sides."""
    from ..core.config import RNTrajRecConfig
    from ..core.model import RNTrajRec
    from ..nn.tensor import Tensor

    registry = service.registry
    name = payload["name"]
    previous = registry.active_name
    if "prefix" in payload:
        registry.register(name, payload["prefix"], activate=False)
    else:
        config = RNTrajRecConfig(**payload["config"])
        model = RNTrajRec(registry.network, config,
                          grid=registry._shared_grid(config))
        model.load_state_dict(payload["state"], copy=False)
        registry.add_loaded(name, model, activate=False)
        x_road = payload.get("x_road")
        if x_road is not None:
            model.encoder._road_cache = Tensor(x_road)
    if payload.get("activate", True):
        registry.activate(name)
        for stale in registry.names():
            if stale not in (name, previous):
                registry.evict(stale)


def _worker_main(conn, factory: WorkerFactory) -> None:
    """The worker process: warm once, then a synchronous recv→serve→send
    loop.  One request decodes at a time, so a swap applied between two
    requests is atomic — no request is ever served by a half-swapped
    worker — and parallelism comes from running N workers."""
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent owns shutdown
    try:
        service = factory()
    except Exception:
        traceback.print_exc()
        conn.close()
        return
    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                break
            kind = frame[0]
            if kind == _REQUEST:
                seq, request = decode_request(frame)
                try:
                    response = service.recover(request)
                except Exception as exc:
                    reply = _encode_error(seq, exc)
                else:
                    reply = encode_response(seq, response)
                try:
                    conn.send_bytes(reply)
                except (BrokenPipeError, OSError):
                    break
            elif kind == _CONTROL:
                seq, op, payload = pickle.loads(frame[1:])
                try:
                    if op == "ping":
                        result = {"pid": os.getpid()}
                    elif op == "deploy":
                        _apply_deploy(service, payload)
                        result = {}
                    elif op == "swap":
                        service.swap_model(payload)
                        result = {}
                    elif op == "close":
                        result = {"pid": os.getpid()}
                    else:
                        raise ValueError(f"unknown control op {op!r}")
                    if op != "close":
                        name, tag = service.registry.active_tag()
                        result.update({"model": name, "model_tag": tag})
                except Exception as exc:
                    result = {"error": f"{type(exc).__name__}: {exc}"}
                try:
                    conn.send_bytes(_encode_ack(seq, result))
                except (BrokenPipeError, OSError):
                    break
                if op == "close":
                    break
    finally:
        try:
            service.close()
        finally:
            conn.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Pending:
    """One in-flight request: its future, its encoded frame (kept so a
    crash can replay it on a sibling), and its timeout bookkeeping."""

    __slots__ = ("future", "frame", "start", "sent_at", "attempts", "timed_out")

    def __init__(self, frame: bytes) -> None:
        self.future: "Future[RecoveryResponse]" = Future()
        self.future.set_running_or_notify_cancel()
        self.frame = frame
        self.start = time.perf_counter()
        self.sent_at = self.start
        self.attempts = 0
        self.timed_out = False


class _Worker:
    """One slot's live process + pipe + per-slot parent bookkeeping."""

    __slots__ = ("index", "process", "conn", "pending", "send_lock",
                 "reader", "alive", "closing")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.pending: Dict[int, _Pending] = {}
        self.send_lock = threading.Lock()
        self.reader: Optional[threading.Thread] = None
        self.alive = True
        self.closing = False


class WorkerPool:
    """N long-lived worker processes serving one shard's decode traffic.

    ``factory`` runs inside each forked child and must return a fully
    warmed :class:`~repro.serve.RecoveryService`; everything mutable
    (locks, scheduler threads, caches) is therefore born post-fork.
    Telemetry is parent-side — one :class:`ServingTelemetry` per slot,
    recorded as responses arrive, so ``stats()`` never blocks behind a
    worker's in-progress decode — and latencies are parent-observed
    (submit → response decoded), i.e. they include the IPC cost the
    cluster actually pays.
    """

    def __init__(self, factory: WorkerFactory, workers: int, label: str = "",
                 max_respawns: int = 3,
                 request_timeout: Optional[float] = None) -> None:
        if workers < 1:
            raise ValueError("a worker pool needs at least one worker")
        self._factory = factory
        self._label = label
        self._max_respawns = int(max_respawns)
        self._request_timeout = request_timeout
        self._ctx = mp.get_context("fork")  # Linux; children re-init their stacks
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._workers: List[Optional[_Worker]] = [None] * workers
        self._telemetry = [ServingTelemetry() for _ in range(workers)]
        self._acks: Dict[int, Tuple[_Worker, "Future[Dict[str, Any]]"]] = {}
        # Every deploy/swap ever broadcast, in order: a respawned worker
        # replays it so a fresh process converges to the pool's current
        # model state (rolling evictions keep replay memory bounded).
        self._log: List[Tuple[str, Any]] = []
        self.crash_count = 0
        self.respawns = 0
        self.degraded = False
        self._closed = False
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        with self._lock:
            if self._started:
                return self
            self._started = True
            spawned = [self._spawn_locked(index)
                       for index in range(len(self._workers))]
        for worker, log in spawned:
            self._replay_and_release(worker, log)
        if self._request_timeout is not None:
            watchdog = threading.Thread(
                target=self._watch_loop, daemon=True,
                name=f"{self._label or 'pool'}-watchdog")
            watchdog.start()
        return self

    def _spawn_locked(self, index: int) -> Tuple[_Worker, List[Tuple[str, Any]]]:
        """Fork a worker into ``index`` (pool lock held); returns the new
        slot and the control-log snapshot the caller must replay.

        The new slot's ``send_lock`` is returned **held**: the worker is
        already visible to submitters, and nothing may send it a request
        until :meth:`_replay_and_release` has queued the deploy/swap
        history — otherwise a retried request could decode under a stale
        generation.
        """
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, self._factory),
            name=f"{self._label or 'pool'}-worker-{index}", daemon=True)
        process.start()
        child_conn.close()  # the child's end lives only in the child
        worker = _Worker(index, process, parent_conn)
        worker.send_lock.acquire()  # released by _replay_and_release
        self._workers[index] = worker
        worker.reader = threading.Thread(
            target=self._read_loop, args=(worker,), daemon=True,
            name=f"{self._label or 'pool'}-reader-{index}")
        worker.reader.start()
        return worker, list(self._log)

    def _replay_and_release(self, worker: _Worker,
                            log: List[Tuple[str, Any]]) -> None:
        """Queue the deploy/swap history ahead of any request traffic,
        then open the slot for sends (acks are registered, never awaited).
        Must not hold the pool lock: a large deploy payload can block on
        the pipe until the still-warming child starts reading."""
        try:
            for op, payload in log:
                seq = next(self._seq)
                with self._lock:
                    self._acks[seq] = (worker, Future())
                try:
                    worker.conn.send_bytes(_encode_control(seq, op, payload))
                except (BrokenPipeError, OSError):
                    break
        finally:
            worker.send_lock.release()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit_to(self, index: int,
                  request: RecoveryRequest) -> "Future[RecoveryResponse]":
        """The process twin of ``services[index].submit(request)``.

        The caller (the shard) owns placement and admission; this only
        redirects to an alive sibling when slot ``index`` is mid-respawn.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError(f"worker pool {self._label!r} is closed")
            if self.degraded:
                raise BackendDegraded(
                    f"pool {self._label!r} degraded after {self.crash_count} "
                    f"worker crashes (respawn budget {self._max_respawns})")
            worker = self._alive_worker_locked(index)
            if worker is None:
                raise BackendDegraded(
                    f"pool {self._label!r} has no alive workers")
            seq = next(self._seq)
        pending = _Pending(encode_request(seq, request))
        self._dispatch(worker, seq, pending)
        return pending.future

    def _alive_worker_locked(self, index: int) -> Optional[_Worker]:
        worker = self._workers[index]
        if worker is not None and worker.alive:
            return worker
        return next((w for w in self._workers if w is not None and w.alive),
                    None)

    def _dispatch(self, worker: _Worker, seq: int, pending: _Pending) -> None:
        with self._lock:
            worker.pending[seq] = pending
            pending.sent_at = time.perf_counter()
        try:
            with worker.send_lock:
                worker.conn.send_bytes(pending.frame)
        except (BrokenPipeError, OSError):
            # The pipe broke under us (crash detected concurrently).  If
            # the reader's exit handler already drained this pending it
            # owns the outcome; otherwise fail/retry it here.
            with self._lock:
                still_ours = worker.pending.pop(seq, None)
            if still_ours is not None:
                self._retry_or_fail(seq, still_ours, worker)

    def _retry_or_fail(self, seq: int, pending: _Pending,
                       dead: _Worker) -> None:
        """Crash policy for one in-flight request: one sibling retry for
        requests the worker merely *happened* to own, a typed failure for
        timeouts (the request itself is implicated) and second crashes."""
        if not pending.timed_out and pending.attempts < 1:
            pending.attempts += 1
            with self._lock:
                sibling = None if self._closed else self._alive_worker_locked(
                    dead.index)
            if sibling is not None and sibling is not dead:
                self._dispatch(sibling, seq, pending)
                return
        self._telemetry[dead.index].record_error()
        if pending.timed_out:
            pending.future.set_exception(WorkerTimeout(
                f"request exceeded request_timeout="
                f"{self._request_timeout}s on worker {dead.index} "
                f"of pool {self._label!r}; worker killed"))
        else:
            pending.future.set_exception(WorkerCrashed(
                f"worker {dead.index} of pool {self._label!r} died "
                f"mid-request (pid {dead.process.pid})"))

    # ------------------------------------------------------------------
    # Reader / lifecycle
    # ------------------------------------------------------------------
    def _read_loop(self, worker: _Worker) -> None:
        telemetry = self._telemetry[worker.index]
        while True:
            try:
                frame = worker.conn.recv_bytes()
            except (EOFError, OSError):
                break
            kind = frame[0]
            if kind == _RESPONSE:
                seq = _RESP_HEADER.unpack_from(frame)[1]
                with self._lock:
                    pending = worker.pending.pop(seq, None)
                if pending is None:
                    continue
                elapsed = time.perf_counter() - pending.start
                _, response = decode_response(frame, shard=self._label,
                                              latency_ms=1000.0 * elapsed)
                telemetry.record_request(elapsed, cache_hit=response.cached,
                                         model_tag=response.model_tag)
                pending.future.set_result(response)
            elif kind == _ERROR:
                seq, type_name, message = pickle.loads(frame[1:])
                with self._lock:
                    pending = worker.pending.pop(seq, None)
                if pending is None:
                    continue
                telemetry.record_error()
                if type_name in ("RequestError", "ValueError"):
                    pending.future.set_exception(RequestError(message))
                else:
                    pending.future.set_exception(
                        WorkerError(f"{type_name}: {message}"))
            elif kind == _ACK:
                seq, result = pickle.loads(frame[1:])
                with self._lock:
                    entry = self._acks.pop(seq, None)
                if entry is not None:
                    entry[1].set_result(result)
        self._on_worker_exit(worker)

    def _on_worker_exit(self, worker: _Worker) -> None:
        """The reader saw EOF: crash or shutdown.  Runs entirely in the
        dead worker's reader thread, so respawn and future resolution are
        naturally serialized per slot."""
        with self._lock:
            worker.alive = False
            shutting_down = self._closed or worker.closing
            pendings = dict(worker.pending)
            worker.pending.clear()
            orphan_acks = []
            for seq, entry in list(self._acks.items()):
                if entry[0] is worker:
                    del self._acks[seq]
                    orphan_acks.append(entry[1])
            replacement = None
            log: List[Tuple[str, Any]] = []
            if not shutting_down:
                self.crash_count += 1
                if self.respawns < self._max_respawns:
                    self.respawns += 1
                    replacement, log = self._spawn_locked(worker.index)
                else:
                    self.degraded = True
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=5.0)
        if replacement is not None:
            self._replay_and_release(replacement, log)
        for waiter in orphan_acks:
            waiter.set_exception(WorkerCrashed(
                f"worker {worker.index} of pool {self._label!r} died "
                "before acking"))
        for seq, pending in pendings.items():
            if shutting_down:
                pending.future.set_exception(WorkerCrashed(
                    f"pool {self._label!r} closed with the request in flight"))
            else:
                self._retry_or_fail(seq, pending, worker)

    def _watch_loop(self) -> None:
        interval = max(0.02, float(self._request_timeout) / 4.0)
        while not self._closed:
            time.sleep(interval)
            now = time.perf_counter()
            doomed: List[_Worker] = []
            with self._lock:
                for worker in self._workers:
                    if worker is None or not worker.alive:
                        continue
                    overdue = [p for p in worker.pending.values()
                               if not p.timed_out
                               and now - p.sent_at > self._request_timeout]
                    if overdue:
                        for pending in overdue:
                            pending.timed_out = True
                        doomed.append(worker)
            for worker in doomed:
                # SIGKILL the wedged worker; its reader's exit handler
                # turns the marked futures into WorkerTimeout, retries
                # innocent queued siblings, and respawns the slot.
                worker.process.kill()

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------
    def _control(self, worker: _Worker, op: str, payload: Any,
                 timeout: float) -> Dict[str, Any]:
        waiter: "Future[Dict[str, Any]]" = Future()
        seq = next(self._seq)
        with self._lock:
            self._acks[seq] = (worker, waiter)
        try:
            with worker.send_lock:
                worker.conn.send_bytes(_encode_control(seq, op, payload))
        except (BrokenPipeError, OSError):
            with self._lock:
                self._acks.pop(seq, None)
            raise WorkerCrashed(
                f"worker {worker.index} pipe broken sending {op!r}")
        try:
            result = waiter.result(timeout=timeout)
        except FutureTimeout:
            with self._lock:
                self._acks.pop(seq, None)
            worker.process.kill()  # wedged; the exit handler respawns it
            raise WorkerTimeout(
                f"worker {worker.index} did not ack {op!r} within {timeout}s; "
                "killed for respawn")
        if "error" in result:
            raise WorkerError(
                f"worker {worker.index} rejected {op!r}: {result['error']}")
        return result

    def _broadcast(self, op: str, payload: Any,
                   timeout: float) -> List[Dict[str, Any]]:
        """Apply a control op worker by worker (a *rolling* broadcast: at
        any instant every worker is fully on the old or fully on the new
        generation).  A worker that crashes or wedges mid-apply is killed
        and converges via control-log replay on respawn."""
        acks: List[Dict[str, Any]] = []
        with self._lock:
            workers = [w for w in self._workers if w is not None and w.alive]
        for worker in workers:
            try:
                result = dict(self._control(worker, op, payload, timeout))
            except WorkerError as exc:
                result = {"error": str(exc)}
            result["index"] = worker.index
            acks.append(result)
        return acks

    def ping(self, timeout: float = 60.0) -> List[Dict[str, Any]]:
        """Health check: every alive worker's pid and active model tag.
        Also the pool's readiness barrier — a worker acks only once its
        factory has finished warming."""
        return self._broadcast("ping", None, timeout)

    def deploy(self, payload: Dict[str, Any],
               timeout: float = 120.0) -> List[Dict[str, Any]]:
        """Broadcast one model deploy (see ``Shard.deploy`` for payload
        construction); logged first so respawned workers replay it."""
        with self._lock:
            self._log.append(("deploy", payload))
        return self._broadcast("deploy", payload, timeout)

    def swap(self, name: str, timeout: float = 120.0) -> List[Dict[str, Any]]:
        with self._lock:
            self._log.append(("swap", name))
        return self._broadcast("swap", name, timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pids(self) -> List[int]:
        with self._lock:
            return [w.process.pid for w in self._workers
                    if w is not None and w.alive and w.process.pid]

    def latencies(self) -> List[float]:
        out: List[float] = []
        for telemetry in self._telemetry:
            out.extend(telemetry.latencies())
        return out

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            workers = [w for w in self._workers if w is not None]
            payload: Dict[str, Any] = {
                "backend": "process",
                "crashes": self.crash_count,
                "respawns": self.respawns,
                "max_respawns": self._max_respawns,
                "degraded": self.degraded,
            }
            inflight = {w.index: len(w.pending) for w in workers}
        requests = cache_hits = errors = 0
        by_model: Dict[str, int] = {}
        rows: List[Dict[str, Any]] = []
        for worker in workers:
            stats = self._telemetry[worker.index].stats()
            requests += stats["requests"]
            cache_hits += stats["cache_hits"]
            errors += stats["errors"]
            for tag, count in stats["requests_by_model"].items():
                by_model[tag] = by_model.get(tag, 0) + count
            rows.append({
                "index": worker.index,
                "pid": worker.process.pid,
                "alive": worker.alive,
                "inflight": inflight[worker.index],
                "requests": stats["requests"],
                "errors": stats["errors"],
                "cache_hits": stats["cache_hits"],
                "latency_ms_p50": stats["latency_ms_p50"],
                "latency_ms_p95": stats["latency_ms_p95"],
                "requests_by_model": stats["requests_by_model"],
                # The worker's own VmRSS (the parent's figure would count
                # every shared page N times); 0.0 once it is gone.
                "rss_mb": proc_rss_mb(worker.process.pid) if worker.alive else 0.0,
            })
        payload.update({
            "requests": requests,
            "cache_hits": cache_hits,
            "errors": errors,
            "requests_by_model": dict(sorted(by_model.items())),
            "workers": rows,
        })
        return payload

    # ------------------------------------------------------------------
    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool.  With ``drain`` every already-queued request is
        served before the worker exits (the close frame queues *behind*
        them in the pipe); without it workers are killed and in-flight
        futures fail with :class:`WorkerCrashed`."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = [w for w in self._workers if w is not None]
            for worker in workers:
                worker.closing = True
        deadline = time.monotonic() + timeout
        for worker in workers:
            if not worker.alive:
                continue
            if drain:
                try:
                    with worker.send_lock:
                        worker.conn.send_bytes(
                            _encode_control(next(self._seq), "close", None))
                except (BrokenPipeError, OSError):
                    pass
            else:
                worker.process.kill()
        for worker in workers:
            worker.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            reader = worker.reader
            if reader is not None and reader is not threading.current_thread():
                reader.join(timeout=max(0.1, deadline - time.monotonic()))
            try:
                worker.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
