"""`RecoveryCluster` — many per-city recovery shards behind one front door.

The single-city :class:`~repro.serve.RecoveryService` pins one road
network, one model registry and one scheduler.  The cluster composes many
of them: a :class:`~repro.cluster.router.ShardRouter` resolves each
incoming global-frame trace to the shard owning its region, the shard
localizes the trace into its city frame, admits it (or sheds under
overload), and the response comes back stamped with the shard name and
the model generation that produced it.

Cluster-only semantics:

* traces no shard fully owns are **dead-lettered** (``outside`` /
  ``straddle``), never served by the wrong city's model;
* ``recover_many`` returns per-request :class:`ClusterResult` statuses —
  heavy traffic with a few shed or unroutable requests is the normal
  case, not an exception;
* ``stats()`` rolls routing counters, per-shard serving telemetry (true
  percentiles across replicas) and — when enabled — the process-wide
  :mod:`repro.profile` section registry into one JSON-ready snapshot;
* one city's model can be re-deployed (``deploy_model`` /
  ``swap_model``) without touching sibling shards, their caches, or
  their in-flight work.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from .. import profile
from ..serve.request import RecoveryRequest, RecoveryResponse
from ..serve.telemetry import ServingTelemetry
from .router import RouteError, ShardRouter
from .shard import ModelFactory, NetworkFactory, Shard, ShardOverloaded
from .shardmap import ShardMap
from .telemetry import ClusterTelemetry


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one request in a bulk ``recover_many`` call."""

    request_id: str
    status: str                # "ok" | "shed" | "unroutable" | "error"
    shard: str = ""
    response: Optional[RecoveryResponse] = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _failed(exc: Exception) -> "Future[RecoveryResponse]":
    future: "Future[RecoveryResponse]" = Future()
    future.set_running_or_notify_cancel()
    future.set_exception(exc)
    return future


class RecoveryCluster:
    """Sharded multi-city recovery serving over a :class:`ShardMap`."""

    def __init__(self, shard_map: ShardMap,
                 model_factory: Optional[ModelFactory] = None,
                 network_factory: Optional[NetworkFactory] = None,
                 eager: bool = False,
                 artifact_dir: Optional[str] = None) -> None:
        self.shard_map = shard_map
        self.artifact_dir = artifact_dir
        self.shards: List[Shard] = [
            Shard(spec, model_factory=model_factory,
                  network_factory=network_factory,
                  serve_overrides=shard_map.serve,
                  artifact_dir=artifact_dir)
            for spec in shard_map
        ]
        self._by_name: Dict[str, Shard] = {s.name: s for s in self.shards}
        self.router = ShardRouter(
            [spec.resolved_bbox() for spec in shard_map],
            cell_size=shard_map.cell_size,
        )
        self.telemetry = ClusterTelemetry(shard_map.dead_letter_capacity)
        self._closed = False
        if eager:
            self.warm()

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "RecoveryCluster":
        """A cluster from a TOML/JSON shard-map file (see docs/cluster.md)."""
        from .shardmap import load_shard_map

        return cls(load_shard_map(path), **kwargs)

    # ------------------------------------------------------------------
    # Request surface (global coordinate frame)
    # ------------------------------------------------------------------
    def shard_for(self, request: RecoveryRequest) -> Shard:
        """The shard owning every fix of the request (RouteError if none)."""
        return self.shards[self.router.shard_of_points(request.xy)]

    def submit(self, request: RecoveryRequest) -> "Future[RecoveryResponse]":
        """Route and asynchronously recover one global-frame request.

        The future fails with :class:`RouteError` (unroutable — also
        dead-lettered), :class:`ShardOverloaded` (shed), or whatever the
        owning service raised; it never blocks on the model.
        """
        if self._closed:
            raise RuntimeError("RecoveryCluster is closed")
        try:
            shard = self.shard_for(request)
        except RouteError as exc:
            self.telemetry.record_unroutable(exc.reason, request.request_id,
                                             exc.detail)
            return _failed(exc)
        except Exception as exc:  # malformed xy etc.
            self.telemetry.record_error()
            return _failed(exc)
        try:
            future = shard.submit(request)
        except ShardOverloaded as exc:
            self.telemetry.record_shed(shard.name, request.request_id, str(exc))
            return _failed(exc)
        except Exception as exc:
            self.telemetry.record_error()
            return _failed(exc)
        self.telemetry.record_routed(shard.name)
        return future

    def recover(self, request: RecoveryRequest,
                timeout: Optional[float] = None) -> RecoveryResponse:
        """Blocking single-request recovery (raises on shed/unroutable)."""
        return self.submit(request).result(timeout=timeout)

    def recover_many(self, requests: Sequence[RecoveryRequest],
                     timeout: Optional[float] = None) -> List[ClusterResult]:
        """Submit everything up front (per-shard micro-batching coalesces
        concurrent peers), then gather per-request outcomes."""
        futures = [self.submit(request) for request in requests]
        results: List[ClusterResult] = []
        for request, future in zip(requests, futures):
            try:
                response = future.result(timeout=timeout)
            except RouteError as exc:
                results.append(ClusterResult(request.request_id, "unroutable",
                                             error=str(exc)))
            except ShardOverloaded as exc:
                results.append(ClusterResult(request.request_id, "shed",
                                             shard=exc.shard, error=str(exc)))
            except Exception as exc:
                results.append(ClusterResult(request.request_id, "error",
                                             error=str(exc)))
            else:
                results.append(ClusterResult(request.request_id, "ok",
                                             shard=response.shard,
                                             response=response))
        return results

    # ------------------------------------------------------------------
    # Operations surface
    # ------------------------------------------------------------------
    def shard(self, name: str) -> Shard:
        if name not in self._by_name:
            raise KeyError(f"unknown shard {name!r}; have {sorted(self._by_name)}")
        return self._by_name[name]

    def warm(self, names: Optional[Sequence[str]] = None) -> None:
        """Materialize the named shards (default: all) ahead of traffic."""
        for name in (names if names is not None else self._by_name):
            self.shard(name).warm()

    def deploy_model(self, shard_name: str, model_name: str, model_or_prefix,
                     activate: bool = True) -> Dict[str, str]:
        """Deploy a new model generation onto ONE shard (hot swap when
        ``activate``); siblings keep serving their generations and caches."""
        shard = self.shard(shard_name)
        shard.deploy(model_name, model_or_prefix, activate=activate)
        return shard.active_model()

    def swap_model(self, shard_name: str, model_name: str) -> Dict[str, str]:
        """Activate an already-registered model on one shard."""
        shard = self.shard(shard_name)
        shard.swap(model_name)
        return shard.active_model()

    def dead_letters(self) -> List[Dict[str, Any]]:
        """Recently refused traces: unroutable rejections and sheds."""
        return self.telemetry.dead_letters()

    def stats(self) -> Dict[str, Any]:
        """Rolled-up snapshot: cluster aggregates, router counters,
        per-shard serving stats, and profiler sections when enabled."""
        # Snapshot every replica's latency reservoir exactly once; the
        # per-shard stats reuse the snapshot for their own percentiles.
        shard_latencies = {shard.name: shard.latencies() for shard in self.shards}
        shard_stats = {
            shard.name: shard.stats(latencies=shard_latencies[shard.name])
            for shard in self.shards
        }
        latencies: List[float] = []
        for values in shard_latencies.values():
            latencies.extend(values)
        latencies.sort()
        requests = sum(s.get("requests", 0) for s in shard_stats.values())
        cache_hits = sum(s.get("cache_hits", 0) for s in shard_stats.values())
        router = self.telemetry.stats()
        payload: Dict[str, Any] = {
            "cluster": {
                "shards": len(self.shards),
                "materialized": sum(
                    1 for s in shard_stats.values() if s["materialized"]),
                "requests": requests,
                "cache_hits": cache_hits,
                "shed": router["shed"],
                "unroutable": router["unroutable"],
                "latency_ms_p50": round(
                    1000.0 * ServingTelemetry._percentile(latencies, 0.50), 3),
                "latency_ms_p99": round(
                    1000.0 * ServingTelemetry._percentile(latencies, 0.99), 3),
            },
            "router": router,
            "shards": shard_stats,
            # Process RSS joins latency/throughput as a first-class metric:
            # the memory-scaling benchmark and operators both read it here.
            # Process-backed shards contribute their worker pids, so the
            # figure covers the whole serving tree (with PSS counting
            # pages the workers share — mmap'd artifacts — only once).
            "memory": profile.memory_snapshot(pids=[
                pid for shard in self.shards for pid in shard.worker_pids()]),
        }
        if profile.PROFILER.enabled:
            payload["profile"] = profile.stats()
        return payload

    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for shard in self.shards:
                shard.close()

    def __enter__(self) -> "RecoveryCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
