"""Training configuration and per-epoch result records.

:class:`TrainConfig` is a superset of the seed trainer's knobs: the
original fields keep their names and defaults (the experiment harness
fingerprints ``vars(config)``, so renames would silently invalidate
nothing — they would *change* every cache key), plus LR-schedule and
gradient-accumulation controls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

SCHEDULE_NAMES = ("constant", "warmup", "step", "cosine")


@dataclass
class TrainConfig:
    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    teacher_forcing_ratio: float = 0.5
    seed: int = 0
    log_every: int = 0            # 0 disables step logging
    validate: bool = True
    # --- LR schedule (pure functions of the epoch index: resume-safe) ---
    schedule: str = "constant"    # one of SCHEDULE_NAMES
    warmup_epochs: int = 0        # linear ramp before the schedule proper
    lr_step_size: int = 10        # `step`: decay every this many epochs
    lr_gamma: float = 0.5         # `step`: multiplicative decay factor
    min_lr: float = 0.0           # `cosine`: floor the anneal ends at
    # --- gradient accumulation (optimizer step every N micro-batches) ---
    accumulate_steps: int = 1

    def __post_init__(self) -> None:
        if self.schedule not in SCHEDULE_NAMES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; expected one of {SCHEDULE_NAMES}")
        if self.accumulate_steps < 1:
            raise ValueError("accumulate_steps must be >= 1")


@dataclass
class EpochStats:
    epoch: int
    loss: float
    id_loss: float
    rate_loss: float
    graph_loss: float
    val_accuracy: Optional[float]
    seconds: float
    lr: float = 0.0
    grad_norm: float = 0.0        # pre-clip norm of the last step in the epoch


@dataclass
class TrainResult:
    history: List[EpochStats] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.history[-1].loss if self.history else float("nan")

    @property
    def best_val_accuracy(self) -> float:
        accs = [e.val_accuracy for e in self.history if e.val_accuracy is not None]
        return max(accs) if accs else float("nan")
