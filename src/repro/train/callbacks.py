"""Callback/event pipeline driving the trainer's side effects.

The trainer itself only computes; everything observable — logging, early
stopping, best-model tracking, periodic checkpoints, custom metric hooks —
is a :class:`Callback`.  Events fire in registration order:

``on_train_begin`` → (``on_epoch_begin`` → ``on_step_end``* →
``on_epoch_end``)* → ``on_train_end``

Logging is quiet by default: :class:`LoggingCallback` writes to the
``repro.train`` :mod:`logging` logger (epoch summaries at INFO, step
records at DEBUG, or INFO every ``log_every`` steps), so nothing reaches
the console unless the host application configures logging —
:func:`repro.train.enable_console_logging` is the one-liner for CLIs.
"""

from __future__ import annotations

import copy
import logging
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from .config import EpochStats, TrainResult

logger = logging.getLogger("repro.train")


@dataclass(frozen=True)
class StepInfo:
    """One optimizer micro-step as seen by callbacks."""

    epoch: int
    step: int              # 0-based within the epoch
    global_step: int       # monotonic across epochs and resumes
    loss: float
    lr: float


class Callback:
    """Base class; override any subset of the hooks."""

    def on_train_begin(self, trainer) -> None: ...
    def on_epoch_begin(self, trainer, epoch: int) -> None: ...
    def on_step_end(self, trainer, info: StepInfo) -> None: ...
    def on_epoch_end(self, trainer, stats: EpochStats) -> None: ...
    def on_train_end(self, trainer, result: TrainResult) -> None: ...


class CallbackList(Callback):
    """Fan one event out to many callbacks, in order."""

    def __init__(self, callbacks) -> None:
        self.callbacks: List[Callback] = list(callbacks)

    def on_train_begin(self, trainer) -> None:
        for cb in self.callbacks:
            cb.on_train_begin(trainer)

    def on_epoch_begin(self, trainer, epoch: int) -> None:
        for cb in self.callbacks:
            cb.on_epoch_begin(trainer, epoch)

    def on_step_end(self, trainer, info: StepInfo) -> None:
        for cb in self.callbacks:
            cb.on_step_end(trainer, info)

    def on_epoch_end(self, trainer, stats: EpochStats) -> None:
        for cb in self.callbacks:
            cb.on_epoch_end(trainer, stats)

    def on_train_end(self, trainer, result: TrainResult) -> None:
        for cb in self.callbacks:
            cb.on_train_end(trainer, result)


class LoggingCallback(Callback):
    """Structured logging replacing the seed trainer's bare prints."""

    def __init__(self, log_every: int = 0) -> None:
        self.log_every = int(log_every)

    def on_step_end(self, trainer, info: StepInfo) -> None:
        if self.log_every and (info.step + 1) % self.log_every == 0:
            logger.info("epoch %d step %d: loss %.4f lr %.2e",
                        info.epoch, info.step + 1, info.loss, info.lr)
        else:
            logger.debug("epoch %d step %d: loss %.4f", info.epoch,
                         info.step + 1, info.loss)

    def on_epoch_end(self, trainer, stats: EpochStats) -> None:
        val = ("" if stats.val_accuracy is None
               else f" val_acc {stats.val_accuracy:.4f}")
        logger.info("epoch %d: loss %.4f (id %.4f rate %.4f graph %.4f)%s "
                    "lr %.2e %.1fs", stats.epoch, stats.loss, stats.id_loss,
                    stats.rate_loss, stats.graph_loss, val, stats.lr,
                    stats.seconds)


class ProgressCallback(Callback):
    """Adapter for the seed API's ``progress=`` epoch-stats function."""

    def __init__(self, fn: Callable[[EpochStats], None]) -> None:
        self.fn = fn

    def on_epoch_end(self, trainer, stats: EpochStats) -> None:
        self.fn(stats)


class LambdaCallback(Callback):
    """Ad-hoc metric hooks without a subclass."""

    def __init__(self,
                 on_epoch_end: Optional[Callable] = None,
                 on_step_end: Optional[Callable] = None,
                 on_train_begin: Optional[Callable] = None,
                 on_train_end: Optional[Callable] = None) -> None:
        self._epoch_end = on_epoch_end
        self._step_end = on_step_end
        self._train_begin = on_train_begin
        self._train_end = on_train_end

    def on_train_begin(self, trainer) -> None:
        if self._train_begin:
            self._train_begin(trainer)

    def on_step_end(self, trainer, info: StepInfo) -> None:
        if self._step_end:
            self._step_end(trainer, info)

    def on_epoch_end(self, trainer, stats: EpochStats) -> None:
        if self._epoch_end:
            self._epoch_end(trainer, stats)

    def on_train_end(self, trainer, result: TrainResult) -> None:
        if self._train_end:
            self._train_end(trainer, result)


def _monitor_value(stats: EpochStats, monitor: str) -> Optional[float]:
    if monitor == "loss":
        return stats.loss
    if monitor == "val_accuracy":
        return stats.val_accuracy
    raise ValueError(f"unknown monitor {monitor!r}; use 'loss' or 'val_accuracy'")


class EarlyStopping(Callback):
    """Stop when the monitored metric stops improving.

    ``monitor='loss'`` improves downward, ``'val_accuracy'`` upward.
    Epochs whose monitor is unavailable (no validation split) are ignored.
    """

    def __init__(self, monitor: str = "loss", patience: int = 3,
                 min_delta: float = 0.0) -> None:
        _monitor_value(EpochStats(0, 0, 0, 0, 0, None, 0), monitor)  # validate name
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best: float = math.inf if monitor == "loss" else -math.inf
        self.stale = 0
        self.stopped_epoch: Optional[int] = None

    def _improved(self, value: float) -> bool:
        if self.monitor == "loss":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_epoch_end(self, trainer, stats: EpochStats) -> None:
        value = _monitor_value(stats, self.monitor)
        if value is None or not np.isfinite(value):
            return
        if self._improved(value):
            self.best = value
            self.stale = 0
            return
        self.stale += 1
        if self.stale >= self.patience:
            self.stopped_epoch = stats.epoch
            trainer.stop_training = True
            logger.info("early stopping at epoch %d (%s stale for %d epochs; "
                        "best %.4f)", stats.epoch, self.monitor, self.stale,
                        self.best)


class BestModelTracker(Callback):
    """Keep (and optionally restore) the best epoch's model state."""

    def __init__(self, monitor: str = "val_accuracy",
                 restore_on_end: bool = False) -> None:
        _monitor_value(EpochStats(0, 0, 0, 0, 0, None, 0), monitor)
        self.monitor = monitor
        self.restore_on_end = restore_on_end
        self.best_value: float = -math.inf if monitor == "val_accuracy" else math.inf
        self.best_epoch: Optional[int] = None
        self.best_state: Optional[Dict[str, np.ndarray]] = None

    def _improved(self, value: float) -> bool:
        if self.monitor == "loss":
            return value < self.best_value
        return value > self.best_value

    def on_epoch_end(self, trainer, stats: EpochStats) -> None:
        value = _monitor_value(stats, self.monitor)
        if value is None or not np.isfinite(value) or not self._improved(value):
            return
        self.best_value = value
        self.best_epoch = stats.epoch
        self.best_state = copy.deepcopy(trainer.model.state_dict())

    def on_train_end(self, trainer, result: TrainResult) -> None:
        if self.restore_on_end and self.best_state is not None:
            trainer.model.load_state_dict(self.best_state)
            logger.info("restored best model from epoch %s (%s %.4f)",
                        self.best_epoch, self.monitor, self.best_value)

    def restore(self, model) -> None:
        """Explicitly load the tracked best state into ``model``."""
        if self.best_state is None:
            raise RuntimeError("no best state tracked yet")
        model.load_state_dict(self.best_state)


class CheckpointCallback(Callback):
    """Write the trainer's full :class:`~repro.train.TrainState` archive
    every ``every`` epochs (and always on train end), enabling exact
    resume after interruption."""

    def __init__(self, path: str, every: int = 1) -> None:
        self.path = path
        self.every = max(1, int(every))
        self.last_written: Optional[str] = None

    def on_epoch_end(self, trainer, stats: EpochStats) -> None:
        # The trainer bumps its epoch counter before this event, so the
        # archive records "stats.epoch completed, resume at the next one".
        if (stats.epoch + 1) % self.every == 0:
            self.last_written = trainer.save_state(self.path)
            logger.debug("checkpointed epoch %d to %s", stats.epoch,
                         self.last_written)

    def on_train_end(self, trainer, result: TrainResult) -> None:
        self.last_written = trainer.save_state(self.path)
