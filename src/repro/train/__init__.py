"""``repro.train`` — the production training subsystem.

Grown out of the seed loop in ``repro.core.train`` (which remains as a
deprecation shim re-exporting these names):

* :class:`Trainer` — Adam + teacher forcing, driven by a callback/event
  pipeline (:mod:`~repro.train.callbacks`): quiet-by-default logging,
  early stopping, best-model tracking, periodic checkpoints, ad-hoc
  metric hooks;
* :class:`TrainState` — exact-resume checkpointing: model params+buffers,
  optimizer moments/step, RNG streams and counters in one ``.npz``
  archive, with a bit-for-bit determinism guarantee (train N ≡ train k →
  resume → train N−k);
* :mod:`~repro.train.schedules` — ``warmup`` / ``step`` / ``cosine`` LR
  schedules as pure functions of the epoch, plus gradient accumulation;
* :class:`ParallelTrainer` — data-parallel gradient workers over the
  numpy backend (fork + pipes, shard-weighted gradient averaging);
* :func:`fit_and_bundle` / :func:`register_bundle` — the train→deploy
  bridge into :mod:`repro.serve` bundles and the cluster's hot-deploy
  endpoints.

See ``docs/training.md`` for the operator guide.
"""

from __future__ import annotations

import logging

from .callbacks import (
    BestModelTracker,
    Callback,
    CallbackList,
    CheckpointCallback,
    EarlyStopping,
    LambdaCallback,
    LoggingCallback,
    ProgressCallback,
    StepInfo,
)
from .config import SCHEDULE_NAMES, EpochStats, TrainConfig, TrainResult
from .parallel import ParallelTrainer, fork_available, shard_indices
from .pipeline import (
    BundleReport,
    fit_and_bundle,
    make_trainer,
    model_version,
    register_bundle,
)
from .schedules import (
    ConstantLR,
    CosineLR,
    LRSchedule,
    PiecewiseConstant,
    StepDecayLR,
    build_schedule,
)
from .state import TrainState
from .trainer import RecoveryModel, Trainer, quick_accuracy

__all__ = [
    "BestModelTracker",
    "BundleReport",
    "Callback",
    "CallbackList",
    "CheckpointCallback",
    "ConstantLR",
    "CosineLR",
    "EarlyStopping",
    "EpochStats",
    "LRSchedule",
    "LambdaCallback",
    "LoggingCallback",
    "ParallelTrainer",
    "PiecewiseConstant",
    "ProgressCallback",
    "RecoveryModel",
    "SCHEDULE_NAMES",
    "StepDecayLR",
    "StepInfo",
    "TrainConfig",
    "TrainResult",
    "TrainState",
    "Trainer",
    "build_schedule",
    "enable_console_logging",
    "fit_and_bundle",
    "fork_available",
    "make_trainer",
    "model_version",
    "quick_accuracy",
    "register_bundle",
    "shard_indices",
]


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the ``repro.train`` logger (idempotent).

    The trainer is quiet by default; CLIs call this to surface epoch/step
    records without configuring application-wide logging.
    """
    logger = logging.getLogger("repro.train")
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(name)s] %(message)s"))
        logger.addHandler(handler)
    return logger
