"""Data-parallel training over the numpy backend.

:class:`ParallelTrainer` keeps the serial trainer's semantics — identical
batch schedule, identical per-batch scheduled-sampling seed, identical
clip/step in the parent — and only changes how one batch's gradient is
produced: the batch's sample indices are sharded across ``num_workers``
forked **gradient workers**, each computes forward/backward on its shard,
and the parent averages the shard gradients weighted by shard size.

Worker protocol (``fork`` start method, one duplex pipe per worker):

* workers inherit the model and the training samples by fork at
  ``fit()`` start — no per-step pickling of either;
* per batch the parent broadcasts the flattened parameter vector, the
  flattened buffer vector (GraphNorm/BatchNorm running statistics), the
  shard's indices and the batch seed;
* each worker returns its shard's flattened gradient, updated buffers and
  loss components; the parent scatters the weighted average back into
  ``param.grad`` (adding, so gradient accumulation composes) and sets the
  buffers to the shard-size-weighted average.

Exactness: the id/rate losses are per-element means over equal-length
targets, so the weighted shard average equals the full-batch gradient up
to floating-point summation order — worker-count invariant to machine
epsilon (the test asserts ~1e-15 relative).  Two model features are
batch-coupled and therefore *approximate* under sharding, with the same
semantics PyTorch DDP ships for BatchNorm: GraphNorm normalizes with the
statistics of the nodes it sees (each shard's, not the full batch's;
running estimates are synced as the shard-size-weighted average), and the
graph classification loss normalizes by its shard's sub-graphs-with-hit
count.  Ablate both (``use_graph_norm=False``, ``use_graph_loss=False``)
for bit-exact parity with the serial trainer; with them on, the loss
trajectories track closely but not identically (the benchmark bounds the
divergence).  Dropout layers draw from per-process streams, so parallel
runs only match serial runs exactly when dropout is 0 (the repo's
standard small-CPU config).

On a single-core host the workers still produce correct gradients but no
wall-clock speedup; ``benchmarks/bench_training.py`` measures and gates
the ≥2x epoch-throughput target where the cores exist.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import profile
from ..trajectory.dataset import RecoverySample, make_batch
from .config import TrainConfig
from .trainer import Callback, RecoveryModel, Trainer

# Handed to forked children at pool construction; cleared immediately
# after the forks so the parent holds no stray reference.
_FORK_CONTEXT: Optional[tuple] = None


def fork_available() -> bool:
    return "fork" in mp.get_all_start_methods()


def shard_indices(indices: Sequence[int], num_shards: int) -> List[List[int]]:
    """Contiguous, balanced, possibly-empty-free split of a batch's
    indices: at most ``num_shards`` shards, sizes differing by <= 1."""
    shards = [list(part) for part in
              np.array_split(np.asarray(indices, dtype=np.int64), num_shards)]
    return [shard for shard in shards if shard]


def _param_vector(model) -> np.ndarray:
    return np.concatenate([p.data.ravel() for p in model.parameters()])


def _assign_param_vector(model, vector: np.ndarray) -> None:
    offset = 0
    for p in model.parameters():
        size = p.data.size
        p.data = vector[offset:offset + size].reshape(p.data.shape).copy()
        offset += size


def _buffer_vector(model) -> np.ndarray:
    values = [np.asarray(value, dtype=np.float64).ravel()
              for _, value in model.named_buffers()]
    return np.concatenate(values) if values else np.zeros(0)


def _assign_buffer_vector(model, vector: np.ndarray) -> None:
    offset = 0
    for _, owner, attr in model._buffer_owners():
        current = np.asarray(getattr(owner, attr))
        size = current.size
        object.__setattr__(
            owner, attr,
            vector[offset:offset + size].reshape(current.shape).copy())
        offset += size


def _grad_vector(model) -> np.ndarray:
    parts = []
    for p in model.parameters():
        grad = p.grad if p.grad is not None else np.zeros_like(p.data)
        parts.append(np.asarray(grad).ravel())
    return np.concatenate(parts)


def _add_grad_vector(model, vector: np.ndarray) -> None:
    offset = 0
    for p in model.parameters():
        size = p.data.size
        chunk = vector[offset:offset + size].reshape(p.data.shape)
        p.grad = chunk.copy() if p.grad is None else p.grad + chunk
        offset += size


def _worker_main(conn) -> None:
    """Gradient worker loop: lives in a forked child for one fit() call."""
    model, samples, teacher_forcing_ratio = _FORK_CONTEXT
    model.train()
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, indices, params, buffers, seed = message
            try:
                _assign_param_vector(model, params)
                if buffers.size:
                    _assign_buffer_vector(model, buffers)
                model.zero_grad()
                batch = make_batch([samples[i] for i in indices])
                breakdown = model.compute_loss(
                    batch, teacher_forcing_ratio=teacher_forcing_ratio,
                    rng=np.random.default_rng(seed))
                breakdown.total.backward()
                conn.send(("ok", len(indices), _grad_vector(model),
                           _buffer_vector(model), breakdown.total.item(),
                           breakdown.id_loss, breakdown.rate_loss,
                           breakdown.graph_loss))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class _GradientPool:
    """Parent-side handle on the forked gradient workers."""

    def __init__(self, model, samples: Sequence[RecoverySample],
                 num_workers: int, teacher_forcing_ratio: float) -> None:
        global _FORK_CONTEXT
        ctx = mp.get_context("fork")
        self._conns = []
        self._procs = []
        _FORK_CONTEXT = (model, list(samples), teacher_forcing_ratio)
        try:
            for _ in range(num_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(target=_worker_main, args=(child_conn,),
                                   daemon=True)
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        finally:
            _FORK_CONTEXT = None

    @property
    def num_workers(self) -> int:
        return len(self._conns)

    def batch_gradients(self, model, indices: Sequence[int], seed: int
                        ) -> Tuple[float, float, float, float]:
        """Scatter the batch, gather shard gradients, apply the weighted
        average into ``model`` (gradients add; buffers are replaced)."""
        shards = shard_indices(indices, self.num_workers)
        params = _param_vector(model)
        buffers = _buffer_vector(model)
        with profile.section("train.scatter"):
            for conn, shard in zip(self._conns, shards):
                conn.send(("grad", shard, params, buffers, seed))
        results = []
        with profile.section("train.gather"):
            for conn, _shard in zip(self._conns, shards):
                reply = conn.recv()
                if reply[0] == "error":
                    raise RuntimeError(f"gradient worker failed:\n{reply[1]}")
                results.append(reply[1:])

        total = sum(n for n, *_ in results)
        weights = [n / total for n, *_ in results]
        grad = np.zeros_like(params)
        for weight, (_, shard_grad, *_rest) in zip(weights, results):
            grad += weight * shard_grad
        _add_grad_vector(model, grad)
        if buffers.size:
            merged = np.zeros_like(buffers)
            for weight, (_, _g, shard_buffers, *_rest) in zip(weights, results):
                merged += weight * shard_buffers
            _assign_buffer_vector(model, merged)
        loss, id_loss, rate_loss, graph_loss = (
            float(sum(w * r[3 + k] for w, r in zip(weights, results)))
            for k in range(4))
        return loss, id_loss, rate_loss, graph_loss

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
        self._conns = []
        self._procs = []


class ParallelTrainer(Trainer):
    """The serial trainer with batch gradients sharded across forked
    workers.  Degrades to in-process computation when ``num_workers <= 1``
    or the platform lacks the ``fork`` start method."""

    def __init__(self, model: RecoveryModel, config: Optional[TrainConfig] = None,
                 num_workers: int = 4, callbacks: Sequence[Callback] = ()) -> None:
        super().__init__(model, config, callbacks=callbacks)
        self.num_workers = max(1, int(num_workers))
        self._pool: Optional[_GradientPool] = None

    def _setup(self, train_samples: Sequence[RecoverySample]) -> None:
        if self.num_workers > 1 and fork_available():
            self._pool = _GradientPool(self.model, train_samples,
                                       self.num_workers,
                                       self.config.teacher_forcing_ratio)

    def _teardown(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def _batch_gradients(self, samples, indices, seed: int
                         ) -> Tuple[float, float, float, float]:
        if self._pool is None:
            return super()._batch_gradients(samples, indices, seed)
        with profile.section("train.parallel_batch"):
            return self._pool.batch_gradients(self.model, indices, seed)
