"""The serial trainer: callback pipeline, schedules, exact resume.

Training semantics (shared with :class:`~repro.train.ParallelTrainer`,
which only overrides how one batch's gradient is produced):

* batch schedule — :func:`repro.trajectory.dataset.iterate_batch_indices`
  with ``seed + epoch``, so the schedule is a pure function of the epoch;
* scheduled sampling — each batch gets a fresh generator seeded by a draw
  from the trainer's master RNG; the master state is part of
  :class:`~repro.train.TrainState`, so a resumed run continues the exact
  stream, and gradient workers replay the same per-batch seed;
* learning rate — ``schedule.lr_at(epoch)`` applied at epoch start;
* gradient accumulation — gradients sum over ``accumulate_steps``
  micro-batches and are averaged before clip + optimizer step.

The trainer is quiet by default: step/epoch records go to the
``repro.train`` logger (see :mod:`repro.train.callbacks`).
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .. import nn, profile
from ..trajectory.dataset import (
    Batch,
    RecoverySample,
    iterate_batch_indices,
    make_batch,
    make_padded_batch,
)
from .callbacks import (
    Callback,
    CallbackList,
    CheckpointCallback,
    LoggingCallback,
    ProgressCallback,
    StepInfo,
)
from .config import EpochStats, TrainConfig, TrainResult
from .schedules import build_schedule
from .state import TrainState


class RecoveryModel(Protocol):
    """Structural interface the trainer requires."""

    def compute_loss(self, batch: Batch): ...
    def recover(self, batch: Batch) -> Tuple[np.ndarray, np.ndarray]: ...
    def parameters(self) -> list: ...
    def train(self, mode: bool = True): ...
    def eval(self): ...
    def zero_grad(self) -> None: ...


def quick_accuracy(model: RecoveryModel, samples: Sequence[RecoverySample],
                   batch_size: int = 16, limit: Optional[int] = None) -> float:
    """Mean per-point segment accuracy of greedy recovery.

    Samples sharing an input length are coalesced into target-padded
    batches (:func:`make_padded_batch`), and **only each sample's true
    target positions are scored** — padded tail steps carry segment 0 and
    would otherwise count any model that happens to emit 0 there as
    correct, inflating validation accuracy.
    """
    was_training = bool(getattr(model, "training", False))
    model.eval()
    subset = list(samples[:limit]) if limit else list(samples)
    if not subset:
        if was_training:
            model.train()
        return float("nan")

    by_input_length: dict = {}
    for sample in subset:
        by_input_length.setdefault(sample.input_length, []).append(sample)

    correct = 0
    total = 0
    for group in by_input_length.values():
        for start in range(0, len(group), batch_size):
            batch, lengths = make_padded_batch(group[start:start + batch_size])
            segments, _ = model.recover(batch)
            for i, length in enumerate(lengths):
                row = segments[i, :length] == batch.target_segments[i, :length]
                correct += int(row.sum())
                total += int(length)
    if was_training:
        model.train()
    return correct / max(total, 1)


class Trainer:
    """Adam trainer with teacher forcing, driven by a callback pipeline."""

    def __init__(self, model: RecoveryModel, config: Optional[TrainConfig] = None,
                 callbacks: Sequence[Callback] = ()) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = nn.Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.schedule = build_schedule(self.config)
        self.callbacks: List[Callback] = list(callbacks)
        self.history: List[EpochStats] = []
        self.stop_training = False
        self._epoch = 0
        self._global_step = 0
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    # Resumable state
    # ------------------------------------------------------------------
    @property
    def epochs_completed(self) -> int:
        return self._epoch

    def save_state(self, path: str) -> str:
        """Snapshot model + optimizer + RNG streams + counters to one
        ``.npz`` archive; returns the path written."""
        return TrainState.capture(self).save(path)

    def load_state(self, path: str) -> TrainState:
        """Restore a :meth:`save_state` archive into this trainer."""
        state = TrainState.load(path)
        state.restore(self)
        return state

    # ------------------------------------------------------------------
    # Worker lifecycle hooks (ParallelTrainer overrides these)
    # ------------------------------------------------------------------
    def _setup(self, train_samples: Sequence[RecoverySample]) -> None: ...

    def _teardown(self) -> None: ...

    # ------------------------------------------------------------------
    def fit(
        self,
        train_samples: Sequence[RecoverySample],
        val_samples: Sequence[RecoverySample] = (),
        progress: Optional[Callable[[EpochStats], None]] = None,
        checkpoint: Optional[str] = None,
        checkpoint_every: int = 1,
        until_epoch: Optional[int] = None,
    ) -> TrainResult:
        """Train to ``config.epochs``, resuming from ``checkpoint`` if the
        archive already exists (and re-checkpointing into it every
        ``checkpoint_every`` epochs).

        ``until_epoch`` stops early at an epoch boundary *without*
        touching the config — schedules like ``cosine`` depend on
        ``config.epochs``, so a partial run that will later be resumed
        must keep the full-horizon config and bound this call instead.
        """
        cfg = self.config
        stop_at = cfg.epochs if until_epoch is None else min(cfg.epochs, until_epoch)
        # A previous fit() may have been stopped by a callback; each call
        # starts willing to train (the callbacks keep their own counters
        # and may stop again immediately if still warranted).
        self.stop_training = False
        pipeline: List[Callback] = [LoggingCallback(cfg.log_every)]
        pipeline.extend(self.callbacks)
        if progress is not None:
            pipeline.append(ProgressCallback(progress))
        if checkpoint is not None:
            normalized = checkpoint if checkpoint.endswith(".npz") else checkpoint + ".npz"
            if os.path.exists(normalized):
                self.load_state(normalized)
            pipeline.append(CheckpointCallback(checkpoint, every=checkpoint_every))
        callbacks = CallbackList(pipeline)

        result = TrainResult(history=list(self.history))
        if self._epoch >= stop_at:
            return result

        self._setup(train_samples)
        try:
            callbacks.on_train_begin(self)
            self.model.train()
            while self._epoch < stop_at and not self.stop_training:
                stats = self._run_epoch(train_samples, val_samples, callbacks)
                self.history.append(stats)
                self._epoch += 1
                callbacks.on_epoch_end(self, stats)
            self.model.eval()
            result = TrainResult(history=list(self.history))
            callbacks.on_train_end(self, result)
        finally:
            self._teardown()
        return result

    # ------------------------------------------------------------------
    def _run_epoch(self, train_samples, val_samples, callbacks) -> EpochStats:
        cfg = self.config
        epoch = self._epoch
        start = time.perf_counter()
        lr = self.schedule.lr_at(epoch)
        self.optimizer.lr = lr
        callbacks.on_epoch_begin(self, epoch)

        losses: List[float] = []
        id_losses: List[float] = []
        rate_losses: List[float] = []
        graph_losses: List[float] = []
        grad_norm = 0.0

        index_batches = list(iterate_batch_indices(
            train_samples, cfg.batch_size, shuffle=True, seed=cfg.seed + epoch))
        self.model.zero_grad()
        step = 0
        with profile.section("train.epoch"):
            for group_start in range(0, len(index_batches), cfg.accumulate_steps):
                group = index_batches[group_start:group_start + cfg.accumulate_steps]
                for indices in group:
                    # One seed per batch, drawn from the master stream: the
                    # scheduled-sampling decisions are identical for a
                    # serial run, a resumed run, and every gradient-worker
                    # shard of the same batch.
                    seed = int(self._rng.integers(0, np.iinfo(np.int64).max))
                    loss, id_loss, rate_loss_, graph_loss = self._batch_gradients(
                        train_samples, indices, seed)
                    losses.append(loss)
                    id_losses.append(id_loss)
                    rate_losses.append(rate_loss_)
                    graph_losses.append(graph_loss)
                    self._global_step += 1
                    callbacks.on_step_end(self, StepInfo(
                        epoch=epoch, step=step, global_step=self._global_step,
                        loss=loss, lr=lr))
                    step += 1
                if len(group) > 1:
                    scale = 1.0 / len(group)
                    for p in self.optimizer.parameters:
                        if p.grad is not None:
                            p.grad = p.grad * scale
                with profile.section("train.step"):
                    grad_norm = nn.clip_grad_norm(self.optimizer.parameters,
                                                  cfg.clip_norm)
                    self.optimizer.step()
                    self.model.zero_grad()

        val_acc = None
        if cfg.validate and len(val_samples):
            with profile.section("train.validate"):
                val_acc = quick_accuracy(self.model, val_samples, cfg.batch_size)

        return EpochStats(
            epoch=epoch,
            loss=float(np.mean(losses)) if losses else float("nan"),
            id_loss=float(np.mean(id_losses)) if id_losses else float("nan"),
            rate_loss=float(np.mean(rate_losses)) if rate_losses else float("nan"),
            graph_loss=float(np.mean(graph_losses)) if graph_losses else float("nan"),
            val_accuracy=val_acc,
            seconds=time.perf_counter() - start,
            lr=lr,
            grad_norm=float(grad_norm),
        )

    # ------------------------------------------------------------------
    def _batch_gradients(self, samples, indices, seed: int
                         ) -> Tuple[float, float, float, float]:
        """Accumulate one batch's gradients into the parameters' ``grad``
        slots; returns (total, id, rate, graph) loss values."""
        with profile.section("train.batch"):
            batch = make_batch([samples[i] for i in indices])
            breakdown = self.model.compute_loss(
                batch, teacher_forcing_ratio=self.config.teacher_forcing_ratio,
                rng=np.random.default_rng(seed))
            breakdown.total.backward()
        return (breakdown.total.item(), breakdown.id_loss,
                breakdown.rate_loss, breakdown.graph_loss)
