"""Exact-resume training state: one ``.npz`` archive for everything.

A :class:`TrainState` bundles

* the model's parameters **and buffers** (GraphNorm/BatchNorm running
  statistics travel via ``Module.state_dict``),
* the optimizer's full update state (Adam moments + bias-correction step,
  SGD velocities) via the new ``Optimizer.state_dict``,
* every RNG stream training consumes — the trainer's master generator
  (which seeds per-batch scheduled-sampling draws) and each
  :class:`~repro.nn.layers.Dropout` layer's private stream,
* the epoch / global-step counters and the accumulated epoch history.

All of it lands in a single flat archive via
:func:`repro.nn.serialization.save_archive`: array-valued entries under
``model.*`` / ``optim.*`` prefixes, and the scalar/structured remainder as
one JSON blob (``meta``) encoded to bytes.  The guarantee this buys (and
``tests/test_train.py`` enforces): training N epochs produces *bit-for-bit*
the same parameters as training k, saving, restoring into fresh objects,
and training the remaining N−k.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List

import numpy as np

from .. import nn
from ..nn.serialization import load_archive, save_archive
from .config import EpochStats

MODEL_PREFIX = "model."
OPTIM_PREFIX = "optim."
META_KEY = "meta"
FORMAT_VERSION = 1


def _dropout_layers(model) -> List[nn.Dropout]:
    """Dropout modules in deterministic traversal order."""
    if not hasattr(model, "modules"):
        return []
    return [m for m in model.modules() if isinstance(m, nn.Dropout)]


def _generator_state(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def _restore_generator(rng: np.random.Generator, state: dict) -> None:
    rng.bit_generator.state = state


def _encode_meta(meta: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)


def _decode_meta(blob: np.ndarray) -> dict:
    return json.loads(bytes(np.asarray(blob, dtype=np.uint8)).decode("utf-8"))


@dataclass
class TrainState:
    """A resumable snapshot of a :class:`~repro.train.Trainer`."""

    epoch: int                               # epochs fully completed
    global_step: int
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, np.ndarray]
    rng: dict                                # master + dropout stream states
    history: List[dict]                      # EpochStats as dicts
    config: dict                             # TrainConfig snapshot (advisory)

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, trainer) -> "TrainState":
        return cls(
            epoch=trainer._epoch,
            global_step=trainer._global_step,
            model_state=trainer.model.state_dict(),
            optimizer_state=trainer.optimizer.state_dict(),
            rng={
                "master": _generator_state(trainer._rng),
                "dropout": [_generator_state(layer._rng)
                            for layer in _dropout_layers(trainer.model)],
            },
            history=[asdict(stats) for stats in trainer.history],
            config=dict(vars(trainer.config)),
        )

    def restore(self, trainer) -> None:
        """Apply this state to ``trainer`` (model, optimizer, RNGs,
        counters, history) so its next ``fit`` continues exactly."""
        trainer.model.load_state_dict(self.model_state)
        trainer.optimizer.load_state_dict(self.optimizer_state)
        _restore_generator(trainer._rng, self.rng["master"])
        layers = _dropout_layers(trainer.model)
        saved = self.rng.get("dropout", [])
        if len(saved) != len(layers):
            raise ValueError(
                f"checkpoint has {len(saved)} dropout stream(s), model has "
                f"{len(layers)} — architectures differ")
        for layer, state in zip(layers, saved):
            _restore_generator(layer._rng, state)
        trainer._epoch = int(self.epoch)
        trainer._global_step = int(self.global_step)
        trainer.history = [EpochStats(**entry) for entry in self.history]

    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Write the single-archive ``.npz``; returns the path written."""
        arrays: Dict[str, np.ndarray] = {}
        for name, value in self.model_state.items():
            arrays[MODEL_PREFIX + name] = value
        for name, value in self.optimizer_state.items():
            arrays[OPTIM_PREFIX + name] = value
        arrays[META_KEY] = _encode_meta({
            "format_version": FORMAT_VERSION,
            "epoch": self.epoch,
            "global_step": self.global_step,
            "rng": self.rng,
            "history": self.history,
            "config": self.config,
        })
        return save_archive(arrays, path)

    @classmethod
    def load(cls, path: str) -> "TrainState":
        arrays = load_archive(path)
        if META_KEY not in arrays:
            raise ValueError(f"{path!r} is not a TrainState archive "
                             "(missing 'meta'; plain model checkpoints are "
                             "loaded with nn.load_checkpoint)")
        meta = _decode_meta(arrays.pop(META_KEY))
        model_state = {key[len(MODEL_PREFIX):]: value
                       for key, value in arrays.items()
                       if key.startswith(MODEL_PREFIX)}
        optim_state = {key[len(OPTIM_PREFIX):]: value
                       for key, value in arrays.items()
                       if key.startswith(OPTIM_PREFIX)}
        return cls(
            epoch=int(meta["epoch"]),
            global_step=int(meta["global_step"]),
            model_state=model_state,
            optimizer_state=optim_state,
            rng=meta["rng"],
            history=list(meta["history"]),
            config=dict(meta.get("config", {})),
        )
