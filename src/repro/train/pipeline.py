"""Train→deploy bridge: one call from samples to a servable bundle.

:func:`fit_and_bundle` trains (serially or with gradient workers), then
writes the ``<prefix>.npz`` + ``<prefix>.json`` bundle that
:class:`repro.serve.ModelRegistry` and the cluster's ``/register`` +
``/swap`` endpoints consume directly.  The JSON sidecar gains a ``train``
section — content-hash version, epochs, final loss, best validation
accuracy, schedule, worker count — so a deployed bundle carries its own
provenance; the registry reads only the ``config`` section and ignores
the rest, so older bundles and tooling are unaffected.

:func:`register_bundle` completes the "train a city, roll it into the
cluster" path: it POSTs the bundle to a running cluster front door
(``scripts/serve.py cluster``), which hot-deploys it on the owning shard
without touching siblings.
"""

from __future__ import annotations

import hashlib
import json
import time
import urllib.request
from dataclasses import dataclass
from typing import Optional, Sequence

from .callbacks import Callback
from .config import TrainConfig, TrainResult
from .parallel import ParallelTrainer
from .trainer import RecoveryModel, Trainer


def model_version(model) -> str:
    """Content hash of the model's state (parameters + buffers): two
    bundles with identical weights share a version, any retrain changes
    it.  Used as the bundle's ``train.version`` provenance tag."""
    digest = hashlib.sha256()
    state = model.state_dict()
    for name in sorted(state):
        digest.update(name.encode())
        digest.update(state[name].tobytes())
    return digest.hexdigest()[:12]


@dataclass
class BundleReport:
    """What :func:`fit_and_bundle` produced."""

    result: TrainResult
    checkpoint_path: str
    config_path: str
    version: str


def make_trainer(model: RecoveryModel, config: Optional[TrainConfig] = None,
                 num_workers: int = 0,
                 callbacks: Sequence[Callback] = ()) -> Trainer:
    """Serial trainer, or a :class:`ParallelTrainer` when workers > 1."""
    if num_workers and num_workers > 1:
        return ParallelTrainer(model, config, num_workers=num_workers,
                               callbacks=callbacks)
    return Trainer(model, config, callbacks=callbacks)


def fit_and_bundle(
    model,
    train_samples,
    out_prefix: str,
    val_samples=(),
    config: Optional[TrainConfig] = None,
    num_workers: int = 0,
    callbacks: Sequence[Callback] = (),
    checkpoint: Optional[str] = None,
    metadata: Optional[dict] = None,
) -> BundleReport:
    """Train ``model`` and emit a versioned serving bundle.

    ``checkpoint`` threads through to :meth:`Trainer.fit` — pass a state
    archive path to make the training leg itself resumable.  ``metadata``
    entries are merged into the sidecar's ``train`` section.
    """
    from ..serve import save_model_bundle  # lazy: serve imports repro.core

    trainer = make_trainer(model, config, num_workers=num_workers,
                           callbacks=callbacks)
    result = trainer.fit(train_samples, val_samples, checkpoint=checkpoint)
    model.eval()
    ckpt_path, config_path = save_model_bundle(model, out_prefix)

    version = model_version(model)
    with open(config_path) as handle:
        sidecar = json.load(handle)
    train_meta = {
        "version": version,
        "epochs": trainer.epochs_completed,
        "final_loss": result.final_loss,
        "best_val_accuracy": result.best_val_accuracy,
        "schedule": trainer.config.schedule,
        "num_workers": getattr(trainer, "num_workers", 1),
        "created_unix": round(time.time(), 3),
    }
    train_meta.update(metadata or {})
    sidecar["train"] = _jsonable(train_meta)
    with open(config_path, "w") as handle:
        json.dump(sidecar, handle, indent=1)
    return BundleReport(result=result, checkpoint_path=ckpt_path,
                        config_path=config_path, version=version)


def _jsonable(payload: dict) -> dict:
    """NaN-safe (None-ified) copy — json.dump would emit invalid bare NaN."""
    cleaned = {}
    for key, value in payload.items():
        if isinstance(value, float) and value != value:
            cleaned[key] = None
        else:
            cleaned[key] = value
    return cleaned


def register_bundle(base_url: str, shard: str, model_name: str,
                    bundle_prefix: str, activate: bool = True,
                    timeout: float = 30.0) -> dict:
    """POST a trained bundle to a running cluster front door's
    ``/register`` endpoint; returns the cluster's response payload."""
    body = json.dumps({
        "shard": shard,
        "model": model_name,
        "bundle": bundle_prefix,
        "activate": bool(activate),
    }).encode()
    request = urllib.request.Request(
        base_url.rstrip("/") + "/register", data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode() or "{}")
