"""Learning-rate schedules layered on :mod:`repro.nn.optim`.

Every schedule is a *pure function of the epoch index* — ``lr_at(e)``
reads no mutable state — which is what makes exact resume trivial: a
trainer restored at epoch k applies the same LR sequence for epochs
k..N−1 that a straight-through run would, with nothing to replay.
(The stateful :class:`repro.nn.optim.StepLR` remains for direct use, but
the trainer drives these.)

The paper trains RNTrajRec with Adam plus decay; ``warmup`` and
``cosine`` are the two standard transformer recipes layered on top.
"""

from __future__ import annotations

import math

from .config import TrainConfig


class LRSchedule:
    """Base: constant LR with an optional linear warmup prefix."""

    def __init__(self, base_lr: float, warmup_epochs: int = 0) -> None:
        if base_lr <= 0.0:
            raise ValueError("base_lr must be positive")
        self.base_lr = float(base_lr)
        self.warmup_epochs = max(0, int(warmup_epochs))

    def lr_at(self, epoch: int) -> float:
        """The LR to apply for ``epoch`` (0-based)."""
        if epoch < self.warmup_epochs:
            # Ramp 1/(w+1) .. w/(w+1) of base over the warmup epochs.
            return self.base_lr * (epoch + 1) / (self.warmup_epochs + 1)
        return self._after_warmup(epoch - self.warmup_epochs)

    def _after_warmup(self, epoch: int) -> float:
        return self.base_lr

    def __call__(self, epoch: int) -> float:
        return self.lr_at(epoch)


class ConstantLR(LRSchedule):
    """Flat LR (optionally after warmup) — the seed trainer's behavior."""


class StepDecayLR(LRSchedule):
    """Multiply by ``gamma`` every ``step_size`` post-warmup epochs."""

    def __init__(self, base_lr: float, step_size: int, gamma: float = 0.5,
                 warmup_epochs: int = 0) -> None:
        super().__init__(base_lr, warmup_epochs)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def _after_warmup(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRSchedule):
    """Cosine anneal from base to ``min_lr`` over the post-warmup epochs."""

    def __init__(self, base_lr: float, total_epochs: int, min_lr: float = 0.0,
                 warmup_epochs: int = 0) -> None:
        super().__init__(base_lr, warmup_epochs)
        self.min_lr = float(min_lr)
        self.span = max(1, int(total_epochs) - self.warmup_epochs)

    def _after_warmup(self, epoch: int) -> float:
        # Epochs 0..span-1 sweep [0, (span-1)/span] of the half-cosine, so
        # the final epoch still trains near (not at) the floor.
        progress = min(epoch, self.span) / self.span
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress))


class PiecewiseConstant:
    """A generic epoch → value step function.

    ``boundaries`` are the epochs at which the value *changes*; segment i
    (epochs ``boundaries[i-1]..boundaries[i]-1``) yields ``values[i]``,
    so ``len(values) == len(boundaries) + 1``.  Pure function of the
    epoch like every :class:`LRSchedule` — the scenario curriculum uses
    it to map epochs to phases, and it composes as a custom LR shape too
    (values are opaque: floats, tuples, phase objects).
    """

    def __init__(self, boundaries, values) -> None:
        boundaries = [int(b) for b in boundaries]
        values = list(values)
        if len(values) != len(boundaries) + 1:
            raise ValueError("need exactly one more value than boundary")
        if any(b <= 0 for b in boundaries) or sorted(boundaries) != boundaries \
                or len(set(boundaries)) != len(boundaries):
            raise ValueError("boundaries must be positive and strictly increasing")
        self.boundaries = boundaries
        self.values = values

    def value_at(self, epoch: int):
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        for i, boundary in enumerate(self.boundaries):
            if epoch < boundary:
                return self.values[i]
        return self.values[-1]

    def __call__(self, epoch: int):
        return self.value_at(epoch)


def build_schedule(config: TrainConfig) -> LRSchedule:
    """The schedule a :class:`TrainConfig` describes."""
    if config.schedule == "constant":
        # warmup_epochs composes with every schedule, this one included.
        return ConstantLR(config.learning_rate,
                          warmup_epochs=config.warmup_epochs)
    if config.schedule == "warmup":
        # Bare "warmup" means ramp then flat; default to one ramp epoch so
        # `--schedule warmup` alone does something visible.
        return ConstantLR(config.learning_rate,
                          warmup_epochs=config.warmup_epochs or 1)
    if config.schedule == "step":
        return StepDecayLR(config.learning_rate, config.lr_step_size,
                           config.lr_gamma, config.warmup_epochs)
    if config.schedule == "cosine":
        return CosineLR(config.learning_rate, config.epochs, config.min_lr,
                        config.warmup_epochs)
    raise ValueError(f"unknown schedule {config.schedule!r}")
