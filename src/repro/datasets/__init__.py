"""Synthetic dataset registry mirroring the paper's five corpora."""

from .registry import (
    CHENGDU,
    CHENGDU_FEW,
    PORTO,
    SHANGHAI,
    SHANGHAI_L,
    DatasetSpec,
    LoadedDataset,
    dataset_names,
    get_spec,
    load_dataset,
)

__all__ = [
    "CHENGDU",
    "CHENGDU_FEW",
    "PORTO",
    "SHANGHAI",
    "SHANGHAI_L",
    "DatasetSpec",
    "LoadedDataset",
    "dataset_names",
    "get_spec",
    "load_dataset",
]
