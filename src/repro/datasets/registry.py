"""Dataset registry — synthetic analogues of the paper's five datasets.

Table II's corpora are proprietary taxi traces (Shanghai, Chengdu) and the
public Porto dataset over OSM road networks; none are available offline.
Each entry here is a deterministic recipe (city generator + simulator +
sampling config) whose *relative* characteristics mirror the paper:

* ``chengdu``    — dense medium city, ε_ρ = 12 s (paper: 8.3×8.3 km²,
  8 781 segments);
* ``porto``      — smaller, sparser, ε_ρ = 15 s, noisier GPS (paper:
  6.8×7.2 km², 12 613 segments, 15 s raw interval);
* ``shanghai_l`` — the largest area including suburbs, ε_ρ = 10 s (paper:
  23.0×30.8 km², 34 986 segments) — exercises scalability;
* ``shanghai``   — a mid-size slice of Shanghai (Table IV);
* ``chengdu_few``— Chengdu's city with ~20 % of the trajectories
  (Table IV's few-shot setting).

Everything is scaled down ~linearly so a full benchmark run fits a CPU
budget; the shape of inter-method comparisons is what the harness checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..roadnet.generator import CityConfig, generate_city
from ..roadnet.network import RoadNetwork
from ..trajectory.dataset import DatasetConfig, RecoverySample, build_samples, train_val_test_split
from ..trajectory.simulate import SimulationConfig, TrajectorySimulator


@dataclass(frozen=True)
class DatasetSpec:
    """A named, fully deterministic dataset recipe."""

    name: str
    city: CityConfig
    simulation: SimulationConfig
    dataset: DatasetConfig
    num_trajectories: int = 600

    def scaled(self, fraction: float) -> "DatasetSpec":
        """A copy with the trajectory count scaled (Chengdu-Few uses 0.2)."""
        return replace(self, num_trajectories=max(20, int(self.num_trajectories * fraction)))


_REGISTRY: Dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> DatasetSpec:
    _REGISTRY[spec.name] = spec
    return spec


CHENGDU = _register(
    DatasetSpec(
        name="chengdu",
        city=CityConfig(width=1500.0, height=1500.0, block=250.0, minor_fraction=0.5,
                        elevated_rows=(3,), ramp_every=2, seed=11),
        simulation=SimulationConfig(sample_interval=12.0, target_points=25,
                                    gps_noise_std=12.0, seed=101),
        dataset=DatasetConfig(keep_every=8, seed=201),
    )
)

PORTO = _register(
    DatasetSpec(
        name="porto",
        city=CityConfig(width=1250.0, height=1250.0, block=250.0, minor_fraction=0.35,
                        elevated_rows=(2,), ramp_every=3, jitter=10.0, seed=13),
        simulation=SimulationConfig(sample_interval=15.0, target_points=21,
                                    gps_noise_std=15.0, seed=103),
        dataset=DatasetConfig(keep_every=8, seed=203),
    )
)

SHANGHAI_L = _register(
    DatasetSpec(
        name="shanghai_l",
        city=CityConfig(width=2250.0, height=1750.0, block=250.0, minor_fraction=0.3,
                        elevated_rows=(3, 5), ramp_every=3, seed=17),
        simulation=SimulationConfig(sample_interval=10.0, target_points=33,
                                    gps_noise_std=12.0, seed=107),
        dataset=DatasetConfig(keep_every=16, seed=207),
    )
)

SHANGHAI = _register(
    DatasetSpec(
        name="shanghai",
        city=CityConfig(width=1500.0, height=1250.0, block=250.0, minor_fraction=0.4,
                        elevated_rows=(2,), ramp_every=2, seed=19),
        simulation=SimulationConfig(sample_interval=10.0, target_points=25,
                                    gps_noise_std=12.0, seed=109),
        dataset=DatasetConfig(keep_every=8, seed=209),
    )
)

CHENGDU_FEW = _register(replace(CHENGDU.scaled(0.2), name="chengdu_few"))


def dataset_names() -> List[str]:
    return sorted(_REGISTRY)


def get_spec(name: str) -> DatasetSpec:
    if name not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
    return _REGISTRY[name]


@dataclass
class LoadedDataset:
    """A materialized dataset: network + split recovery samples."""

    spec: DatasetSpec
    network: RoadNetwork
    train: List[RecoverySample]
    val: List[RecoverySample]
    test: List[RecoverySample]

    @property
    def name(self) -> str:
        return self.spec.name

    def statistics(self) -> Dict[str, float]:
        """Table-II style statistics."""
        all_samples = self.train + self.val + self.test
        durations = [s.target.times[-1] - s.target.times[0] for s in all_samples]
        x0, y0, x1, y1 = self.network.bounds()
        return {
            "# Trajectories": len(all_samples),
            "# Road segments": self.network.num_segments,
            "Area (km2)": round((x1 - x0) / 1000.0 * (y1 - y0) / 1000.0, 2),
            "Avg travel time (s)": round(float(sum(durations) / len(durations)), 2),
            "Sample interval (s)": self.spec.simulation.sample_interval,
            "Input interval (s)": self.spec.simulation.sample_interval * self.spec.dataset.keep_every,
        }


_NETWORK_CACHE: Dict[Tuple, RoadNetwork] = {}


def load_dataset(
    name: str,
    num_trajectories: Optional[int] = None,
    keep_every: Optional[int] = None,
    split_seed: int = 0,
) -> LoadedDataset:
    """Build (deterministically) the named dataset, optionally resized.

    ``keep_every`` overrides the ε_τ/ε_ρ ratio (Table III evaluates
    Chengdu at both 8 and 16).
    """
    spec = get_spec(name)
    if num_trajectories is not None:
        spec = replace(spec, num_trajectories=num_trajectories)
    if keep_every is not None:
        spec = replace(spec, dataset=replace(spec.dataset, keep_every=keep_every))

    city_key = tuple(sorted(vars(spec.city).items()))
    network = _NETWORK_CACHE.get(city_key)
    if network is None:
        network = generate_city(spec.city)
        _NETWORK_CACHE[city_key] = network

    simulator = TrajectorySimulator(network, spec.simulation)
    pairs = simulator.simulate(spec.num_trajectories)
    samples = build_samples(pairs, network, spec.dataset)
    train, val, test = train_val_test_split(samples, seed=split_seed)
    return LoadedDataset(spec=spec, network=network, train=train, val=val, test=test)
