"""End-to-end evaluation: run any recovery model over samples → metrics.

Works with every method in the repository — learned models and two-stage
pipelines — because all expose ``recover_trajectories(batch)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from ..trajectory.dataset import RecoverySample, iterate_batches
from ..trajectory.trajectory import MatchedTrajectory
from .metrics import RecoveryMetrics, evaluate_recovery, sr_at_k


@dataclass
class EvaluationReport:
    """Metrics plus the raw predictions (reused by SR%k / case studies)."""

    metrics: RecoveryMetrics
    predictions: List[MatchedTrajectory]
    truths: List[MatchedTrajectory]
    inference_seconds_per_trajectory: float


def run_recovery(model, samples: Sequence[RecoverySample],
                 batch_size: int = 16) -> Tuple[List[MatchedTrajectory], List[MatchedTrajectory], float]:
    """Recover all samples; returns (predictions, truths, sec/trajectory)."""
    predictions: List[MatchedTrajectory] = []
    truths: List[MatchedTrajectory] = []
    if hasattr(model, "eval"):
        model.eval()
    start = time.perf_counter()
    for batch in iterate_batches(samples, batch_size):
        predictions.extend(model.recover_trajectories(batch))
        truths.extend(sample.target for sample in batch.samples)
    elapsed = time.perf_counter() - start
    per_traj = elapsed / max(len(predictions), 1)
    return predictions, truths, per_traj


def evaluate_model(
    model,
    samples: Sequence[RecoverySample],
    engine: ShortestPathEngine,
    batch_size: int = 16,
) -> EvaluationReport:
    """Full Table-III evaluation of one model on one sample set."""
    predictions, truths, per_traj = run_recovery(model, samples, batch_size)
    metrics = evaluate_recovery(truths, predictions, engine)
    return EvaluationReport(
        metrics=metrics,
        predictions=predictions,
        truths=truths,
        inference_seconds_per_trajectory=per_traj,
    )


def evaluate_sr_at_k(
    report: EvaluationReport,
    network: RoadNetwork,
    thresholds: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8),
) -> dict:
    """Fig.-4 SR%k computed from an existing evaluation report."""
    return sr_at_k(report.truths, report.predictions, network, thresholds)
