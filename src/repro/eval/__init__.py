"""Evaluation metrics and harness."""

from .evaluate import EvaluationReport, evaluate_model, evaluate_sr_at_k, run_recovery
from .metrics import (
    RecoveryMetrics,
    distance_errors,
    elevated_window,
    evaluate_recovery,
    f1_score,
    path_precision_recall,
    point_accuracy,
    sr_at_k,
)

__all__ = [
    "EvaluationReport",
    "evaluate_model",
    "evaluate_sr_at_k",
    "run_recovery",
    "RecoveryMetrics",
    "distance_errors",
    "elevated_window",
    "evaluate_recovery",
    "f1_score",
    "path_precision_recall",
    "point_accuracy",
    "sr_at_k",
]
