"""Evaluation metrics of §VI-A2.

* MAE / RMSE use the **road-network distance** between predicted and true
  positions (segment + ratio), not straight-line distance;
* Recall / Precision / F1 compare predicted and true travel paths as
  segment sets;
* Accuracy is the per-point segment match rate;
* SR%k is the fraction of elevated-road sub-trajectories whose F1 exceeds
  k (the robustness experiment of §VI-D / Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from ..trajectory.trajectory import MatchedTrajectory


@dataclass
class RecoveryMetrics:
    """Aggregated metrics over a collection of trajectories."""

    recall: float
    precision: float
    f1: float
    accuracy: float
    mae: float
    rmse: float
    count: int

    def as_row(self) -> Dict[str, float]:
        return {
            "Recall": self.recall,
            "Precision": self.precision,
            "F1 Score": self.f1,
            "Accuracy": self.accuracy,
            "MAE": self.mae,
            "RMSE": self.rmse,
        }


def path_precision_recall(true_path: np.ndarray, pred_path: np.ndarray) -> Tuple[float, float]:
    """|E_ρ ∩ E_ρ̂| / |E_ρ| and / |E_ρ̂| over travel-path segment sets."""
    true_set = set(int(s) for s in true_path)
    pred_set = set(int(s) for s in pred_path)
    if not true_set or not pred_set:
        return 0.0, 0.0
    inter = len(true_set & pred_set)
    return inter / len(true_set), inter / len(pred_set)


def f1_score(recall: float, precision: float) -> float:
    if recall + precision == 0.0:
        return 0.0
    return 2.0 * recall * precision / (recall + precision)


def point_accuracy(true_traj: MatchedTrajectory, pred_traj: MatchedTrajectory) -> float:
    """Fraction of timestamps whose predicted segment equals the truth."""
    if len(true_traj) != len(pred_traj):
        raise ValueError("trajectories must share length for accuracy")
    return float(np.mean(true_traj.segments == pred_traj.segments))


def distance_errors(
    true_traj: MatchedTrajectory,
    pred_traj: MatchedTrajectory,
    engine: ShortestPathEngine,
) -> np.ndarray:
    """Per-point road-network distances between truth and prediction."""
    if len(true_traj) != len(pred_traj):
        raise ValueError("trajectories must share length for distance errors")
    errors = np.zeros(len(true_traj))
    for i in range(len(true_traj)):
        errors[i] = engine.symmetric_position_distance(
            int(true_traj.segments[i]),
            float(true_traj.ratios[i]),
            int(pred_traj.segments[i]),
            float(pred_traj.ratios[i]),
        )
    return errors


def evaluate_recovery(
    truths: Sequence[MatchedTrajectory],
    predictions: Sequence[MatchedTrajectory],
    engine: ShortestPathEngine,
) -> RecoveryMetrics:
    """All Table-III metrics over matched (truth, prediction) pairs."""
    if len(truths) != len(predictions):
        raise ValueError("mismatched number of trajectories")
    if not truths:
        raise ValueError("no trajectories to evaluate")

    recalls: List[float] = []
    precisions: List[float] = []
    f1s: List[float] = []
    accuracies: List[float] = []
    abs_errors: List[float] = []
    sq_errors: List[float] = []

    for truth, pred in zip(truths, predictions):
        recall, precision = path_precision_recall(truth.travel_path(), pred.travel_path())
        recalls.append(recall)
        precisions.append(precision)
        f1s.append(f1_score(recall, precision))
        accuracies.append(point_accuracy(truth, pred))
        errors = distance_errors(truth, pred, engine)
        abs_errors.extend(np.abs(errors).tolist())
        sq_errors.extend((errors**2).tolist())

    return RecoveryMetrics(
        recall=float(np.mean(recalls)),
        precision=float(np.mean(precisions)),
        f1=float(np.mean(f1s)),
        accuracy=float(np.mean(accuracies)),
        mae=float(np.mean(abs_errors)),
        rmse=float(np.sqrt(np.mean(sq_errors))),
        count=len(truths),
    )


# ----------------------------------------------------------------------
# Elevated-road robustness (SR%k, Fig. 4)
# ----------------------------------------------------------------------


def elevated_window(
    truth: MatchedTrajectory, network: RoadNetwork, pad: int = 2
) -> Optional[np.ndarray]:
    """Indices of the sub-trajectory on/near elevated roads, or ``None``.

    The window spans from ``pad`` steps before the first elevated point to
    ``pad`` after the last, matching the paper's "on or near an elevated
    road" sub-trajectory selection.
    """
    elevated = np.array([network.segment(int(s)).elevated for s in truth.segments])
    if not elevated.any():
        return None
    hits = np.flatnonzero(elevated)
    lo = max(0, int(hits[0]) - pad)
    hi = min(len(truth) - 1, int(hits[-1]) + pad)
    return np.arange(lo, hi + 1)


def sr_at_k(
    truths: Sequence[MatchedTrajectory],
    predictions: Sequence[MatchedTrajectory],
    network: RoadNetwork,
    thresholds: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8),
) -> Dict[float, float]:
    """SR%k: proportion of elevated sub-trajectories with F1 > k."""
    window_f1s: List[float] = []
    for truth, pred in zip(truths, predictions):
        window = elevated_window(truth, network)
        if window is None:
            continue
        sub_truth = truth.slice(window)
        sub_pred = pred.slice(window)
        recall, precision = path_precision_recall(sub_truth.travel_path(), sub_pred.travel_path())
        window_f1s.append(f1_score(recall, precision))
    if not window_f1s:
        return {float(k): 0.0 for k in thresholds}
    values = np.asarray(window_f1s)
    return {float(k): float(np.mean(values > k)) for k in thresholds}
