"""Trajectory substrate: data model, simulator, resampling, datasets."""

from .dataset import (
    Batch,
    DatasetConfig,
    RecoverySample,
    build_samples,
    iterate_batch_indices,
    iterate_batches,
    make_batch,
    make_padded_batch,
    pad_sample_target,
    sample_from_fixes,
    train_val_test_split,
)
from .resample import (
    downsample_indices,
    downsample_matched,
    downsample_raw,
    epsilon_grid,
    linear_interpolate,
)
from .simulate import SimulationConfig, TrajectorySimulator
from .trajectory import MatchedTrajectory, RawTrajectory

__all__ = [
    "Batch",
    "DatasetConfig",
    "RecoverySample",
    "build_samples",
    "iterate_batch_indices",
    "iterate_batches",
    "make_batch",
    "make_padded_batch",
    "pad_sample_target",
    "sample_from_fixes",
    "train_val_test_split",
    "downsample_indices",
    "downsample_matched",
    "downsample_raw",
    "epsilon_grid",
    "linear_interpolate",
    "SimulationConfig",
    "TrajectorySimulator",
    "MatchedTrajectory",
    "RawTrajectory",
]
