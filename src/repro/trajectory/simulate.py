"""Vehicle motion simulator — the stand-in for real taxi GPS traces.

For each trajectory the simulator

1. samples an origin/destination segment pair far enough apart,
2. routes between them with Dijkstra over *perturbed* edge weights (so the
   fleet does not all drive identical shortest paths),
3. integrates motion along the route with a level-dependent speed process
   (mean-reverting, clipped), and
4. emits a ground-truth matched point every ε_ρ seconds plus a noisy raw
   GPS fix (Gaussian, σ configurable; the paper cites ~5 m open-sky
   accuracy and up to tens of meters in built-up areas).

The output pairs (RawTrajectory, MatchedTrajectory) are exact: the matched
trajectory is the true vehicle state, not an HMM estimate, which removes
label noise relative to the paper but affects every compared method
identically (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from .trajectory import MatchedTrajectory, RawTrajectory

# Mean cruising speed (m/s) by road level; elevated expressways are fast,
# minor streets slow.
_LEVEL_SPEED = {0: 22.0, 1: 12.0, 2: 11.0, 3: 10.0, 4: 7.0, 5: 6.0, 6: 5.0, 7: 5.0}


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the trajectory simulator."""

    sample_interval: float = 12.0      # ε_ρ seconds between emitted points
    target_points: int = 33            # points per trajectory (l_ρ)
    gps_noise_std: float = 12.0        # meters
    min_route_segments: int = 12
    speed_jitter: float = 0.25         # relative std of the speed process
    route_weight_noise: float = 0.35   # log-normal sigma on edge weights
    elevated_bias: float = 0.0         # <0 favors elevated roads in routing
    seed: int = 0


class TrajectorySimulator:
    """Generates (raw, matched) trajectory pairs on a road network."""

    def __init__(self, network: RoadNetwork, config: SimulationConfig | None = None) -> None:
        self.network = network
        self.config = config or SimulationConfig()
        self.rng = np.random.default_rng(self.config.seed)
        self.engine = ShortestPathEngine(network)
        self._lengths = np.array([s.length for s in network.segments])

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _perturbed_route(self, source: int, target: int) -> Optional[List[int]]:
        """Dijkstra with multiplicative log-normal weight noise."""
        import heapq

        net = self.network
        noise = self.config.route_weight_noise
        bias = self.config.elevated_bias
        n = net.num_segments
        dist = np.full(n, np.inf)
        parent = np.full(n, -1, dtype=np.int64)
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if u == target:
                break
            if d > dist[u]:
                continue
            for v in net.out_neighbors[u]:
                w = self._lengths[v] * float(np.exp(self.rng.normal(0.0, noise)))
                if net.segments[v].elevated:
                    w *= float(np.exp(bias))
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        if not np.isfinite(dist[target]):
            return None
        path = [target]
        while path[-1] != source:
            path.append(int(parent[path[-1]]))
        return path[::-1]

    def _sample_od(self, prefer_elevated: bool = False) -> Tuple[int, int]:
        """Random origin/destination; optionally start on the elevated deck
        so the trajectory is guaranteed to traverse it (used by the
        robustness experiments of §VI-D)."""
        n = self.network.num_segments
        if prefer_elevated:
            elevated = [i for i, s in enumerate(self.network.segments) if s.elevated]
            if elevated:
                source = int(self.rng.choice(elevated))
                target = int(self.rng.integers(0, n))
                return source, target
        return int(self.rng.integers(0, n)), int(self.rng.integers(0, n))

    # ------------------------------------------------------------------
    # Motion integration
    # ------------------------------------------------------------------
    def _drive(self, route: List[int]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Integrate motion along ``route``.

        Returns per-emission arrays (segment_idx_in_route, ratio, time)
        sampled every ``sample_interval`` seconds until the route ends.
        """
        cfg = self.config
        lengths = self._lengths[route]
        boundaries = np.concatenate([[0.0], np.cumsum(lengths)])
        total = float(boundaries[-1])

        # Mean-reverting speed process sampled per second.
        position = 0.0
        time = 0.0
        speed = _LEVEL_SPEED[self.network.segments[route[0]].level]
        positions = [0.0]
        times = [0.0]
        max_time = (cfg.target_points + 2) * cfg.sample_interval
        while position < total and time < max_time:
            seg_idx = int(np.searchsorted(boundaries, position, side="right") - 1)
            seg_idx = min(seg_idx, len(route) - 1)
            level = self.network.segments[route[seg_idx]].level
            mean_speed = _LEVEL_SPEED[level]
            speed += 0.5 * (mean_speed - speed) + self.rng.normal(0.0, cfg.speed_jitter * mean_speed)
            speed = float(np.clip(speed, 1.0, 35.0))
            position += speed
            time += 1.0
            positions.append(min(position, total))
            times.append(time)

        positions = np.asarray(positions)
        times = np.asarray(times)
        emit_times = np.arange(0.0, times[-1] + 1e-9, cfg.sample_interval)
        emit_pos = np.interp(emit_times, times, positions)

        seg_indices = np.clip(np.searchsorted(boundaries, emit_pos, side="right") - 1, 0, len(route) - 1)
        offsets = emit_pos - boundaries[seg_indices]
        ratios = np.clip(offsets / np.maximum(lengths[seg_indices], 1e-9), 0.0, 1.0 - 1e-9)
        return seg_indices, ratios, emit_times

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def _chained_route(self, prefer_elevated: bool, needed_length: float) -> Optional[List[int]]:
        """Concatenate perturbed routes until ``needed_length`` meters.

        Mimics a taxi that keeps driving to new destinations, guaranteeing
        the trajectory lasts long enough to emit ``target_points`` fixes.
        """
        source, target = self._sample_od(prefer_elevated)
        if source == target:
            return None
        route = self._perturbed_route(source, target)
        if route is None or len(route) < 2:
            return None
        total = float(self._lengths[route].sum())
        for _ in range(16):
            if total >= needed_length:
                break
            _, nxt = self._sample_od(prefer_elevated)
            if nxt == route[-1]:
                continue
            extension = self._perturbed_route(route[-1], nxt)
            if extension is None or len(extension) < 2:
                continue
            route.extend(extension[1:])
            total += float(self._lengths[extension[1:]].sum())
        if total < needed_length:
            return None
        return route

    def simulate_one(self, prefer_elevated: bool = False) -> Optional[Tuple[RawTrajectory, MatchedTrajectory]]:
        """One trajectory pair, or ``None`` when OD sampling failed."""
        cfg = self.config
        # 35 m/s is the hard speed cap, so this length always suffices.
        needed = cfg.target_points * cfg.sample_interval * 36.0
        for _ in range(12):
            route = self._chained_route(prefer_elevated, needed)
            if route is None or len(route) < cfg.min_route_segments:
                continue
            seg_indices, ratios, times = self._drive(route)
            if len(times) < cfg.target_points:
                continue
            keep = slice(0, cfg.target_points)
            segments = np.asarray(route, dtype=np.int64)[seg_indices[keep]]
            matched = MatchedTrajectory(segments, ratios[keep], times[keep])
            raw = matched.to_raw(self.network, noise_std=cfg.gps_noise_std, rng=self.rng)
            return raw, matched
        return None

    def simulate(self, count: int, prefer_elevated: bool = False) -> List[Tuple[RawTrajectory, MatchedTrajectory]]:
        """Generate ``count`` trajectory pairs (skipping failed draws)."""
        out: List[Tuple[RawTrajectory, MatchedTrajectory]] = []
        attempts = 0
        while len(out) < count and attempts < count * 30:
            attempts += 1
            pair = self.simulate_one(prefer_elevated)
            if pair is not None:
                out.append(pair)
        if len(out) < count:
            raise RuntimeError(
                f"simulator produced only {len(out)}/{count} trajectories; "
                "check network connectivity or lower min_route_segments"
            )
        return out
