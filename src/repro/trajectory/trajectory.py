"""Trajectory data structures (paper Definitions 2-4).

* :class:`RawTrajectory` — GPS fixes as recorded by a device: noisy
  (x, y) positions plus timestamps, no fixed interval (Def. 2).
* :class:`MatchedTrajectory` — a map-matched ε_ρ-sample-interval
  trajectory: per point a road segment id and a moving ratio in [0, 1)
  plus timestamps (Def. 3).

Both are immutable value objects with vectorized accessors; conversions
between them live in :mod:`repro.trajectory.resample` and
:mod:`repro.mapmatch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..roadnet.network import RoadNetwork


@dataclass(frozen=True)
class RawTrajectory:
    """A sequence of raw GPS points: positions (n, 2) meters, times (n,) s."""

    xy: np.ndarray
    times: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "xy", np.asarray(self.xy, dtype=np.float64))
        object.__setattr__(self, "times", np.asarray(self.times, dtype=np.float64))
        if self.xy.ndim != 2 or self.xy.shape[1] != 2:
            raise ValueError(f"xy must be (n, 2), got {self.xy.shape}")
        if self.times.shape != (len(self.xy),):
            raise ValueError("times length must match xy")
        if len(self.times) >= 2 and np.any(np.diff(self.times) <= 0):
            raise ValueError("timestamps must be strictly increasing")

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0]) if len(self) > 1 else 0.0

    @property
    def mean_interval(self) -> float:
        """Average sample interval ε_τ (Def. 2)."""
        if len(self) < 2:
            return 0.0
        return float(np.mean(np.diff(self.times)))

    def slice(self, indices: Sequence[int]) -> "RawTrajectory":
        idx = np.asarray(indices, dtype=np.int64)
        return RawTrajectory(self.xy[idx], self.times[idx])


@dataclass(frozen=True)
class MatchedTrajectory:
    """A map-matched ε_ρ-interval trajectory (Def. 3).

    ``segments[i]`` is the road segment id at time ``times[i]``;
    ``ratios[i]`` in [0, 1) is the moving ratio along that segment.
    """

    segments: np.ndarray
    ratios: np.ndarray
    times: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "segments", np.asarray(self.segments, dtype=np.int64))
        object.__setattr__(self, "ratios", np.asarray(self.ratios, dtype=np.float64))
        object.__setattr__(self, "times", np.asarray(self.times, dtype=np.float64))
        n = len(self.segments)
        if self.ratios.shape != (n,) or self.times.shape != (n,):
            raise ValueError("segments, ratios and times must share one length")
        if np.any((self.ratios < 0.0) | (self.ratios > 1.0)):
            raise ValueError("moving ratios must lie in [0, 1]")

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def interval(self) -> float:
        """The fixed sample interval ε_ρ (0 for singleton trajectories)."""
        if len(self) < 2:
            return 0.0
        return float(self.times[1] - self.times[0])

    def positions(self, network: RoadNetwork) -> np.ndarray:
        """(n, 2) planar positions reconstructed from (segment, ratio)."""
        return np.asarray(
            [network.position(int(s), float(r)) for s, r in zip(self.segments, self.ratios)]
        )

    def travel_path(self) -> np.ndarray:
        """The *set* of traversed segment ids in first-visit order (E_ρ)."""
        seen: dict[int, None] = {}
        for sid in self.segments.tolist():
            seen.setdefault(int(sid), None)
        return np.asarray(list(seen.keys()), dtype=np.int64)

    def slice(self, indices: Sequence[int]) -> "MatchedTrajectory":
        idx = np.asarray(indices, dtype=np.int64)
        return MatchedTrajectory(self.segments[idx], self.ratios[idx], self.times[idx])

    def to_raw(self, network: RoadNetwork, noise_std: float = 0.0,
               rng: Optional[np.random.Generator] = None) -> RawTrajectory:
        """Materialize as raw GPS points, optionally with additive noise."""
        xy = self.positions(network)
        if noise_std > 0.0:
            rng = rng or np.random.default_rng(0)
            xy = xy + rng.normal(0.0, noise_std, size=xy.shape)
        return RawTrajectory(xy, self.times.copy())
