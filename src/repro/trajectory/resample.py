"""Resampling utilities: downsampling to low-sample inputs and the linear
interpolation recovery of Hoteit et al. [18] (the ``Linear`` baseline).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .trajectory import MatchedTrajectory, RawTrajectory


def downsample_indices(length: int, keep_every: int) -> np.ndarray:
    """Indices kept when downsampling by ``keep_every`` (always keeps 0;
    always keeps the final point, as MTrajRec's protocol does, so the
    recovery task is interpolation rather than extrapolation)."""
    if keep_every < 1:
        raise ValueError("keep_every must be >= 1")
    idx = list(range(0, length, keep_every))
    if idx[-1] != length - 1:
        idx.append(length - 1)
    return np.asarray(idx, dtype=np.int64)


def downsample_raw(trajectory: RawTrajectory, keep_every: int) -> RawTrajectory:
    """Low-sample version of a raw trajectory (ε_τ = keep_every × ε_ρ)."""
    return trajectory.slice(downsample_indices(len(trajectory), keep_every))


def downsample_matched(trajectory: MatchedTrajectory, keep_every: int) -> MatchedTrajectory:
    return trajectory.slice(downsample_indices(len(trajectory), keep_every))


def linear_interpolate(low: RawTrajectory, target_times: Sequence[float]) -> RawTrajectory:
    """Uniform-speed linear interpolation between consecutive fixes [18].

    Positions at ``target_times`` are linear interpolations of the
    low-sample positions; times outside the observed range clamp to the
    endpoints.
    """
    target_times = np.asarray(target_times, dtype=np.float64)
    xs = np.interp(target_times, low.times, low.xy[:, 0])
    ys = np.interp(target_times, low.times, low.xy[:, 1])
    return RawTrajectory(np.stack([xs, ys], axis=1), target_times)


def epsilon_grid(t0: float, t1: float, interval: float) -> np.ndarray:
    """The ε_ρ-spaced time grid [t0, t0+ε, ..., t1] (inclusive, Def. 3)."""
    if interval <= 0:
        raise ValueError("interval must be positive")
    count = int(round((t1 - t0) / interval)) + 1
    return t0 + interval * np.arange(count)
