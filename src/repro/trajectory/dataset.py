"""Recovery dataset: aligned (low-sample input, ε_ρ-grid target) samples.

Each sample couples

* the low-sample raw input trajectory (every ``keep_every``-th point of the
  high-sample trace, plus the final point),
* the full ε_ρ-interval matched target (segment id + moving ratio per
  step), and
* the **constraint mask** of Eq. 16: for target steps that are observed in
  the input, a sparse weight vector ω(e, p) = exp(-d²/β²) over segments
  within the device's maximum error radius; unobserved steps are
  unconstrained (all ones).

Batches stack same-shape samples (the simulator emits fixed-length
trajectories, so bucketing is trivial) and materialize dense constraint
tensors on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.distance import gaussian_weight
from ..roadnet.network import RoadNetwork
from .resample import downsample_indices
from .trajectory import MatchedTrajectory, RawTrajectory

SparseMask = Optional[Tuple[np.ndarray, np.ndarray]]  # (segment ids, weights)


def constraint_for_fix(network: RoadNetwork, x: float, y: float,
                       beta: float, max_gps_error: float) -> Tuple[np.ndarray, np.ndarray]:
    """The Eq. 16 sparse constraint entry for one observed GPS fix.

    Shared by the offline dataset builder and the online serving ingest so
    the two paths can never diverge: segments within ``max_gps_error``
    meters weighted by ω(e, p) = exp(-d²/β²), falling back to the single
    nearest segment when none are in range.  Works on the network's
    array-native query (one vectorized distance pass over all candidates).
    """
    ids, dists = network.segments_within_arrays(float(x), float(y), max_gps_error)
    if not len(ids):
        sid, dist, _ = network.nearest_segment(float(x), float(y))
        ids = np.array([sid], dtype=np.int64)
        dists = np.array([dist])
    weights = gaussian_weight(dists, beta)
    return ids, np.maximum(weights, 1e-8)


@dataclass(frozen=True)
class RecoverySample:
    """One training/evaluation example of the trajectory recovery task."""

    raw_low: RawTrajectory
    target: MatchedTrajectory
    observed_steps: np.ndarray          # indices into target for each input point
    constraints: Tuple[SparseMask, ...]  # per target step
    hour: int                            # environmental context (hour of day)
    holiday: bool

    @property
    def input_length(self) -> int:
        return len(self.raw_low)

    @property
    def target_length(self) -> int:
        return len(self.target)

    def constraint_matrix(self, num_segments: int) -> np.ndarray:
        """Dense (l_ρ, |V|) constraint mask (1.0 where unconstrained).

        Materialized with one allocation plus two scatter writes (zero the
        constrained rows, then place the sparse weights) instead of
        building a |V|-sized row buffer per observed step.
        """
        mask = np.ones((self.target_length, num_segments), dtype=np.float64)
        steps = [step for step, entry in enumerate(self.constraints)
                 if entry is not None]
        if not steps:
            return mask
        mask[steps] = 0.0
        ids = np.concatenate([self.constraints[step][0] for step in steps])
        weights = np.concatenate([self.constraints[step][1] for step in steps])
        lengths = [len(self.constraints[step][0]) for step in steps]
        mask[np.repeat(steps, lengths), ids] = weights
        return mask


@dataclass(frozen=True)
class DatasetConfig:
    """Sample-construction parameters (paper §V / §VI-A3)."""

    keep_every: int = 8          # ε_τ / ε_ρ ratio (8 or 16 in the paper)
    beta: float = 15.0           # constraint-mask kernel scale
    max_gps_error: float = 100.0  # constraint-mask search radius
    seed: int = 0


def sample_from_fixes(
    network: RoadNetwork,
    low: RawTrajectory,
    target: MatchedTrajectory,
    observed_steps: np.ndarray,
    config: "DatasetConfig",
    hour: int,
    holiday: bool,
) -> RecoverySample:
    """Assemble one recovery sample from an observed fix subset.

    The single construction path shared by :func:`build_samples` (fixed
    ``keep_every`` downsampling) and :mod:`repro.scenarios` (degraded
    observation patterns): ``observed_steps[i]`` is the target grid step
    of input fix ``i``, and each observed step gets its Eq. 16 constraint
    entry from the fix's (possibly noise-perturbed) position.  Sharing
    this keeps the scenario suite's identity transform bit-identical to
    the clean pipeline.
    """
    observed_steps = np.asarray(observed_steps, dtype=np.int64)
    if len(low) != len(observed_steps):
        raise ValueError("one observed step per input fix required")
    constraints: List[SparseMask] = [None] * len(target)
    for input_pos, target_step in enumerate(observed_steps):
        x, y = low.xy[input_pos]
        constraints[int(target_step)] = constraint_for_fix(
            network, x, y, config.beta, config.max_gps_error
        )
    return RecoverySample(
        raw_low=low,
        target=target,
        observed_steps=observed_steps,
        constraints=tuple(constraints),
        hour=int(hour),
        holiday=bool(holiday),
    )


def build_samples(
    pairs: Sequence[Tuple[RawTrajectory, MatchedTrajectory]],
    network: RoadNetwork,
    config: DatasetConfig | None = None,
) -> List[RecoverySample]:
    """Convert simulator output into aligned recovery samples."""
    config = config or DatasetConfig()
    rng = np.random.default_rng(config.seed)
    samples: List[RecoverySample] = []
    for raw, matched in pairs:
        if len(raw) != len(matched):
            raise ValueError("raw and matched trajectories must align 1:1")
        keep = downsample_indices(len(raw), config.keep_every)
        samples.append(
            sample_from_fixes(
                network, raw.slice(keep), matched, keep, config,
                hour=int(rng.integers(0, 24)),
                holiday=bool(rng.random() < 0.1),
            )
        )
    return samples


def train_val_test_split(
    samples: Sequence[RecoverySample],
    ratios: Tuple[float, float, float] = (0.7, 0.2, 0.1),
    seed: int = 0,
) -> Tuple[List[RecoverySample], List[RecoverySample], List[RecoverySample]]:
    """The paper's 7:2:1 split, shuffled deterministically."""
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError("split ratios must sum to 1")
    order = np.random.default_rng(seed).permutation(len(samples))
    n_train = int(round(ratios[0] * len(samples)))
    n_val = int(round(ratios[1] * len(samples)))
    shuffled = [samples[i] for i in order]
    return (
        shuffled[:n_train],
        shuffled[n_train : n_train + n_val],
        shuffled[n_train + n_val :],
    )


@dataclass
class Batch:
    """A stacked mini-batch of same-shape recovery samples."""

    samples: List[RecoverySample]
    input_xy: np.ndarray          # (b, l_τ, 2)
    input_times: np.ndarray       # (b, l_τ) seconds from trajectory start
    target_segments: np.ndarray   # (b, l_ρ)
    target_ratios: np.ndarray     # (b, l_ρ)
    target_times: np.ndarray      # (b, l_ρ)
    observed_steps: np.ndarray    # (b, l_τ) target indices of the inputs
    hours: np.ndarray             # (b,)
    holidays: np.ndarray          # (b,)

    @property
    def size(self) -> int:
        return len(self.samples)

    @property
    def input_length(self) -> int:
        return self.input_xy.shape[1]

    @property
    def target_length(self) -> int:
        return self.target_segments.shape[1]

    def constraint_tensor(self, num_segments: int) -> np.ndarray:
        """(b, l_ρ, |V|) dense constraint masks.

        One allocation + batched scatter writes across all samples, rather
        than stacking per-sample matrices (which copies every row twice).
        """
        mask = np.ones((self.size, self.target_length, num_segments),
                       dtype=np.float64)
        rows_i: List[int] = []
        rows_j: List[int] = []
        id_blocks: List[np.ndarray] = []
        weight_blocks: List[np.ndarray] = []
        for i, sample in enumerate(self.samples):
            for j, entry in enumerate(sample.constraints):
                if entry is None:
                    continue
                rows_i.append(i)
                rows_j.append(j)
                id_blocks.append(entry[0])
                weight_blocks.append(entry[1])
        if not rows_i:
            return mask
        mask[rows_i, rows_j] = 0.0
        lengths = [len(ids) for ids in id_blocks]
        mask[np.repeat(rows_i, lengths), np.repeat(rows_j, lengths),
             np.concatenate(id_blocks)] = np.concatenate(weight_blocks)
        return mask


def make_batch(samples: Sequence[RecoverySample]) -> Batch:
    """Stack samples; all must share input and target lengths."""
    lengths = {(s.input_length, s.target_length) for s in samples}
    if len(lengths) != 1:
        raise ValueError(f"cannot stack heterogeneous shapes: {sorted(lengths)}")
    return Batch(
        samples=list(samples),
        input_xy=np.stack([s.raw_low.xy for s in samples]),
        input_times=np.stack([s.raw_low.times - s.raw_low.times[0] for s in samples]),
        target_segments=np.stack([s.target.segments for s in samples]),
        target_ratios=np.stack([s.target.ratios for s in samples]),
        target_times=np.stack([s.target.times for s in samples]),
        observed_steps=np.stack([s.observed_steps for s in samples]),
        hours=np.asarray([s.hour for s in samples], dtype=np.int64),
        holidays=np.asarray([s.holiday for s in samples], dtype=bool),
    )


def pad_sample_target(sample: RecoverySample, target_length: int) -> RecoverySample:
    """Extend a sample's target grid to ``target_length`` with dummy steps.

    Padded steps carry segment 0 / ratio 0, continue the ε_ρ time grid, and
    are unconstrained (mask of all ones).  The serving layer uses this to
    coalesce requests of different output lengths into one decoder call:
    greedy decoding is stepwise-causal, so truncating the padded output at
    each sample's true length reproduces the unpadded decode exactly.
    """
    current = sample.target_length
    if target_length < current:
        raise ValueError(f"cannot shrink target from {current} to {target_length}")
    if target_length == current:
        return sample
    extra = target_length - current
    interval = sample.target.interval or 1.0
    times = np.concatenate(
        [sample.target.times, sample.target.times[-1] + interval * np.arange(1, extra + 1)]
    )
    target = MatchedTrajectory(
        np.concatenate([sample.target.segments, np.zeros(extra, dtype=np.int64)]),
        np.concatenate([sample.target.ratios, np.zeros(extra)]),
        times,
    )
    return RecoverySample(
        raw_low=sample.raw_low,
        target=target,
        observed_steps=sample.observed_steps,
        constraints=sample.constraints + (None,) * extra,
        hour=sample.hour,
        holiday=sample.holiday,
    )


def make_padded_batch(samples: Sequence[RecoverySample]) -> Tuple[Batch, List[int]]:
    """Stack samples sharing one input length, padding targets to the max.

    Returns the padded batch plus each sample's true target length (the
    decode results must be truncated back with these).
    """
    input_lengths = {s.input_length for s in samples}
    if len(input_lengths) != 1:
        raise ValueError(f"cannot stack heterogeneous input lengths: {sorted(input_lengths)}")
    lengths = [s.target_length for s in samples]
    longest = max(lengths)
    return make_batch([pad_sample_target(s, longest) for s in samples]), lengths


def iterate_batch_indices(
    samples: Sequence[RecoverySample],
    batch_size: int,
    shuffle: bool = False,
    seed: int = 0,
    drop_last: bool = False,
) -> Iterator[List[int]]:
    """Yield index lists into ``samples``, bucketing by (input length,
    target length).

    This is the batch *schedule* without the batch materialization: the
    parallel trainer shards these index lists across gradient workers
    (each worker holds the sample list and stacks only its shard), while
    :func:`iterate_batches` materializes them locally.  Both therefore
    consume bit-identical schedules for a given (shuffle, seed).
    """
    buckets: dict[Tuple[int, int], List[int]] = {}
    for index, sample in enumerate(samples):
        buckets.setdefault((sample.input_length, sample.target_length), []).append(index)

    rng = np.random.default_rng(seed)
    keys = sorted(buckets)
    if shuffle:
        rng.shuffle(keys)
    for key in keys:
        bucket = buckets[key]
        order = rng.permutation(len(bucket)) if shuffle else np.arange(len(bucket))
        for start in range(0, len(bucket), batch_size):
            chunk = [bucket[i] for i in order[start : start + batch_size]]
            if drop_last and len(chunk) < batch_size:
                continue
            yield chunk


def iterate_batches(
    samples: Sequence[RecoverySample],
    batch_size: int,
    shuffle: bool = False,
    seed: int = 0,
    drop_last: bool = False,
) -> Iterator[Batch]:
    """Yield batches, bucketing by (input length, target length)."""
    for indices in iterate_batch_indices(samples, batch_size, shuffle=shuffle,
                                         seed=seed, drop_last=drop_last):
        yield make_batch([samples[i] for i in indices])
