"""Synthetic city generator — the stand-in for OpenStreetMap extracts.

The paper trains on Shanghai / Chengdu / Porto road networks, which are
not available offline.  This generator builds cities with the structural
features that make trajectory recovery hard (and that the paper's
experiments probe):

* an arterial grid (level 2) whose spacing controls intersection density;
* minor streets (level 4) subdividing a fraction of blocks;
* two-way traffic modeled as paired opposite-direction segments;
* an **elevated expressway** (level 0, ``elevated=True``) running above a
  trunk corridor, connected only at sparse ramps — reproducing the
  elevated/ground ambiguity that §VI-D's SR%k experiment measures;
* optional geometric jitter so minor roads are not perfectly straight.

All coordinates are meters in the local frame.  Segment connectivity is
derived from shared endpoints, with turn restrictions that forbid instant
U-turns onto the paired opposite segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .network import RoadNetwork, RoadSegment

_NODE_QUANT = 0.5  # meters; endpoints are snapped to this before matching


@dataclass(frozen=True)
class CityConfig:
    """Parameters of a synthetic city."""

    width: float = 2000.0
    height: float = 2000.0
    block: float = 250.0
    minor_fraction: float = 0.5
    elevated_rows: Tuple[int, ...] = (2,)
    ramp_every: int = 3
    elevated_offset: float = 10.0
    jitter: float = 6.0
    seed: int = 7
    allow_u_turn: bool = False


def _key(point: np.ndarray) -> Tuple[int, int]:
    return (int(round(point[0] / _NODE_QUANT)), int(round(point[1] / _NODE_QUANT)))


class _Builder:
    """Accumulates directed segments and derives connectivity."""

    def __init__(self) -> None:
        self.polylines: List[np.ndarray] = []
        self.levels: List[int] = []
        self.elevated: List[bool] = []
        self.layers: List[int] = []  # 0 = ground, 1 = elevated deck
        self.opposite: Dict[int, int] = {}

    def add_one_way(self, polyline: np.ndarray, level: int, elevated: bool, layer: int) -> int:
        sid = len(self.polylines)
        self.polylines.append(np.asarray(polyline, dtype=np.float64))
        self.levels.append(level)
        self.elevated.append(elevated)
        self.layers.append(layer)
        return sid

    def add_two_way(self, polyline: np.ndarray, level: int, elevated: bool = False, layer: int = 0) -> Tuple[int, int]:
        forward = self.add_one_way(polyline, level, elevated, layer)
        backward = self.add_one_way(np.asarray(polyline)[::-1], level, elevated, layer)
        self.opposite[forward] = backward
        self.opposite[backward] = forward
        return forward, backward

    def build(self, allow_u_turn: bool) -> RoadNetwork:
        segments = [
            RoadSegment(i, poly, level, elev)
            for i, (poly, level, elev) in enumerate(zip(self.polylines, self.levels, self.elevated))
        ]
        # Connectivity: segment a feeds segment b iff a's end node equals
        # b's start node *on the same layer* (the elevated deck is only
        # reachable through ramp segments, which bridge layers by having
        # endpoints on both decks).
        starts: Dict[Tuple[int, int, int], List[int]] = {}
        for i, poly in enumerate(self.polylines):
            starts.setdefault((*_key(poly[0]), self.layers[i]), []).append(i)

        edges: List[Tuple[int, int]] = []
        for a, poly in enumerate(self.polylines):
            end_key = (*_key(poly[-1]), self.layers[a])
            for b in starts.get(end_key, []):
                if a == b:
                    continue
                if not allow_u_turn and self.opposite.get(a) == b:
                    continue
                edges.append((a, b))
        return RoadNetwork(segments, edges)


def _jittered_line(p0: np.ndarray, p1: np.ndarray, jitter: float, rng: np.random.Generator) -> np.ndarray:
    """A 3-vertex polyline with a mid-point perturbed orthogonally."""
    mid = (p0 + p1) / 2.0
    direction = p1 - p0
    norm = np.linalg.norm(direction)
    if norm < 1e-9 or jitter <= 0:
        return np.stack([p0, p1])
    normal = np.array([-direction[1], direction[0]]) / norm
    mid = mid + normal * rng.normal(0.0, jitter)
    return np.stack([p0, mid, p1])


def generate_city(config: CityConfig | None = None) -> RoadNetwork:
    """Build a synthetic city road network from ``config``."""
    config = config or CityConfig()
    rng = np.random.default_rng(config.seed)
    builder = _Builder()

    cols = int(round(config.width / config.block))
    rows = int(round(config.height / config.block))
    if cols < 2 or rows < 2:
        raise ValueError("city must be at least 2x2 blocks")

    def node(i: int, j: int) -> np.ndarray:
        return np.array([i * config.block, j * config.block], dtype=np.float64)

    # Arterial grid (level 2), two-way, one segment per block edge.
    for j in range(rows + 1):
        for i in range(cols):
            builder.add_two_way(np.stack([node(i, j), node(i + 1, j)]), level=2)
    for i in range(cols + 1):
        for j in range(rows):
            builder.add_two_way(np.stack([node(i, j), node(i, j + 1)]), level=2)

    # Minor streets (level 4) bisect a random subset of blocks vertically.
    # Adjacent blocks share arterial rows, so connector segments along an
    # arterial are deduplicated by (i, jj).
    connectors_added: set = set()
    for i in range(cols):
        for j in range(rows):
            if rng.random() >= config.minor_fraction:
                continue
            x = (i + 0.5) * config.block
            p0 = np.array([x, j * config.block])
            p1 = np.array([x, (j + 1) * config.block])
            poly = _jittered_line(p0, p1, config.jitter, rng)
            builder.add_two_way(poly, level=4)
            # Split the two bounding horizontal arterials so the minor road
            # actually connects: approximate by adding short connector
            # segments along the arterial to the midpoint.
            for jj in (j, j + 1):
                if (i, jj) in connectors_added:
                    continue
                connectors_added.add((i, jj))
                left = np.array([i * config.block, jj * config.block])
                right = np.array([(i + 1) * config.block, jj * config.block])
                mid = np.array([x, jj * config.block])
                builder.add_two_way(np.stack([left, mid]), level=4)
                builder.add_two_way(np.stack([mid, right]), level=4)

    # Elevated expressway decks above selected arterial rows.
    for row in config.elevated_rows:
        if not 0 <= row <= rows:
            continue
        y = row * config.block
        offset = config.elevated_offset
        deck_ids: List[int] = []
        for i in range(cols):
            p0 = np.array([i * config.block, y + offset])
            p1 = np.array([(i + 1) * config.block, y + offset])
            f, b = builder.add_two_way(np.stack([p0, p1]), level=0, elevated=True, layer=1)
            deck_ids.extend((f, b))
        # Ramps every ``ramp_every`` intersections bridge ground <-> deck.
        for i in range(0, cols + 1, max(1, config.ramp_every)):
            ground = np.array([i * config.block, y])
            deck = np.array([i * config.block, y + offset])
            up = builder.add_one_way(np.stack([ground, deck]), level=1, elevated=True, layer=0)
            down = builder.add_one_way(np.stack([deck, ground]), level=1, elevated=True, layer=0)
            builder.opposite[up] = down
            builder.opposite[down] = up
            # Ramps live on the ground layer at one end and must join the
            # deck layer at the other; patch their layer bookkeeping by
            # registering extra start keys.  Simplest correct approach:
            # treat ramps as layer-bridging by duplicating entries.
            builder.layers[up] = -1
            builder.layers[down] = -1

    network = _finalize_with_ramps(builder, config.allow_u_turn)
    return network


def _finalize_with_ramps(builder: _Builder, allow_u_turn: bool) -> RoadNetwork:
    """Build connectivity treating layer ``-1`` segments as deck bridges."""
    segments = [
        RoadSegment(i, poly, level, elev)
        for i, (poly, level, elev) in enumerate(
            zip(builder.polylines, builder.levels, builder.elevated)
        )
    ]

    starts: Dict[Tuple[int, int, int], List[int]] = {}
    for i, poly in enumerate(builder.polylines):
        layer = builder.layers[i]
        keys = [(*_key(poly[0]), layer)]
        if layer == -1:  # ramps accept traffic from both decks at their start
            keys = [(*_key(poly[0]), 0), (*_key(poly[0]), 1)]
        for key in keys:
            starts.setdefault(key, []).append(i)

    edges: List[Tuple[int, int]] = []
    for a, poly in enumerate(builder.polylines):
        layer = builder.layers[a]
        end_keys = [(*_key(poly[-1]), layer)]
        if layer == -1:  # ramps feed both decks at their end
            end_keys = [(*_key(poly[-1]), 0), (*_key(poly[-1]), 1)]
        for end_key in end_keys:
            for b in starts.get(end_key, []):
                if a == b:
                    continue
                if not allow_u_turn and builder.opposite.get(a) == b:
                    continue
                edges.append((a, b))
    return RoadNetwork(segments, edges)
