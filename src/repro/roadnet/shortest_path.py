"""Shortest paths over the road network and road-network distances.

Two distinct distance notions are needed:

* **routing distance** between segments, for the vehicle simulator and the
  HMM map matcher's transition model;
* **road-network distance between two matched positions** (segment id +
  moving ratio), the metric the paper uses for MAE/RMSE (§VI-A2).

Both reduce to single-source Dijkstra over a graph whose nodes are
segments and whose edge weight from a to b is the length of b (entering b
means traversing it).  Single-source results are memoized, so evaluating a
test set touches each distinct source segment once.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .network import RoadNetwork

_INF = float("inf")


class ShortestPathEngine:
    """Dijkstra with per-source memoization over a :class:`RoadNetwork`."""

    def __init__(self, network: RoadNetwork, cache_limit: int = 4096) -> None:
        self.network = network
        self._cache: Dict[int, np.ndarray] = {}
        self._cache_limit = cache_limit
        self._lengths = np.array([s.length for s in network.segments])

    # ------------------------------------------------------------------
    # Single-source distances (segment granularity)
    # ------------------------------------------------------------------
    def distances_from(self, source: int) -> np.ndarray:
        """dist[j] = meters traveled *after leaving* ``source`` until the
        end of segment j (``dist[source] = 0`` at the end of source)."""
        cached = self._cache.get(source)
        if cached is not None:
            return cached

        n = self.network.num_segments
        dist = np.full(n, _INF)
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v in self.network.out_neighbors[u]:
                nd = d + self._lengths[v]
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))

        if len(self._cache) >= self._cache_limit:
            self._cache.pop(next(iter(self._cache)))
        self._cache[source] = dist
        return dist

    def route(self, source: int, target: int) -> Optional[List[int]]:
        """Segment sequence from ``source`` to ``target`` (inclusive both),
        or ``None`` when unreachable."""
        if source == target:
            return [source]
        n = self.network.num_segments
        dist = np.full(n, _INF)
        parent = np.full(n, -1, dtype=np.int64)
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if u == target:
                break
            if d > dist[u]:
                continue
            for v in self.network.out_neighbors[u]:
                nd = d + self._lengths[v]
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        if not np.isfinite(dist[target]):
            return None
        path = [target]
        while path[-1] != source:
            path.append(int(parent[path[-1]]))
        return path[::-1]

    # ------------------------------------------------------------------
    # Position-level distances (segment + moving ratio)
    # ------------------------------------------------------------------
    def position_distance(
        self, seg_a: int, ratio_a: float, seg_b: int, ratio_b: float
    ) -> float:
        """Road-network travel distance from position a to position b.

        Directed: follows traffic flow.  Same-segment forward moves cost
        ``(r_b - r_a) * len``; anything else routes through the graph.
        Returns ``inf`` when b is unreachable from a.
        """
        lengths = self._lengths
        if seg_a == seg_b and ratio_b >= ratio_a:
            return float((ratio_b - ratio_a) * lengths[seg_a])

        remaining = (1.0 - ratio_a) * lengths[seg_a]
        dist = self.distances_from(seg_a)
        best = _INF
        # Enter seg_b directly from some predecessor: distance to that
        # predecessor's end + partial seg_b.
        for pred in self.network.in_neighbors[seg_b]:
            base = 0.0 if pred == seg_a else dist[pred]
            if np.isfinite(base):
                best = min(best, remaining + base + ratio_b * lengths[seg_b])
        # Loop case: leave seg_a, travel back onto seg_a, continue to b.
        if seg_a == seg_b:
            for pred in self.network.in_neighbors[seg_b]:
                if np.isfinite(dist[pred]):
                    best = min(best, remaining + dist[pred] + ratio_b * lengths[seg_b])
        return float(best)

    def symmetric_position_distance(
        self, seg_a: int, ratio_a: float, seg_b: int, ratio_b: float
    ) -> float:
        """min(d(a→b), d(b→a)) — robust for error metrics on one-way pairs.

        Falls back to straight-line distance when the graph is disconnected
        (mirrors how evaluation scripts handle broken HMM outputs).
        """
        forward = self.position_distance(seg_a, ratio_a, seg_b, ratio_b)
        backward = self.position_distance(seg_b, ratio_b, seg_a, ratio_a)
        value = min(forward, backward)
        if np.isfinite(value):
            return value
        pa = self.network.position(seg_a, ratio_a)
        pb = self.network.position(seg_b, ratio_b)
        return float(np.hypot(*(pa - pb)))

    def route_length(self, path: Sequence[int]) -> float:
        """Total length of a segment sequence (including the first)."""
        return float(sum(self._lengths[s] for s in path))
