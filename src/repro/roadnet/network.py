"""Road network model (paper Definition 1).

A road network is a directed graph whose *nodes are road segments*; an edge
(e_i, e_j) exists iff traffic can flow directly from segment e_i onto
segment e_j.  Each segment carries polyline geometry in the local metric
frame, a road level (functional class, 0-7), and an ``elevated`` flag used
by the §VI-D robustness experiments.

The class also owns the derived artifacts every other subsystem needs:

* static features ``f_r`` (8-way one-hot level + length + in/out degree,
  |f_r| = 11 as in §VI-A3);
* an R-tree over segment bounding boxes for δ-radius lookups;
* projection of GPS points onto segments and the inverse
  (segment, ratio) → (x, y) mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.distance import point_along_polyline, polyline_length, project_point_to_polyline
from ..geo.grid import Grid
from ..geo.rtree import RTree
from ..nn.graph import add_self_loops, csr_from_lists, ragged_positions

NUM_ROAD_LEVELS = 8


@dataclass
class RoadSegment:
    """One directed road segment."""

    segment_id: int
    polyline: np.ndarray  # (k, 2) meters
    level: int = 2
    elevated: bool = False
    length: float = field(init=False)

    def __post_init__(self) -> None:
        self.polyline = np.asarray(self.polyline, dtype=np.float64)
        if self.polyline.ndim != 2 or len(self.polyline) < 2:
            raise ValueError("segment polyline needs at least two vertices")
        if not 0 <= self.level < NUM_ROAD_LEVELS:
            raise ValueError(f"road level must be in [0, {NUM_ROAD_LEVELS}), got {self.level}")
        self.length = polyline_length(self.polyline)

    @property
    def start(self) -> np.ndarray:
        return self.polyline[0]

    @property
    def end(self) -> np.ndarray:
        return self.polyline[-1]

    def bbox(self) -> Tuple[float, float, float, float]:
        xs, ys = self.polyline[:, 0], self.polyline[:, 1]
        return float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max())

    def position_at(self, ratio: float) -> np.ndarray:
        """(x, y) at moving-ratio ``ratio`` along the segment."""
        return point_along_polyline(self.polyline, ratio)


class RoadNetwork:
    """Directed graph of road segments with spatial lookup support."""

    def __init__(self, segments: Sequence[RoadSegment], edges: Iterable[Tuple[int, int]]) -> None:
        self.segments: List[RoadSegment] = list(segments)
        ids = [s.segment_id for s in self.segments]
        if ids != list(range(len(ids))):
            raise ValueError("segments must be numbered 0..n-1 in order")

        self.edges: List[Tuple[int, int]] = []
        seen: set[Tuple[int, int]] = set()
        for a, b in edges:
            if a == b:
                continue
            if not (0 <= a < len(ids) and 0 <= b < len(ids)):
                raise IndexError(f"edge ({a}, {b}) references a missing segment")
            if (a, b) in seen:
                continue
            seen.add((a, b))
            self.edges.append((a, b))

        self.out_neighbors: List[List[int]] = [[] for _ in ids]
        self.in_neighbors: List[List[int]] = [[] for _ in ids]
        for a, b in self.edges:
            self.out_neighbors[a].append(b)
            self.in_neighbors[b].append(a)

        self._rtree: Optional[RTree] = None
        self._flat_geom: Optional[Tuple[np.ndarray, ...]] = None
        self._csr_out: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Zero-copy construction over externally owned arrays
    # ------------------------------------------------------------------
    #: Object-level views a packed network materializes on first access
    #: (see __getattr__): the array forms answer every hot-path query, so
    #: these python structures only exist if a caller actually asks.
    _LAZY_ATTRS = ("segments", "edges", "out_neighbors", "in_neighbors")

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "RoadNetwork":
        """A network over the array snapshot of :meth:`export_arrays`,
        without copying.

        The arrays may be externally owned — memory-mapped, write-
        protected, shared across processes (see
        :mod:`repro.roadnet.artifacts`).  Every derived structure the
        query hot paths use (CSR neighbors, flat sub-segment geometry,
        R-tree scan arrays, static features) is installed directly from
        the snapshot; the python object views (``segments``, ``edges``,
        neighbor lists) materialize lazily on first attribute access.
        Queries are bit-identical to the exporting network's.
        """
        network = object.__new__(cls)
        state = network.__dict__
        state["_packed"] = arrays
        state["_num_segments"] = int(len(arrays["poly_indptr"]) - 1)
        state["_csr_out"] = (
            np.asarray(arrays["out_indptr"], dtype=np.int64),
            np.asarray(arrays["out_indices"], dtype=np.int64),
            np.asarray(arrays["out_degree"], dtype=np.int64),
        )
        state["_csr_in"] = (
            np.asarray(arrays["in_indptr"], dtype=np.int64),
            np.asarray(arrays["in_indices"], dtype=np.int64),
        )
        state["_flat_geom"] = (
            np.asarray(arrays["geom_indptr"], dtype=np.int64),
            np.asarray(arrays["geom_starts"], dtype=np.float64),
            np.asarray(arrays["geom_vectors"], dtype=np.float64),
            np.asarray(arrays["geom_length2"], dtype=np.float64),
        )
        state["_rtree"] = RTree.from_arrays(
            arrays["rtree_bboxes"], arrays["rtree_scan_order"], arrays["rtree_scan_boxes"]
        )
        state["_bounds"] = tuple(float(v) for v in arrays["bounds"])
        state["_static"] = np.asarray(arrays["static"], dtype=np.float64)
        state["_edge_array"] = np.asarray(arrays["edge_index"], dtype=np.int64)
        state["_edge_loops"] = np.asarray(arrays["edge_index_loops"], dtype=np.int64)
        state["_grid_seq_cache"] = {}
        return network

    def export_arrays(self) -> Dict[str, np.ndarray]:
        """Flat ``name -> array`` snapshot of every immutable structure a
        serving replica needs — the exact inverse of :meth:`from_arrays`.

        Includes the derived state that is expensive to rebuild (flat
        sub-segment geometry, R-tree scan order, static features, the
        self-looped edge index) so a reloaded network answers its first
        query without any build work.
        """
        n = self.num_segments
        counts = np.fromiter((len(s.polyline) for s in self.segments),
                             dtype=np.int64, count=n)
        poly_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=poly_indptr[1:])
        poly_points = (np.concatenate([s.polyline for s in self.segments])
                       if n else np.zeros((0, 2), dtype=np.float64))
        out_indptr, out_indices, out_degree = self.csr_out_neighbors()
        in_indptr, in_indices, _ = csr_from_lists(self.in_neighbors)
        geom_indptr, geom_starts, geom_vectors, geom_length2 = self._flat_geometry()
        rtree = self.rtree
        if rtree.root is not None:
            scan_order, scan_boxes = rtree._scan_arrays()
        else:
            scan_order = np.zeros(0, dtype=np.int64)
            scan_boxes = np.zeros((0, 4), dtype=np.float64)
        return {
            "poly_indptr": poly_indptr,
            "poly_points": poly_points,
            "levels": np.array([s.level for s in self.segments], dtype=np.int64),
            "elevated": np.array([s.elevated for s in self.segments], dtype=np.bool_),
            "edge_index": self.edge_index(),
            "edge_index_loops": self.edge_index_loops(),
            "out_indptr": out_indptr,
            "out_indices": out_indices,
            "out_degree": out_degree,
            "in_indptr": in_indptr,
            "in_indices": in_indices,
            "geom_indptr": geom_indptr,
            "geom_starts": geom_starts,
            "geom_vectors": geom_vectors,
            "geom_length2": geom_length2,
            "rtree_bboxes": rtree._bboxes,
            "rtree_scan_order": scan_order,
            "rtree_scan_boxes": scan_boxes,
            "bounds": np.asarray(self.bounds(), dtype=np.float64),
            "static": self.static_features(),
        }

    def __getattr__(self, name: str):
        # Only packed (from_arrays) instances materialize object views
        # lazily; on ordinary instances a missing attribute is a genuine
        # miss.  __getattr__ is only consulted after __dict__, so built
        # networks never pay this path.
        if name in RoadNetwork._LAZY_ATTRS and "_packed" in self.__dict__:
            value = self._materialize_lazy(name)
            self.__dict__[name] = value
            return value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def _materialize_lazy(self, name: str):
        arrays = self.__dict__["_packed"]
        n = self.num_segments
        if name == "segments":
            indptr = arrays["poly_indptr"]
            points = arrays["poly_points"]
            levels = arrays["levels"]
            elevated = arrays["elevated"]
            # Polylines stay views of the packed point table (RoadSegment
            # never copies a float64 input) — read-only when the table is.
            return [
                RoadSegment(i, points[indptr[i]:indptr[i + 1]],
                            level=int(levels[i]), elevated=bool(elevated[i]))
                for i in range(n)
            ]
        if name == "edges":
            edge = arrays["edge_index"]
            return list(zip(edge[0].tolist(), edge[1].tolist()))
        if name == "out_neighbors":
            indptr, indices, _ = self._csr_out
            return [indices[indptr[i]:indptr[i + 1]].tolist() for i in range(n)]
        if name == "in_neighbors":
            indptr, indices = self.__dict__["_csr_in"]
            return [indices[indptr[i]:indptr[i + 1]].tolist() for i in range(n)]
        raise AttributeError(name)  # pragma: no cover - guarded by caller

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_segments(self) -> int:
        count = self.__dict__.get("_num_segments")
        if count is None:
            count = len(self.segments)
            self.__dict__["_num_segments"] = count
        return count

    def __len__(self) -> int:
        return self.num_segments

    def segment(self, segment_id: int) -> RoadSegment:
        return self.segments[segment_id]

    def edge_index(self) -> np.ndarray:
        """(2, E) array of directed segment-to-segment edges."""
        packed = self.__dict__.get("_edge_array")
        if packed is not None:
            return packed
        if not self.edges:
            return np.zeros((2, 0), dtype=np.int64)
        return np.asarray(self.edges, dtype=np.int64).T

    def edge_index_loops(self) -> np.ndarray:
        """(2, E + V) edge index with self-loops appended — memoized, so
        every model over this network shares one array instead of each
        encoder concatenating its own copy.  Treat it as read-only."""
        cached = self.__dict__.get("_edge_loops")
        if cached is None:
            cached = add_self_loops(self.edge_index(), self.num_segments)
            self.__dict__["_edge_loops"] = cached
        return cached

    def csr_out_neighbors(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached CSR view of the out-neighbor lists: (indptr, indices,
        degree).  Segment ``s``'s successors are
        ``indices[indptr[s]:indptr[s+1]]`` — the array form every
        vectorized consumer (sub-graph generation, k-hop reachability)
        gathers from."""
        if self._csr_out is None:
            self._csr_out = csr_from_lists(self.out_neighbors)
        return self._csr_out

    def bounds(self) -> Tuple[float, float, float, float]:
        cached = self.__dict__.get("_bounds")
        if cached is not None:
            return cached
        boxes = np.asarray([s.bbox() for s in self.segments])
        cached = (
            float(boxes[:, 0].min()),
            float(boxes[:, 1].min()),
            float(boxes[:, 2].max()),
            float(boxes[:, 3].max()),
        )
        self.__dict__["_bounds"] = cached
        return cached

    def make_grid(self, cell_size: float = 50.0, margin: float = 100.0) -> Grid:
        """A grid covering the network with ``margin`` meters of padding."""
        x0, y0, x1, y1 = self.bounds()
        return Grid(x0 - margin, y0 - margin, x1 + margin, y1 + margin, cell_size)

    def grid_sequences(self, grid: Grid) -> Tuple[np.ndarray, np.ndarray]:
        """Padded ``(V, L)`` grid-cell index rows plus validity mask for
        ``grid`` — the GridGNN input matrices (Eq. 1), memoized per grid.

        Walking every polyline through :meth:`Grid.traverse_polyline` is a
        python loop over all segments, and the result is a static property
        of geometry + grid; memoizing it here (rather than per encoder)
        means N models/replicas over one network share one matrix pair,
        and packed networks can preload the snapshot a
        :class:`~repro.roadnet.artifacts.CityArtifacts` bundle carries.
        Treat the returned arrays as read-only.
        """
        key = (grid.x0, grid.y0, grid.x1, grid.y1, grid.cell_size)
        cache = self.__dict__.setdefault("_grid_seq_cache", {})
        if key not in cache:
            sequences: List[np.ndarray] = []
            for segment in self.segments:
                cells = grid.traverse_polyline(segment.polyline)
                flat = np.asarray([grid.flat_index(r, c) for r, c in cells],
                                  dtype=np.int64)
                sequences.append(flat)
            max_len = max((len(s) for s in sequences), default=1)
            seq = np.zeros((self.num_segments, max_len), dtype=np.int64)
            mask = np.zeros((self.num_segments, max_len), dtype=np.float64)
            for i, row in enumerate(sequences):
                seq[i, : len(row)] = row
                mask[i, : len(row)] = 1.0
            cache[key] = (seq, mask)
        return cache[key]

    def preload_grid_sequences(self, grid: Grid, seq: np.ndarray,
                               mask: np.ndarray) -> None:
        """Install a previously exported :meth:`grid_sequences` result so
        the polyline walk never runs (artifact warm-load path)."""
        key = (grid.x0, grid.y0, grid.x1, grid.y1, grid.cell_size)
        cache = self.__dict__.setdefault("_grid_seq_cache", {})
        cache[key] = (np.asarray(seq, dtype=np.int64),
                      np.asarray(mask, dtype=np.float64))

    # ------------------------------------------------------------------
    # Static features (f_r of §IV-B, size 11)
    # ------------------------------------------------------------------
    def static_features(self) -> np.ndarray:
        """Per-segment features: one-hot level (8) + length + in/out degree.

        Packed networks return the (read-only, shared) exported matrix;
        built networks compute a fresh caller-owned copy.
        """
        packed = self.__dict__.get("_static")
        if packed is not None:
            return packed
        n = self.num_segments
        features = np.zeros((n, NUM_ROAD_LEVELS + 3), dtype=np.float64)
        lengths = np.array([s.length for s in self.segments])
        length_scale = max(float(lengths.max()), 1.0)
        for i, seg in enumerate(self.segments):
            features[i, seg.level] = 1.0
            features[i, NUM_ROAD_LEVELS] = seg.length / length_scale
            features[i, NUM_ROAD_LEVELS + 1] = len(self.in_neighbors[i])
            features[i, NUM_ROAD_LEVELS + 2] = len(self.out_neighbors[i])
        return features

    # ------------------------------------------------------------------
    # Spatial queries
    # ------------------------------------------------------------------
    @property
    def rtree(self) -> RTree:
        if self._rtree is None:
            self._rtree = RTree(np.asarray([s.bbox() for s in self.segments]))
        return self._rtree

    def _flat_geometry(self) -> Tuple[np.ndarray, ...]:
        """Lazy flat view of every polyline sub-segment of every segment.

        Returns ``(indptr, starts, vectors, length²)`` where segment ``s``'s
        sub-segments occupy rows ``indptr[s]:indptr[s+1]``.  This is what
        makes :meth:`segment_distances` one vectorized pass instead of a
        Python loop calling ``project_point_to_polyline`` per candidate —
        the single hottest loop in constraint-mask / prior / sub-graph
        construction.
        """
        if getattr(self, "_flat_geom", None) is None:
            counts = np.fromiter((len(s.polyline) - 1 for s in self.segments),
                                 dtype=np.int64, count=len(self.segments))
            indptr = np.zeros(len(self.segments) + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            starts = np.concatenate([s.polyline[:-1] for s in self.segments])
            ends = np.concatenate([s.polyline[1:] for s in self.segments])
            vectors = ends - starts
            length2 = vectors[:, 0] ** 2 + vectors[:, 1] ** 2
            self._flat_geom = (indptr, starts, vectors, length2)
        return self._flat_geom

    def segment_distances(self, x: float, y: float,
                          segment_ids: np.ndarray) -> np.ndarray:
        """Exact point-to-geometry distances for an array of segment ids.

        Identical math to ``project_point_to_polyline`` (clamp the
        projection parameter per sub-segment, take the per-segment minimum)
        evaluated over all candidates' sub-segments in one vectorized pass.
        """
        indptr, starts, vectors, length2 = self._flat_geometry()
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        if not len(segment_ids):
            return np.zeros(0)
        counts = indptr[segment_ids + 1] - indptr[segment_ids]
        rows = ragged_positions(indptr[segment_ids], counts)
        sub_starts = starts[rows]
        sub_vecs = vectors[rows]
        rel_x = x - sub_starts[:, 0]
        rel_y = y - sub_starts[:, 1]
        t = (rel_x * sub_vecs[:, 0] + rel_y * sub_vecs[:, 1]) / np.maximum(
            length2[rows], 1e-12)
        t = np.clip(t, 0.0, 1.0)
        foot = sub_starts + t[:, None] * sub_vecs
        delta = np.array([x, y])[None, :] - foot
        dists = np.linalg.norm(delta, axis=1)
        group_offsets = np.zeros(len(segment_ids), dtype=np.int64)
        np.cumsum(counts[:-1], out=group_offsets[1:])
        return np.minimum.reduceat(dists, group_offsets)

    def segments_within_arrays(self, x: float, y: float,
                               radius: float) -> Tuple[np.ndarray, np.ndarray]:
        """(ids, distances) of segments within ``radius``, nearest first.

        The array-native twin of :meth:`segments_within` used by the hot
        callers (constraint masks, decode prior, sub-graph generation); the
        sort is stable over the R-tree candidate order, matching the
        original list-based implementation tie for tie.
        """
        candidates = self.rtree.query_radius(x, y, radius)
        if not candidates:
            return (np.zeros(0, dtype=np.int64), np.zeros(0))
        ids = np.asarray(candidates, dtype=np.int64)
        dists = self.segment_distances(x, y, ids)
        keep = dists <= radius
        ids, dists = ids[keep], dists[keep]
        order = np.argsort(dists, kind="stable")
        return ids[order], dists[order]

    def segments_within_batch(self, points: np.ndarray,
                              radius: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR ``(indptr, ids, dists)`` of segments within ``radius`` of
        each row of ``points``, in R-tree candidate order (unsorted).

        The multi-point twin of :meth:`segments_within_arrays` for callers
        that scatter by segment id and don't need the nearest-first sort
        (the decode prior).  Every arithmetic op is elementwise identical
        to :meth:`segment_distances`, so the distances — and anything
        derived from them — are bit-equal to Q separate single-point
        calls.
        """
        points = np.asarray(points, dtype=np.float64)
        indptr, ids = self.rtree.query_radius_many(points, radius)
        if not len(ids):
            return indptr, ids, np.zeros(0)
        g_indptr, starts, vectors, length2 = self._flat_geometry()
        ids = np.asarray(ids, dtype=np.int64)
        # Per-candidate query coordinates, expanded to sub-segment rows.
        px = np.repeat(points[:, 0], np.diff(indptr))
        py = np.repeat(points[:, 1], np.diff(indptr))
        counts = g_indptr[ids + 1] - g_indptr[ids]
        rows = ragged_positions(g_indptr[ids], counts)
        sub_starts = starts[rows]
        sub_vecs = vectors[rows]
        sub_px = np.repeat(px, counts)
        sub_py = np.repeat(py, counts)
        rel_x = sub_px - sub_starts[:, 0]
        rel_y = sub_py - sub_starts[:, 1]
        t = (rel_x * sub_vecs[:, 0] + rel_y * sub_vecs[:, 1]) / np.maximum(
            length2[rows], 1e-12)
        t = np.clip(t, 0.0, 1.0)
        foot = sub_starts + t[:, None] * sub_vecs
        delta = np.stack([sub_px, sub_py], axis=1) - foot
        dists = np.linalg.norm(delta, axis=1)
        group_offsets = np.zeros(len(ids), dtype=np.int64)
        np.cumsum(counts[:-1], out=group_offsets[1:])
        seg_dists = np.minimum.reduceat(dists, group_offsets)
        keep = seg_dists <= radius
        kept_cum = np.concatenate([[0], np.cumsum(keep, dtype=np.int64)])
        out_indptr = kept_cum[indptr]
        return out_indptr, ids[keep], seg_dists[keep]

    def segments_within(self, x: float, y: float, radius: float) -> List[Tuple[int, float]]:
        """(segment_id, exact distance) pairs within ``radius`` of (x, y)."""
        ids, dists = self.segments_within_arrays(x, y, radius)
        return [(int(sid), float(dist)) for sid, dist in zip(ids, dists)]

    def nearest_segment(self, x: float, y: float, search_radius: float = 200.0) -> Tuple[int, float, float]:
        """Closest segment to (x, y): returns (segment_id, distance, ratio).

        Expands the search radius geometrically until a hit is found, so it
        always succeeds on a non-empty network.
        """
        radius = search_radius
        for _ in range(18):
            hits = self.segments_within(x, y, radius)
            if hits:
                sid, dist = hits[0]
                _, ratio, _ = project_point_to_polyline(
                    np.array([x, y]), self.segments[sid].polyline
                )
                return sid, dist, ratio
            radius *= 2.0
        raise RuntimeError(f"no segment found near ({x:.1f}, {y:.1f})")

    def project(self, x: float, y: float, segment_id: int) -> Tuple[float, float]:
        """(distance, ratio) of (x, y) projected onto a given segment."""
        dist, ratio, _ = project_point_to_polyline(
            np.array([x, y]), self.segments[segment_id].polyline
        )
        return dist, ratio

    def position(self, segment_id: int, ratio: float) -> np.ndarray:
        """(x, y) of the point at ``ratio`` along ``segment_id``."""
        return self.segments[segment_id].position_at(ratio)

    # ------------------------------------------------------------------
    # Sub-network extraction (used by dataset scaling experiments)
    # ------------------------------------------------------------------
    def subnetwork(self, keep_ids: Sequence[int]) -> Tuple["RoadNetwork", Dict[int, int]]:
        """The induced sub-network on ``keep_ids``; returns (net, old→new)."""
        keep = sorted(set(int(i) for i in keep_ids))
        mapping = {old: new for new, old in enumerate(keep)}
        segments = [
            RoadSegment(mapping[old], self.segments[old].polyline.copy(),
                        self.segments[old].level, self.segments[old].elevated)
            for old in keep
        ]
        edges = [
            (mapping[a], mapping[b])
            for a, b in self.edges
            if a in mapping and b in mapping
        ]
        return RoadNetwork(segments, edges), mapping


def merge_networks(networks: Sequence[RoadNetwork],
                   origins: Optional[Sequence[Tuple[float, float]]] = None,
                   ) -> RoadNetwork:
    """One network containing every input network, each translated to its
    origin.

    The result is the *monolithic* alternative to per-region sharding: one
    graph spanning all regions, segment ids renumbered region by region in
    input order, with no inter-region edges (the regions are disjoint road
    systems).  ``benchmarks/bench_cluster.py`` uses it as the single-shard
    baseline a ``repro.cluster`` deployment is measured against.
    """
    if not networks:
        raise ValueError("merge_networks needs at least one network")
    if origins is None:
        origins = [(0.0, 0.0)] * len(networks)
    if len(origins) != len(networks):
        raise ValueError(f"{len(networks)} networks but {len(origins)} origins")

    segments: List[RoadSegment] = []
    edges: List[Tuple[int, int]] = []
    offset = 0
    for network, (ox, oy) in zip(networks, origins):
        shift = np.array([float(ox), float(oy)])
        for segment in network.segments:
            segments.append(RoadSegment(
                offset + segment.segment_id, segment.polyline + shift,
                level=segment.level, elevated=segment.elevated,
            ))
        edges.extend((a + offset, b + offset) for a, b in network.edges)
        offset += network.num_segments
    return RoadNetwork(segments, edges)
