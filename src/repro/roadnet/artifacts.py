"""Zero-copy shared-memory city artifacts for serving.

A :class:`CityArtifacts` bundle freezes the *immutable* per-city serving
state — the road network's CSR neighbor arrays and flat sub-segment
table, the grid parameters and per-segment grid-cell sequences, the
k-hop reachability closure, the model's parameters/buffers, and the
frozen model's precomputed road representation X_road — into one
content-hashed ``.npz`` directory written by
:func:`repro.nn.serialization.save_archive` (uncompressed, 64-byte
aligned).

Reloading with ``mmap=True`` maps every array read-only straight out of
the page cache: N replicas (and N processes) of a city share one
physical copy of the state instead of each rebuilding and privately
holding it, so serving memory stays ~1x a single replica as the replica
count grows.  The :func:`~repro.roadnet.network.RoadNetwork.from_arrays`
family of constructors guarantees bit-identical query and recovery
outputs versus the build-in-memory path; ``tests/test_artifacts.py``
and the ``bench_cluster`` memory-scaling section enforce both the
equivalence and the RSS gate.

Layout inside the archive (flat names, dotted namespaces):

* ``net.*`` — :meth:`RoadNetwork.export_arrays` snapshot;
* ``grid.params`` / ``grid.seq`` / ``grid.seq_mask`` — the serving grid
  and its padded per-segment cell sequences (GridGNN's Eq. 1 input);
* ``reach.indptr`` / ``reach.indices`` — reachability CSR closure;
* ``model.*`` — parameters and buffers (``Module.state_dict`` names);
* ``cache.x_road`` — the eval-mode road-encoder output, a pure function
  of the frozen weights, precomputed once at build time.

``manifest.json`` carries the format version, a sha256 content hash
over every array, and the non-array metadata (model config, hop count,
escape weight) needed to rebuild live objects.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

import numpy as np

from ..geo.grid import Grid
from ..nn.serialization import load_archive, save_archive
from ..nn.tensor import no_grad
from .network import RoadNetwork

# repro.core imports live inside the functions that need them:
# core.decoder imports repro.trajectory which imports this package, so a
# module-level import would re-enter repro.core.decoder while it is
# still initializing (whichever package imports first).

ARCHIVE_NAME = "city.npz"
MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


def content_hash(arrays: Dict[str, np.ndarray]) -> str:
    """sha256 over every array's name, dtype, shape, and raw bytes, in
    sorted name order — the bundle's identity for cache/deploy checks."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        value = np.asarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(repr(value.shape).encode("utf-8"))
        digest.update(np.ascontiguousarray(value).tobytes())
    return digest.hexdigest()


class CityArtifacts:
    """One city's frozen serving state: flat arrays + manifest.

    Accessors (:meth:`network`, :meth:`grid`, :meth:`reachability`,
    :meth:`model_state`, :meth:`road_features`) are memoized, so every
    consumer holding the same ``CityArtifacts`` shares the same live
    objects — identity, not equality — which is what lets a registry
    hand one network/mask/weight set to N models and replicas.
    """

    def __init__(self, arrays: Dict[str, np.ndarray], manifest: Dict,
                 directory: Optional[str] = None) -> None:
        self.arrays = arrays
        self.manifest = manifest
        self.directory = directory
        self._network: Optional[RoadNetwork] = None
        self._grid: Optional[Grid] = None
        self._reachability: Optional[ReachabilityMask] = None
        self._config: Optional[RNTrajRecConfig] = None

    # ------------------------------------------------------------------
    # Build / save / load
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, network: RoadNetwork, grid: Optional[Grid] = None,
              reachability: Optional[ReachabilityMask] = None,
              model=None) -> "CityArtifacts":
        """Freeze ``network`` (and optionally a grid, a reachability mask,
        and a trained model) into an artifact bundle.

        With ``model`` given, the grid and mask default to the model's own
        pinned ones, the state dict is packed under ``model.*``, and the
        eval-mode X_road is computed once and packed under
        ``cache.x_road`` so no replica ever reruns the road encoder.
        """
        arrays: Dict[str, np.ndarray] = {}
        for name, value in network.export_arrays().items():
            arrays["net." + name] = np.asarray(value)
        manifest: Dict = {
            "format": FORMAT_VERSION,
            "num_segments": int(network.num_segments),
        }
        if model is not None and grid is None:
            grid = model.encoder.grid
        if grid is not None:
            arrays["grid.params"] = grid.to_array()
            seq, seq_mask = network.grid_sequences(grid)
            arrays["grid.seq"] = seq
            arrays["grid.seq_mask"] = seq_mask
        if model is not None and reachability is None:
            reachability = model.reachability  # builds lazily; None if hops<=0
        if reachability is not None:
            arrays["reach.indptr"] = reachability._indptr
            arrays["reach.indices"] = reachability._indices
            manifest["reachability"] = {
                "hops": int(reachability.hops),
                "escape_weight": float(reachability.escape_weight),
            }
        if model is not None:
            for name, value in model.state_dict().items():
                arrays["model." + name] = value
            from dataclasses import asdict
            manifest["model_config"] = asdict(model.config)
            was_training = model.training
            if was_training:
                model.eval()
            with no_grad():
                arrays["cache.x_road"] = np.asarray(
                    model.encoder._road_features().data)
            if was_training:
                model.train()
        manifest["content_hash"] = content_hash(arrays)
        return cls(arrays, manifest)

    def save(self, directory: str) -> str:
        """Write ``city.npz`` + ``manifest.json`` under ``directory``."""
        os.makedirs(directory, exist_ok=True)
        save_archive(self.arrays, os.path.join(directory, ARCHIVE_NAME))
        with open(os.path.join(directory, MANIFEST_NAME), "w") as handle:
            json.dump(self.manifest, handle, indent=1)
        self.directory = directory
        return directory

    @staticmethod
    def exists(directory: str) -> bool:
        return (os.path.exists(os.path.join(directory, ARCHIVE_NAME))
                and os.path.exists(os.path.join(directory, MANIFEST_NAME)))

    @classmethod
    def load(cls, directory: str, mmap: bool = True,
             verify: bool = False) -> "CityArtifacts":
        """Reload a saved bundle.

        ``mmap=True`` (the default, and the point of the module) maps
        every array as a read-only page-cache-backed view; ``mmap=False``
        materializes private writable copies — the in-memory baseline the
        benchmarks compare against.  ``verify=True`` re-hashes the arrays
        against the manifest (reads every byte; off by default).
        """
        with open(os.path.join(directory, MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        if manifest.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported artifact format {manifest.get('format')!r} "
                f"in {directory} (expected {FORMAT_VERSION})")
        arrays = load_archive(os.path.join(directory, ARCHIVE_NAME), mmap=mmap)
        if verify and content_hash(arrays) != manifest.get("content_hash"):
            raise ValueError(f"artifact content hash mismatch in {directory}")
        return cls(arrays, manifest, directory)

    # ------------------------------------------------------------------
    # Memoized live views
    # ------------------------------------------------------------------
    @property
    def content_digest(self) -> Optional[str]:
        return self.manifest.get("content_hash")

    def network(self) -> RoadNetwork:
        """The shared zero-copy road network (one instance per bundle)."""
        if self._network is None:
            net_arrays = {name[4:]: value for name, value in self.arrays.items()
                          if name.startswith("net.")}
            network = RoadNetwork.from_arrays(net_arrays)
            grid = self.grid()
            if grid is not None and "grid.seq" in self.arrays:
                network.preload_grid_sequences(
                    grid, self.arrays["grid.seq"], self.arrays["grid.seq_mask"])
            self._network = network
        return self._network

    def grid(self) -> Optional[Grid]:
        if self._grid is None and "grid.params" in self.arrays:
            self._grid = Grid.from_array(self.arrays["grid.params"])
        return self._grid

    def reachability(self) -> Optional["ReachabilityMask"]:
        if self._reachability is None and "reach.indptr" in self.arrays:
            from ..core.decoder import ReachabilityMask
            meta = self.manifest.get("reachability", {})
            self._reachability = ReachabilityMask.from_arrays(
                self.arrays["reach.indptr"], self.arrays["reach.indices"],
                hops=int(meta.get("hops", 2)),
                escape_weight=float(meta.get("escape_weight", 0.02)),
            )
        return self._reachability

    def has_model(self) -> bool:
        return any(name.startswith("model.") for name in self.arrays)

    def model_state(self) -> Dict[str, np.ndarray]:
        """The packed state dict as raw (possibly read-only) views — pair
        with ``load_state_dict(..., copy=False)`` for zero-copy adoption."""
        return {name[6:]: value for name, value in self.arrays.items()
                if name.startswith("model.")}

    def model_config(self) -> Optional["RNTrajRecConfig"]:
        if self._config is None and "model_config" in self.manifest:
            from ..core.config import RNTrajRecConfig
            fields = self.manifest["model_config"]
            known = set(RNTrajRecConfig.__dataclass_fields__)
            self._config = RNTrajRecConfig(
                **{k: v for k, v in fields.items() if k in known})
        return self._config

    def road_features(self) -> Optional[np.ndarray]:
        """The precomputed eval-mode X_road matrix, if packed."""
        return self.arrays.get("cache.x_road")
