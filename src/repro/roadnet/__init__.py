"""Road network substrate: model, synthetic generator, shortest paths."""

from .generator import CityConfig, generate_city
from .network import NUM_ROAD_LEVELS, RoadNetwork, RoadSegment
from .shortest_path import ShortestPathEngine

__all__ = [
    "CityConfig",
    "generate_city",
    "NUM_ROAD_LEVELS",
    "RoadNetwork",
    "RoadSegment",
    "ShortestPathEngine",
]
