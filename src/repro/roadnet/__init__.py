"""Road network substrate: model, generator, shortest paths, artifacts."""

from .generator import CityConfig, generate_city
from .network import NUM_ROAD_LEVELS, RoadNetwork, RoadSegment, merge_networks
from .shortest_path import ShortestPathEngine
# Imported last: artifacts reaches into repro.core submodules, which in
# turn import repro.roadnet.network — every name above must already be
# bound when that cycle re-enters this partially initialized package.
from .artifacts import CityArtifacts

__all__ = [
    "CityArtifacts",
    "CityConfig",
    "generate_city",
    "merge_networks",
    "NUM_ROAD_LEVELS",
    "RoadNetwork",
    "RoadSegment",
    "ShortestPathEngine",
]
