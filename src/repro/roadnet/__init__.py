"""Road network substrate: model, synthetic generator, shortest paths."""

from .generator import CityConfig, generate_city
from .network import NUM_ROAD_LEVELS, RoadNetwork, RoadSegment, merge_networks
from .shortest_path import ShortestPathEngine

__all__ = [
    "CityConfig",
    "generate_city",
    "merge_networks",
    "NUM_ROAD_LEVELS",
    "RoadNetwork",
    "RoadSegment",
    "ShortestPathEngine",
]
