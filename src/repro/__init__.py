"""repro — a from-scratch reproduction of RNTrajRec (ICDE 2023).

RNTrajRec recovers high-sample, map-matched trajectories from low-sample
raw GPS traces using a road-network-enhanced spatial-temporal transformer.
This package reimplements the complete system in pure numpy:

* :mod:`repro.nn` — autograd tensor engine and neural network layers;
* :mod:`repro.geo` / :mod:`repro.roadnet` — geometry, grids, R-tree,
  road-network model with a synthetic city generator;
* :mod:`repro.trajectory` — trajectory model, vehicle simulator, datasets;
* :mod:`repro.mapmatch` — Newson-Krumm HMM map matching;
* :mod:`repro.core` — the RNTrajRec model (GridGNN, GPSFormer, GRL,
  constraint-mask decoder, multi-task loss);
* :mod:`repro.train` — the training subsystem: callback-driven
  :class:`~repro.train.Trainer`, exact-resume
  :class:`~repro.train.TrainState` checkpoints, LR schedules, gradient
  accumulation, the data-parallel :class:`~repro.train.ParallelTrainer`,
  and the :func:`~repro.train.fit_and_bundle` train→deploy bridge;
* :mod:`repro.baselines` — the eight comparison methods of the paper;
* :mod:`repro.eval` — MAE/RMSE (road distance), Recall/Precision/F1,
  Accuracy, SR%k;
* :mod:`repro.datasets` / :mod:`repro.experiments` — dataset registry and
  the cached experiment harness behind every benchmark;
* :mod:`repro.serve` — online serving: :class:`~repro.serve.RecoveryService`
  with micro-batching, a hot-swappable model registry, request-level
  caching and telemetry (see ``scripts/serve.py``);
* :mod:`repro.cluster` — sharded multi-city serving: a grid-backed router
  over many per-city services with lazy warm-up, bounded-queue load
  shedding, rolled-up telemetry and per-shard hot swap;
* :mod:`repro.profile` — wall-clock section/counter registry the hot
  paths report to.

Quickstart::

    from repro.datasets import load_dataset
    from repro.core import RNTrajRec
    from repro.train import Trainer, TrainConfig

    data = load_dataset("chengdu", num_trajectories=200)
    model = RNTrajRec(data.network)
    Trainer(model, TrainConfig(epochs=10)).fit(data.train, data.val)
"""

__version__ = "1.0.0"

from . import geo, nn, profile

__all__ = ["geo", "nn", "profile", "__version__"]
