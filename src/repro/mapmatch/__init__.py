"""Map matching substrate (Newson-Krumm HMM)."""

from .hmm import HMMConfig, HMMMapMatcher

__all__ = ["HMMConfig", "HMMMapMatcher"]
