"""Hidden Markov Model map matching (Newson & Krumm [14]).

Used by the two-stage baselines (Linear+HMM, DHTR+HMM) and available as a
general substrate.  Each GPS fix gets candidate segments within a search
radius; emission probability is Gaussian in the projection distance
(σ_z meters) and transition probability is exponential in the absolute
difference between great-circle displacement and route distance (β
meters).  Viterbi decoding yields the most likely segment sequence, then
each fix is projected onto its matched segment for the moving ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from ..trajectory.trajectory import MatchedTrajectory, RawTrajectory


@dataclass(frozen=True)
class HMMConfig:
    """Newson-Krumm parameters."""

    search_radius: float = 60.0
    max_candidates: int = 8
    sigma_z: float = 15.0   # GPS noise scale (meters)
    beta: float = 80.0      # transition tolerance (meters)


class HMMMapMatcher:
    """Viterbi map matcher over a :class:`RoadNetwork`."""

    def __init__(self, network: RoadNetwork, config: HMMConfig | None = None,
                 engine: Optional[ShortestPathEngine] = None) -> None:
        self.network = network
        self.config = config or HMMConfig()
        self.engine = engine or ShortestPathEngine(network)

    # ------------------------------------------------------------------
    def _candidates(self, x: float, y: float) -> List[Tuple[int, float, float]]:
        """(segment, distance, ratio) candidates near a fix, nearest first."""
        cfg = self.config
        radius = cfg.search_radius
        for _ in range(12):
            hits = self.network.segments_within(x, y, radius)
            if hits:
                break
            radius *= 2.0
        else:
            return []
        out: List[Tuple[int, float, float]] = []
        for sid, dist in hits[: cfg.max_candidates]:
            _, ratio = self.network.project(x, y, sid)
            out.append((sid, dist, ratio))
        return out

    def _emission_logp(self, distance: float) -> float:
        sigma = self.config.sigma_z
        return -0.5 * (distance / sigma) ** 2 - np.log(sigma * np.sqrt(2 * np.pi))

    def _transition_logp(self, great_circle: float, route: float) -> float:
        beta = self.config.beta
        delta = abs(great_circle - route)
        return -delta / beta - np.log(beta)

    # ------------------------------------------------------------------
    def match(self, trajectory: RawTrajectory) -> Optional[MatchedTrajectory]:
        """Match a raw trajectory; ``None`` if no candidate chain exists."""
        points = trajectory.xy
        n = len(points)
        if n == 0:
            return None

        layers: List[List[Tuple[int, float, float]]] = []
        for x, y in points:
            cands = self._candidates(float(x), float(y))
            if not cands:
                return None
            layers.append(cands)

        # Viterbi.
        scores = [np.array([self._emission_logp(d) for _, d, _ in layers[0]])]
        backptr: List[np.ndarray] = []
        for t in range(1, n):
            prev_layer, layer = layers[t - 1], layers[t]
            straight = float(np.hypot(*(points[t] - points[t - 1])))
            score = np.full(len(layer), -np.inf)
            back = np.zeros(len(layer), dtype=np.int64)
            for j, (sid_j, dist_j, ratio_j) in enumerate(layer):
                emission = self._emission_logp(dist_j)
                best_val, best_i = -np.inf, 0
                for i, (sid_i, _, ratio_i) in enumerate(prev_layer):
                    route = self.engine.position_distance(sid_i, ratio_i, sid_j, ratio_j)
                    if not np.isfinite(route):
                        continue
                    value = scores[-1][i] + self._transition_logp(straight, route)
                    if value > best_val:
                        best_val, best_i = value, i
                if np.isfinite(best_val):
                    score[j] = best_val + emission
                    back[j] = best_i
            if not np.any(np.isfinite(score)):
                # Broken chain: restart scoring from emissions only, a
                # standard robustness fallback for sparse data.
                score = np.array([self._emission_logp(d) for _, d, _ in layer])
                back = np.argmax(scores[-1]) * np.ones(len(layer), dtype=np.int64)
            scores.append(score)
            backptr.append(back)

        # Decode.
        choice = int(np.argmax(scores[-1]))
        chosen = [choice]
        for back in reversed(backptr):
            choice = int(back[choice])
            chosen.append(choice)
        chosen.reverse()

        segments = np.array([layers[t][c][0] for t, c in enumerate(chosen)], dtype=np.int64)
        ratios = np.array(
            [min(layers[t][c][2], 1.0 - 1e-9) for t, c in enumerate(chosen)], dtype=np.float64
        )
        return MatchedTrajectory(segments, ratios, trajectory.times.copy())
