"""The scenario × metric evaluation matrix.

One :class:`ScenarioCell` per scenario, combining the two ways degraded
input can hurt a deployed recovery service:

* **batch quality** — Table-III metrics from :mod:`repro.eval` over
  samples degraded by the scenario (one-shot recovery accuracy);
* **streaming behavior** — the same degraded fixes replayed one append at
  a time through :class:`~repro.stream.StreamingRecoveryService`, which
  exercises the commit-horizon machinery under gaps and bursts and
  surfaces *revision rate*: the fraction of appends that rewrote an
  already-streamed suffix step.  Sparse or discontinuous input shifts
  each new fix further past the committed frontier, so revisions are the
  session-level signature of degradation that one-shot metrics miss.

The replay also checks exactness: `finalize` must equal the one-shot
`model.recover` over the identical degraded sample, for every scenario —
the PR 6 streaming guarantee must survive degraded observation patterns,
not just clean ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..eval.evaluate import evaluate_model
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from ..stream.service import StreamConfig, StreamingRecoveryService
from ..trajectory.dataset import DatasetConfig, RecoverySample, make_batch
from ..trajectory.trajectory import MatchedTrajectory, RawTrajectory
from .transforms import Scenario, build_scenario_samples


@dataclass
class StreamingReplay:
    """Session-level telemetry from replaying samples fix-by-fix."""

    sessions: int = 0
    appends: int = 0
    revised_appends: int = 0
    decoded_steps: int = 0
    skipped_steps: int = 0
    exact_finalizes: int = 0

    @property
    def revision_rate(self) -> float:
        return self.revised_appends / max(self.appends, 1)

    def as_dict(self) -> Dict[str, float]:
        return {
            "sessions": self.sessions,
            "appends": self.appends,
            "revision_rate": round(self.revision_rate, 4),
            "mean_decoded_steps": round(
                self.decoded_steps / max(self.appends, 1), 3),
            "mean_skipped_steps": round(
                self.skipped_steps / max(self.appends, 1), 3),
            "exact_finalizes": self.exact_finalizes,
        }


@dataclass
class ScenarioCell:
    """One row of the matrix: a scenario evaluated on every metric."""

    scenario: str
    description: str
    accuracy_floor: float
    metrics: Dict[str, float]
    mean_input_fixes: float
    streaming: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "scenario": self.scenario,
            "description": self.description,
            "accuracy_floor": self.accuracy_floor,
            "metrics": self.metrics,
            "mean_input_fixes": self.mean_input_fixes,
            "streaming": self.streaming,
        }


def replay_streaming(
    model,
    samples: Sequence[RecoverySample],
    config: StreamConfig,
    limit: Optional[int] = None,
) -> StreamingReplay:
    """Feed each sample's degraded fixes through ``append`` one at a time.

    Every session is finalized and the finalize output compared
    bit-for-bit against one-shot ``model.recover`` on the same sample
    (same hour/holiday, same observed fixes) — ``exact_finalizes`` counts
    the sessions that matched, and callers gate on it equalling
    ``sessions``.
    """
    replay = StreamingReplay()
    subset = list(samples[:limit]) if limit else list(samples)
    with StreamingRecoveryService.from_model(model, config) as service:
        for sample in subset:
            low = sample.raw_low
            session = service.open(hour=sample.hour, holiday=sample.holiday)
            for i in range(len(low)):
                update = service.append(session, low.xy[i:i + 1],
                                        low.times[i:i + 1])
                replay.appends += 1
                if update.revised_from >= 0:
                    replay.revised_appends += 1
                replay.decoded_steps += update.decoded_steps
                replay.skipped_steps += update.skipped_steps
            response = service.finalize(session)
            replay.sessions += 1
            segments, rates = model.recover(make_batch([sample]))
            if (np.array_equal(response.trajectory.segments, segments[0])
                    and np.array_equal(response.trajectory.ratios, rates[0])):
                replay.exact_finalizes += 1
    return replay


def evaluate_matrix(
    model,
    pairs: Sequence[Tuple[RawTrajectory, MatchedTrajectory]],
    network: RoadNetwork,
    scenarios: Sequence[Scenario],
    config: Optional[DatasetConfig] = None,
    engine: Optional[ShortestPathEngine] = None,
    stream_config: Optional[StreamConfig] = None,
    batch_size: int = 16,
    stream_limit: Optional[int] = 8,
) -> List[ScenarioCell]:
    """Evaluate ``model`` under every scenario; one cell per scenario.

    ``stream_limit`` bounds how many sessions the per-fix streaming
    replay runs per scenario (each append is a suffix re-decode, so a
    full replay of every sample would dominate the benchmark); ``None``
    replays them all.  ``stream_config`` defaults to the dataset's own
    ingest grid so streaming constraints match the batch samples and the
    finalize-exactness check is meaningful.
    """
    config = config or DatasetConfig()
    engine = engine or ShortestPathEngine(network)
    if stream_config is None:
        stream_config = StreamConfig(interval=float("nan"),  # set below
                                     beta=config.beta,
                                     max_gps_error=config.max_gps_error)
    cells: List[ScenarioCell] = []
    for scenario in scenarios:
        samples = build_scenario_samples(pairs, network, scenario, config)
        report = evaluate_model(model, samples, engine, batch_size=batch_size)
        mean_fixes = float(np.mean([s.input_length for s in samples]))
        streaming = replay_streaming(model, samples, _resolve_interval(
            stream_config, samples), limit=stream_limit)
        cells.append(ScenarioCell(
            scenario=scenario.name,
            description=scenario.description,
            accuracy_floor=scenario.accuracy_floor,
            metrics={k: round(v, 4) for k, v in report.metrics.as_row().items()},
            mean_input_fixes=round(mean_fixes, 2),
            streaming=streaming.as_dict(),
        ))
    return cells


def _resolve_interval(stream_config: StreamConfig,
                      samples: Sequence[RecoverySample]) -> StreamConfig:
    """Fill a NaN interval from the samples' own ε_ρ grid spacing."""
    if not np.isnan(stream_config.interval):
        return stream_config
    sample = samples[0]
    span = sample.target.times[-1] - sample.target.times[0]
    interval = float(span / max(len(sample.target) - 1, 1))
    return replace(stream_config, interval=interval)
