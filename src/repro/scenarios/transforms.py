"""Composable, seeded trace degraders.

The paper evaluates recovery only at fixed keep-every-k sampling regimes
(Table 2/3); real GPS feeds degrade in structured ways those regimes never
exercise.  Each :class:`TraceTransform` rewrites the *observation pattern*
of one dense simulator trace — which ε_ρ steps are observed, and with what
coordinates — while the ground-truth target stays the full dense matched
trajectory.  Transforms compose left-to-right inside a :class:`Scenario`,
and every random decision comes from a per-trace generator seeded by
``(scenario.seed, trace_index)``, so a scenario is a pure function of its
inputs: the same pairs always degrade the same way.

The taxonomy (see ``docs/scenarios.md``):

* :class:`FixedRate` — the paper's keep-every-k regime (the baseline);
* :class:`VariableRate` — per-trace *mixed* sampling: each inter-fix
  stride is drawn independently, modeling devices that change report
  rates mid-trip;
* :class:`Outage` — contiguous observation gaps (tunnels, urban canyons,
  radio dead zones): whole windows of fixes vanish, which is structurally
  different from uniform sparsity because the unobserved span carries no
  constraint anchor at all;
* :class:`NoiseBurst` — a contiguous window of fixes whose coordinates
  get extra Gaussian error (multipath in street canyons), degrading the
  Eq. 16 constraint masks rather than removing them.

The **identity law**: a scenario with no transforms reproduces
:func:`repro.trajectory.dataset.build_samples` bit-for-bit (asserted by
``benchmarks/bench_scenarios.py``'s identity gate), because both paths
build samples through the shared
:func:`~repro.trajectory.dataset.sample_from_fixes` constructor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..roadnet.network import RoadNetwork
from ..trajectory.dataset import DatasetConfig, RecoverySample, sample_from_fixes
from ..trajectory.resample import downsample_indices
from ..trajectory.trajectory import MatchedTrajectory, RawTrajectory


@dataclass(frozen=True)
class DegradedTrace:
    """Working state of one trace while transforms degrade it.

    ``keep`` indexes the dense trace (dense index i *is* ε_ρ grid step i,
    since the simulator emits one matched point per grid step); ``xy``
    is the working copy of the dense raw positions that coordinate
    transforms perturb.  Only positions at kept indices ever reach a
    sample.
    """

    raw: RawTrajectory
    matched: MatchedTrajectory
    keep: np.ndarray
    xy: np.ndarray

    @property
    def dense_length(self) -> int:
        return len(self.raw)


class TraceTransform:
    """Base class: rewrite a :class:`DegradedTrace` deterministically."""

    def apply(self, trace: DegradedTrace,
              rng: np.random.Generator) -> DegradedTrace:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedRate(TraceTransform):
    """The paper's keep-every-k regime (always keeps first and last)."""

    keep_every: int = 8

    def apply(self, trace: DegradedTrace,
              rng: np.random.Generator) -> DegradedTrace:
        return replace(trace, keep=downsample_indices(trace.dense_length,
                                                      self.keep_every))


@dataclass(frozen=True)
class VariableRate(TraceTransform):
    """Per-trace mixed sampling: every stride drawn from ``choices``.

    Starts at the first fix and walks forward with independent strides, so
    one trace interleaves dense and sparse stretches; the final fix is
    always kept (recovery stays interpolation, matching
    :func:`~repro.trajectory.resample.downsample_indices`).
    """

    choices: Tuple[int, ...] = (4, 8, 16)

    def __post_init__(self) -> None:
        if not self.choices or any(c < 1 for c in self.choices):
            raise ValueError("stride choices must be positive integers")

    def apply(self, trace: DegradedTrace,
              rng: np.random.Generator) -> DegradedTrace:
        last = trace.dense_length - 1
        keep = [0]
        while keep[-1] < last:
            stride = int(rng.choice(self.choices))
            keep.append(min(keep[-1] + stride, last))
        return replace(trace, keep=np.asarray(keep, dtype=np.int64))


@dataclass(frozen=True)
class Outage(TraceTransform):
    """Contiguous GPS outages: drop every kept fix inside random windows.

    Each of ``gaps`` windows spans ``min_span``..``max_span`` dense steps
    placed uniformly over the trace interior.  The first and last fixes
    are never dropped (the ε_ρ output grid must stay anchored at both
    ends), so a sample always retains at least two fixes.
    """

    gaps: int = 1
    min_span: int = 4
    max_span: int = 10

    def __post_init__(self) -> None:
        if self.gaps < 1:
            raise ValueError("an outage needs at least one gap")
        if not 1 <= self.min_span <= self.max_span:
            raise ValueError("need 1 <= min_span <= max_span")

    def apply(self, trace: DegradedTrace,
              rng: np.random.Generator) -> DegradedTrace:
        last = trace.dense_length - 1
        drop = np.zeros(trace.dense_length, dtype=bool)
        for _ in range(self.gaps):
            span = int(rng.integers(self.min_span, self.max_span + 1))
            span = min(span, max(last - 1, 1))
            start = int(rng.integers(1, max(last - span, 1) + 1))
            drop[start:start + span] = True
        drop[0] = drop[last] = False
        keep = trace.keep[~drop[trace.keep]]
        return replace(trace, keep=keep)


@dataclass(frozen=True)
class NoiseBurst(TraceTransform):
    """A window of extra coordinate noise (urban-canyon multipath).

    Adds zero-mean Gaussian error with ``std`` meters to the working
    positions inside one contiguous window of ``span`` dense steps.  The
    degraded positions feed the Eq. 16 constraint masks, so the model
    sees anchors that actively point at the wrong segments.
    """

    std: float = 60.0
    span: int = 8

    def __post_init__(self) -> None:
        if self.std <= 0 or self.span < 1:
            raise ValueError("noise burst needs std > 0 and span >= 1")

    def apply(self, trace: DegradedTrace,
              rng: np.random.Generator) -> DegradedTrace:
        length = trace.dense_length
        span = min(self.span, length)
        start = int(rng.integers(0, length - span + 1))
        xy = trace.xy.copy()
        xy[start:start + span] += rng.normal(0.0, self.std, size=(span, 2))
        return replace(trace, xy=xy)


@dataclass(frozen=True)
class Scenario:
    """A named, seeded composition of trace transforms plus its gate.

    ``accuracy_floor`` is the scenario's declared degradation floor: the
    benchmark asserts mean segment accuracy under this scenario stays at
    or above it (scaled by the smoke-budget relaxation factor).  Floors
    encode "how much degradation is acceptable" per scenario, making
    robustness regressions fail CI the way perf regressions already do.
    """

    name: str
    transforms: Tuple[TraceTransform, ...] = ()
    seed: int = 0
    accuracy_floor: float = 0.0
    description: str = ""

    def degrade(self, raw: RawTrajectory, matched: MatchedTrajectory,
                index: int, keep_every: int) -> DegradedTrace:
        """Apply all transforms to one dense pair (``index`` seeds it)."""
        trace = DegradedTrace(
            raw=raw, matched=matched,
            keep=downsample_indices(len(raw), keep_every),
            xy=raw.xy.copy(),
        )
        rng = np.random.default_rng([self.seed, index])
        for transform in self.transforms:
            trace = transform.apply(trace, rng)
        return trace


def build_scenario_samples(
    pairs: Sequence[Tuple[RawTrajectory, MatchedTrajectory]],
    network: RoadNetwork,
    scenario: Scenario,
    config: Optional[DatasetConfig] = None,
) -> List[RecoverySample]:
    """Degrade ``pairs`` under ``scenario`` and build recovery samples.

    Mirrors :func:`~repro.trajectory.dataset.build_samples` exactly —
    same hour/holiday RNG stream, same constraint construction via
    :func:`~repro.trajectory.dataset.sample_from_fixes` — so a scenario
    with no transforms returns bit-identical samples (the identity gate).
    Targets stay the full dense matched trajectories; only the observed
    fix pattern and coordinates degrade.
    """
    config = config or DatasetConfig()
    rng = np.random.default_rng(config.seed)
    samples: List[RecoverySample] = []
    for index, (raw, matched) in enumerate(pairs):
        if len(raw) != len(matched):
            raise ValueError("raw and matched trajectories must align 1:1")
        trace = scenario.degrade(raw, matched, index, config.keep_every)
        low = RawTrajectory(trace.xy[trace.keep], raw.times[trace.keep])
        samples.append(
            sample_from_fixes(
                network, low, matched, trace.keep, config,
                hour=int(rng.integers(0, 24)),
                holiday=bool(rng.random() < 0.1),
            )
        )
    return samples


def standard_scenarios(keep_every: int = 8, seed: int = 0) -> List[Scenario]:
    """The default scenario matrix rows (identity first).

    Floors are calibrated against the deterministic ``bench_scenarios``
    default budget (160 trajectories / 15 epochs on the Chengdu recipe,
    where measured accuracies run 0.06–0.11) with ~35% headroom; they
    are relative quality bars for this small-CPU reproduction, not paper
    numbers.
    """
    return [
        Scenario(
            name="identity",
            transforms=(),
            seed=seed,
            accuracy_floor=0.07,
            description=f"clean keep-every-{keep_every} pipeline "
                        "(bit-identical to build_samples)",
        ),
        Scenario(
            name="variable_rate",
            transforms=(VariableRate(choices=(keep_every // 2, keep_every,
                                              keep_every * 2)),),
            seed=seed + 1,
            accuracy_floor=0.055,
            description="per-trace mixed sampling strides",
        ),
        Scenario(
            name="sparse_x2",
            transforms=(FixedRate(keep_every * 2),),
            seed=seed + 2,
            accuracy_floor=0.05,
            description=f"uniform keep-every-{keep_every * 2} "
                        "(the held-out degraded regime)",
        ),
        Scenario(
            name="outage",
            transforms=(Outage(gaps=2, min_span=4, max_span=10),),
            seed=seed + 3,
            accuracy_floor=0.04,
            description="two contiguous observation gaps (tunnels)",
        ),
        Scenario(
            name="noise_burst",
            transforms=(NoiseBurst(std=60.0, span=8),),
            seed=seed + 4,
            accuracy_floor=0.05,
            description="one 60 m multipath burst over 8 grid steps",
        ),
        Scenario(
            name="outage_noise",
            transforms=(Outage(gaps=1, min_span=4, max_span=8),
                        NoiseBurst(std=45.0, span=6)),
            seed=seed + 5,
            accuracy_floor=0.045,
            description="compound: an outage plus a noise burst",
        ),
    ]
