"""``repro.scenarios`` — the robustness scenario suite.

The paper evaluates recovery on fixed keep-every-k regimes; deployed
services see variable rates, GPS outages, noise bursts, and new cities.
This package makes those regimes first-class:

* :mod:`~repro.scenarios.transforms` — composable seeded trace degraders
  (:class:`FixedRate`, :class:`VariableRate`, :class:`Outage`,
  :class:`NoiseBurst`) composed into named :class:`Scenario` rows, with
  the identity law: no transforms → bit-identical to ``build_samples``;
* :mod:`~repro.scenarios.matrix` — the scenario × metric evaluation
  matrix: Table-III batch metrics plus streaming replay telemetry
  (revision rates, finalize exactness) per scenario;
* :mod:`~repro.scenarios.curriculum` — sampling-rate curriculum training
  over the PR 5 trainer (phased ``fit(until_epoch=...)``, cumulative
  easy→hard stride mixtures);
* :mod:`~repro.scenarios.transfer` — cross-city warm starts by
  name+shape-matched state transfer.

``benchmarks/bench_scenarios.py`` wires all four into the
``BENCH_scenarios.json`` gate artifact; see ``docs/scenarios.md``.
"""

from .curriculum import CurriculumPhase, RateCurriculum, fit_rate_curriculum
from .matrix import (
    ScenarioCell,
    StreamingReplay,
    evaluate_matrix,
    replay_streaming,
)
from .transfer import TransferReport, transfer_model, transfer_state
from .transforms import (
    DegradedTrace,
    FixedRate,
    NoiseBurst,
    Outage,
    Scenario,
    TraceTransform,
    VariableRate,
    build_scenario_samples,
    standard_scenarios,
)

__all__ = [
    "CurriculumPhase",
    "DegradedTrace",
    "FixedRate",
    "NoiseBurst",
    "Outage",
    "RateCurriculum",
    "Scenario",
    "ScenarioCell",
    "StreamingReplay",
    "TraceTransform",
    "TransferReport",
    "VariableRate",
    "build_scenario_samples",
    "evaluate_matrix",
    "fit_rate_curriculum",
    "replay_streaming",
    "standard_scenarios",
    "transfer_model",
    "transfer_state",
]
