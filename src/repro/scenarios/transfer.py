"""Cross-city transfer: train on city A, serve city B.

PLMTrajRec frames cross-city generalization as the key scalability gap
for recovery models: every new city should not need a from-scratch
model.  RNTrajRec is partly city-specific — the decoder's segment head
is |V|-wide, and grid/GNN embeddings are sized by the city's grid — but
the transformer encoder, GRU, and rate head are city-agnostic.  So a
*warm start* is possible: copy every parameter whose name **and shape**
match into a fresh model on city B's network, leave the rest at their
seeded initialization, then fine-tune with a small budget.

:func:`transfer_model` does exactly that and reports what moved;
``bench_scenarios`` runs the resulting transfer-vs-scratch comparison as
the cross-city row of the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.config import RNTrajRecConfig
from ..core.model import RNTrajRec
from ..roadnet.network import RoadNetwork


@dataclass
class TransferReport:
    """What a state transfer moved between two cities' models."""

    copied: List[str]
    skipped: List[str]

    @property
    def copied_fraction(self) -> float:
        total = len(self.copied) + len(self.skipped)
        return len(self.copied) / max(total, 1)

    def as_dict(self) -> dict:
        return {
            "copied": len(self.copied),
            "skipped": len(self.skipped),
            "copied_fraction": round(self.copied_fraction, 4),
            "skipped_names": sorted(self.skipped),
        }


def transfer_state(source: RNTrajRec, target: RNTrajRec) -> TransferReport:
    """Copy name+shape-matched entries of ``source`` into ``target``.

    Entries that exist only in one model, or whose shapes differ (the
    |V|-wide decoder head, city-sized grid embeddings), keep ``target``'s
    current values — the merge is built from ``target``'s own state dict,
    so the strict ``load_state_dict`` contract always holds.
    """
    src = source.state_dict()
    merged = {}
    copied: List[str] = []
    skipped: List[str] = []
    for name, value in target.state_dict().items():
        candidate = src.get(name)
        if candidate is not None and candidate.shape == value.shape:
            merged[name] = candidate
            copied.append(name)
        else:
            merged[name] = value
            skipped.append(name)
    target.load_state_dict(merged)
    return TransferReport(copied=copied, skipped=skipped)


def transfer_model(
    source: RNTrajRec,
    network: RoadNetwork,
    config: Optional[RNTrajRecConfig] = None,
) -> tuple:
    """A fresh model on ``network`` warm-started from ``source``.

    Returns ``(model, report)``.  Construct under
    :func:`repro.nn.init.seed_everything` beforehand when the
    un-transferred remainder must be deterministic (benchmarks do).
    """
    model = RNTrajRec(network, config or source.config)
    report = transfer_state(source, model)
    return model, report
