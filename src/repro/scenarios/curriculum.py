"""Sampling-rate curriculum training over scenario degraders.

The paper trains one model per keep-every rate; a deployed service sees
*all* rates at once, and a model trained at a single rate degrades on
regimes it never saw.  The curriculum trains one model through phases of
increasing sparsity — dense strides first, then cumulative mixtures that
keep the easy rates while adding harder ones — reusing the PR 5
:class:`~repro.train.Trainer` machinery: one trainer, one config, phases
bounded by ``fit(until_epoch=...)`` so LR schedules stay pure functions
of the global epoch, and the epoch → phase mapping itself is a
:class:`~repro.train.PiecewiseConstant` step schedule.

Each phase's training set is built by :func:`build_scenario_samples`
under a :class:`~repro.scenarios.transforms.VariableRate` (or
:class:`~repro.scenarios.transforms.FixedRate` for singleton mixtures)
scenario, so phase data is exactly as deterministic as the scenario
matrix: same pairs + same curriculum → bit-identical training stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..roadnet.network import RoadNetwork
from ..train import PiecewiseConstant, TrainConfig, Trainer, TrainResult
from ..trajectory.dataset import DatasetConfig, RecoverySample
from ..trajectory.trajectory import MatchedTrajectory, RawTrajectory
from .transforms import FixedRate, Scenario, VariableRate, build_scenario_samples


@dataclass(frozen=True)
class CurriculumPhase:
    """One curriculum stage: a stride mixture trained for ``epochs``."""

    epochs: int
    rates: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("a phase needs at least one epoch")
        if not self.rates or any(r < 1 for r in self.rates):
            raise ValueError("phase rates must be positive strides")

    def scenario(self, seed: int) -> Scenario:
        """The degrader producing this phase's training regime."""
        if len(self.rates) == 1:
            transforms: tuple = (FixedRate(self.rates[0]),)
        else:
            transforms = (VariableRate(choices=tuple(sorted(self.rates))),)
        return Scenario(name=f"curriculum_{'x'.join(map(str, sorted(self.rates)))}",
                        transforms=transforms, seed=seed,
                        description=f"curriculum phase over strides {sorted(self.rates)}")


@dataclass(frozen=True)
class RateCurriculum:
    """An ordered tuple of phases (easy → hard) plus the scenario seed."""

    phases: Tuple[CurriculumPhase, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a curriculum needs at least one phase")

    @classmethod
    def standard(cls, keep_every: int = 8, total_epochs: int = 9,
                 seed: int = 0) -> "RateCurriculum":
        """Three cumulative phases: {k} → {k, 2k} → {k/2, k, 2k}.

        The first phase matches the paper's fixed rate (what a
        fixed-rate baseline trains on for *all* its epochs), then
        sparser and denser strides join cumulatively — harder rates
        arrive while earlier ones stay in the mixture, avoiding
        catastrophic forgetting.  Phases two and three both contain
        ``2k`` — the held-out degraded regime the benchmark gate
        evaluates — so the curriculum model trains extensively on the
        eval sparsity that the fixed-rate baseline never sees.
        """
        half = max(1, keep_every // 2)
        mixtures = [(keep_every,), (keep_every, keep_every * 2),
                    (half, keep_every, keep_every * 2)]
        base, extra = divmod(total_epochs, len(mixtures))
        if base < 1:
            raise ValueError("need at least one epoch per phase")
        phases = tuple(
            # Spread the remainder over the *last* phases: the hardest
            # mixtures are the ones the gate evaluates.
            CurriculumPhase(epochs=base + (1 if i >= len(mixtures) - extra else 0),
                            rates=rates)
            for i, rates in enumerate(mixtures)
        )
        return cls(phases=phases, seed=seed)

    @property
    def total_epochs(self) -> int:
        return sum(phase.epochs for phase in self.phases)

    def boundaries(self) -> List[int]:
        """Cumulative epoch boundaries, one per phase (last = total)."""
        out: List[int] = []
        acc = 0
        for phase in self.phases:
            acc += phase.epochs
            out.append(acc)
        return out

    def schedule(self) -> PiecewiseConstant:
        """Epoch → :class:`CurriculumPhase` as a pure step function."""
        return PiecewiseConstant(self.boundaries()[:-1], list(self.phases))


def fit_rate_curriculum(
    model,
    pairs: Sequence[Tuple[RawTrajectory, MatchedTrajectory]],
    network: RoadNetwork,
    curriculum: RateCurriculum,
    dataset_config: Optional[DatasetConfig] = None,
    train_config: Optional[TrainConfig] = None,
    val_samples: Sequence[RecoverySample] = (),
) -> TrainResult:
    """Train ``model`` through the curriculum's phases; returns the full
    history.

    One :class:`~repro.train.Trainer` spans all phases — optimizer
    moments, the scheduled-sampling RNG stream, and the LR schedule all
    continue across phase switches exactly as they would in a single
    ``fit`` (the schedule sees the *global* epoch, which is why
    ``train_config.epochs`` must equal ``curriculum.total_epochs``).
    Only the training samples change at each boundary.
    """
    dataset_config = dataset_config or DatasetConfig()
    train_config = train_config or TrainConfig(epochs=curriculum.total_epochs)
    if train_config.epochs != curriculum.total_epochs:
        raise ValueError(
            f"train_config.epochs ({train_config.epochs}) must equal the "
            f"curriculum's total_epochs ({curriculum.total_epochs}); "
            "schedules are pure functions of config.epochs")
    trainer = Trainer(model, train_config)
    result = TrainResult(history=[])
    for phase, boundary in zip(curriculum.phases, curriculum.boundaries()):
        samples = build_scenario_samples(
            pairs, network, phase.scenario(curriculum.seed), dataset_config)
        result = trainer.fit(samples, val_samples, until_epoch=boundary)
    return result
