"""Baselines compared against RNTrajRec in §VI (eight methods)."""

from typing import Optional

from ..core.config import RNTrajRecConfig
from ..roadnet.network import RoadNetwork
from .dhtr import DHTRRecovery
from .encoders import (
    GTSEncoder,
    MTrajRecEncoder,
    NeuTrajEncoder,
    T2VecEncoder,
    T3SEncoder,
    TransformerBaselineEncoder,
)
from .kalman import ConstantVelocityKalman, KalmanConfig
from .linear_hmm import LinearHMMRecovery
from .seq2seq import InputEmbedding, Seq2SeqRecovery, TrajectoryContextHead

BASELINE_NAMES = (
    "linear_hmm",
    "dhtr_hmm",
    "t2vec",
    "transformer",
    "mtrajrec",
    "t3s",
    "gts",
    "neutraj",
)


def build_baseline(name: str, network: RoadNetwork,
                   config: Optional[RNTrajRecConfig] = None):
    """Factory for every §VI-A4 baseline by canonical name."""
    config = config or RNTrajRecConfig()
    grid = network.make_grid(config.grid_cell_size)
    name = name.lower()
    if name == "linear_hmm":
        return LinearHMMRecovery(network)
    if name == "dhtr_hmm":
        return DHTRRecovery(network, config, grid)
    encoders = {
        "t2vec": lambda: T2VecEncoder(grid, config),
        "transformer": lambda: TransformerBaselineEncoder(grid, config),
        "mtrajrec": lambda: MTrajRecEncoder(grid, config),
        "t3s": lambda: T3SEncoder(grid, config),
        "gts": lambda: GTSEncoder(network, grid, config),
        "neutraj": lambda: NeuTrajEncoder(grid, config),
    }
    if name not in encoders:
        raise ValueError(f"unknown baseline {name!r}; expected one of {BASELINE_NAMES}")
    return Seq2SeqRecovery(network, encoders[name](), config)


__all__ = [
    "BASELINE_NAMES",
    "build_baseline",
    "DHTRRecovery",
    "GTSEncoder",
    "MTrajRecEncoder",
    "NeuTrajEncoder",
    "T2VecEncoder",
    "T3SEncoder",
    "TransformerBaselineEncoder",
    "ConstantVelocityKalman",
    "KalmanConfig",
    "LinearHMMRecovery",
    "InputEmbedding",
    "Seq2SeqRecovery",
    "TrajectoryContextHead",
]
