"""Constant-velocity Kalman filter/smoother (Kalman [59]).

DHTR [19] refines its seq2seq coordinate predictions with a Kalman filter
before map matching; this is that substrate.  State is
(x, y, vx, vy) with position observations; ``smooth`` runs the RTS
(Rauch-Tung-Striebel) backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class KalmanConfig:
    process_noise: float = 1.0      # acceleration noise spectral density
    observation_noise: float = 25.0  # meters std of measurement noise


class ConstantVelocityKalman:
    """2-D constant-velocity Kalman filter with RTS smoothing."""

    def __init__(self, config: KalmanConfig | None = None) -> None:
        self.config = config or KalmanConfig()

    def _matrices(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        f = np.eye(4)
        f[0, 2] = dt
        f[1, 3] = dt
        q_scale = self.config.process_noise
        # Discrete white-noise acceleration model.
        q = q_scale * np.array(
            [
                [dt**4 / 4, 0, dt**3 / 2, 0],
                [0, dt**4 / 4, 0, dt**3 / 2],
                [dt**3 / 2, 0, dt**2, 0],
                [0, dt**3 / 2, 0, dt**2],
            ]
        )
        return f, q

    def smooth(self, xy: np.ndarray, times: np.ndarray) -> np.ndarray:
        """RTS-smoothed positions for noisy observations ``xy`` (n, 2)."""
        xy = np.asarray(xy, dtype=np.float64)
        times = np.asarray(times, dtype=np.float64)
        n = len(xy)
        if n == 0:
            return xy.copy()
        if n == 1:
            return xy.copy()

        h = np.zeros((2, 4))
        h[0, 0] = 1.0
        h[1, 1] = 1.0
        r = (self.config.observation_noise**2) * np.eye(2)

        # Forward filter.
        state = np.array([xy[0, 0], xy[0, 1], 0.0, 0.0])
        cov = np.diag([r[0, 0], r[1, 1], 100.0, 100.0])
        states = np.zeros((n, 4))
        covs = np.zeros((n, 4, 4))
        pred_states = np.zeros((n, 4))
        pred_covs = np.zeros((n, 4, 4))
        states[0], covs[0] = state, cov
        pred_states[0], pred_covs[0] = state, cov
        transitions = [np.eye(4)] * n

        for t in range(1, n):
            dt = max(float(times[t] - times[t - 1]), 1e-6)
            f, q = self._matrices(dt)
            transitions[t] = f
            state_pred = f @ state
            cov_pred = f @ cov @ f.T + q
            pred_states[t], pred_covs[t] = state_pred, cov_pred

            innovation = xy[t] - h @ state_pred
            s = h @ cov_pred @ h.T + r
            gain = cov_pred @ h.T @ np.linalg.inv(s)
            state = state_pred + gain @ innovation
            cov = (np.eye(4) - gain @ h) @ cov_pred
            states[t], covs[t] = state, cov

        # RTS backward smoothing.
        smoothed = states.copy()
        smoothed_cov = covs.copy()
        for t in range(n - 2, -1, -1):
            f = transitions[t + 1]
            gain = covs[t] @ f.T @ np.linalg.pinv(pred_covs[t + 1])
            smoothed[t] = states[t] + gain @ (smoothed[t + 1] - pred_states[t + 1])
            smoothed_cov[t] = covs[t] + gain @ (smoothed_cov[t + 1] - pred_covs[t + 1]) @ gain.T

        return smoothed[:, :2]
