"""DHTR + HMM — deep hybrid two-stage recovery (Wang et al. [19]).

DHTR first recovers the *coordinates* of the high-sample trajectory with a
seq2seq model (attention GRU decoder over the ε_ρ grid), refines them with
a constant-velocity Kalman filter, and finally map-matches with HMM.  The
coordinate decoder is trained with MSE on normalized positions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor
from ..geo.grid import Grid
from ..mapmatch.hmm import HMMConfig, HMMMapMatcher
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from ..trajectory.dataset import Batch
from ..trajectory.trajectory import MatchedTrajectory
from ..core.config import RNTrajRecConfig
from ..core.loss import LossBreakdown
from .kalman import ConstantVelocityKalman, KalmanConfig
from .seq2seq import InputEmbedding


class DHTRRecovery(nn.Module):
    """Seq2seq coordinate recovery + Kalman smoothing + HMM matching."""

    def __init__(self, network: RoadNetwork, config: Optional[RNTrajRecConfig] = None,
                 grid: Optional[Grid] = None) -> None:
        super().__init__()
        self.network = network
        self.config = config or RNTrajRecConfig()
        self.grid = grid or network.make_grid(self.config.grid_cell_size)
        d = self.config.hidden_dim

        self.embed = InputEmbedding(self.grid, d)
        self.encoder_rnn = nn.GRU(d, d)
        self.attention = nn.AdditiveAttention(d)
        self.decoder_cell = nn.GRUCell(2 + d, d)
        self.coord_head = nn.Linear(d, 2)

        self.kalman = ConstantVelocityKalman(KalmanConfig())
        self.matcher = HMMMapMatcher(network, HMMConfig())
        x0, y0, x1, y1 = network.bounds()
        self._origin = np.array([x0, y0])
        self._scale = max(x1 - x0, y1 - y0, 1.0)

    # ------------------------------------------------------------------
    def _normalize(self, xy: np.ndarray) -> np.ndarray:
        return (xy - self._origin) / self._scale

    def _denormalize(self, xy: np.ndarray) -> np.ndarray:
        return xy * self._scale + self._origin

    def _decode_coordinates(self, batch: Batch) -> Tensor:
        """Predict normalized (x, y) for every ε_ρ step: (b, l_ρ, 2)."""
        embedded = self.embed(batch)
        encoder_outputs, state = self.encoder_rnn(embedded)
        b = batch.size
        prev = Tensor(self._normalize(batch.input_xy[:, 0, :]))

        steps: List[Tensor] = []
        for _ in range(batch.target_length):
            context = self.attention(state, encoder_outputs)
            state = self.decoder_cell(nn.concat([prev, context], axis=-1), state)
            prev = self.coord_head(state)
            steps.append(prev)
        return nn.stack(steps, axis=1)

    # ------------------------------------------------------------------
    def compute_loss(self, batch: Batch, teacher_forcing_ratio: float = 0.5,
                     rng: Optional[np.random.Generator] = None) -> LossBreakdown:
        """Coordinate MSE against the true ε_ρ-grid positions."""
        predictions = self._decode_coordinates(batch)
        truth = np.stack(
            [sample.target.positions(self.network) for sample in batch.samples]
        )
        loss = F.mse_loss(predictions, self._normalize(truth))
        return LossBreakdown(total=loss, id_loss=0.0, rate_loss=float(loss.item()), graph_loss=0.0)

    def recover_trajectories(self, batch: Batch) -> List[MatchedTrajectory]:
        coords = self._denormalize(self._decode_coordinates(batch).data)
        out: List[MatchedTrajectory] = []
        for i, sample in enumerate(batch.samples):
            times = sample.target.times
            smoothed = self.kalman.smooth(coords[i], times)
            # Pin the observed fixes back to their measured positions.
            obs = sample.observed_steps
            smoothed[obs] = sample.raw_low.xy
            from ..trajectory.trajectory import RawTrajectory

            matched = self.matcher.match(RawTrajectory(smoothed, times))
            if matched is None:
                segments = np.zeros(len(times), dtype=np.int64)
                ratios = np.zeros(len(times))
                for j, (x, y) in enumerate(smoothed):
                    sid, _, ratio = self.network.nearest_segment(float(x), float(y))
                    segments[j] = sid
                    ratios[j] = min(ratio, 1.0 - 1e-9)
                matched = MatchedTrajectory(segments, ratios, times)
            out.append(matched)
        return out

    def recover(self, batch: Batch) -> Tuple[np.ndarray, np.ndarray]:
        recovered = self.recover_trajectories(batch)
        return (
            np.stack([t.segments for t in recovered]),
            np.stack([t.ratios for t in recovered]),
        )
