"""Encoder architectures of the end-to-end baselines (§VI-A4).

Each class maps a :class:`~repro.trajectory.dataset.Batch` to per-point
hidden states ``(b, l_τ, d)`` and is paired with the shared MTrajRec
decoder by :class:`~repro.baselines.seq2seq.Seq2SeqRecovery`:

* :class:`MTrajRecEncoder` — plain GRU (MTrajRec [11]);
* :class:`T2VecEncoder` — bidirectional GRU (t2vec [6] uses BiLSTM; the
  recurrent family is interchangeable at this scale);
* :class:`TransformerBaselineEncoder` — Vaswani encoder over grid/time
  inputs (the paper's "Transformer + Decoder");
* :class:`T3SEncoder` — self-attention branch + spatial LSTM branch,
  summed (T3S [8]);
* :class:`NeuTrajEncoder` — GRU with a spatial-memory attention over
  neighboring grid cells (NeuTraj [7]'s SAM, simplified);
* :class:`GTSEncoder` — GAT over the road graph; each point is represented
  by its nearest segment ("POI") embedding, then a GRU (GTS [10]).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn.tensor import Tensor, gather_rows
from ..geo.grid import Grid
from ..roadnet.network import RoadNetwork
from ..trajectory.dataset import Batch
from ..core.config import RNTrajRecConfig
from .seq2seq import InputEmbedding


class MTrajRecEncoder(nn.Module):
    """GRU encoder of MTrajRec."""

    def __init__(self, grid: Grid, config: RNTrajRecConfig) -> None:
        super().__init__()
        d = config.hidden_dim
        self.embed = InputEmbedding(grid, d)
        self.rnn = nn.GRU(d, d)

    def forward(self, batch: Batch) -> Tensor:
        outputs, _ = self.rnn(self.embed(batch))
        return outputs


class T2VecEncoder(nn.Module):
    """Bidirectional recurrent encoder of t2vec."""

    def __init__(self, grid: Grid, config: RNTrajRecConfig) -> None:
        super().__init__()
        d = config.hidden_dim
        self.embed = InputEmbedding(grid, d)
        self.rnn = nn.BiGRU(d, d)

    def forward(self, batch: Batch) -> Tensor:
        outputs, _ = self.rnn(self.embed(batch))
        return outputs


class TransformerBaselineEncoder(nn.Module):
    """Transformer encoder over grid-cell and time inputs."""

    def __init__(self, grid: Grid, config: RNTrajRecConfig) -> None:
        super().__init__()
        d = config.hidden_dim
        self.embed = InputEmbedding(grid, d)
        self.transformer = nn.TransformerEncoder(
            d, config.num_heads, num_layers=config.num_gpsformer_layers,
            ffn_dim=2 * d, dropout=config.dropout,
        )

    def forward(self, batch: Batch) -> Tensor:
        return self.transformer(self.embed(batch))


class T3SEncoder(nn.Module):
    """T3S: structural self-attention + spatial LSTM, fused by addition."""

    def __init__(self, grid: Grid, config: RNTrajRecConfig) -> None:
        super().__init__()
        d = config.hidden_dim
        self.embed = InputEmbedding(grid, d)
        self.attention_layer = nn.TransformerEncoderLayer(d, config.num_heads, ffn_dim=2 * d)
        self.lstm = nn.LSTM(d, d)

    def forward(self, batch: Batch) -> Tensor:
        embedded = self.embed(batch)
        structural = self.attention_layer(embedded)
        spatial, _ = self.lstm(embedded)
        return structural + spatial


class NeuTrajEncoder(nn.Module):
    """NeuTraj: GRU + spatial-attention memory over neighboring cells.

    For each input point, the embeddings of its 3×3 grid-cell neighborhood
    form a small memory; additive attention with the GRU state as query
    produces a spatial context fused into the output (a faithful
    miniaturization of NeuTraj's spatial-memory augmentation).
    """

    def __init__(self, grid: Grid, config: RNTrajRecConfig) -> None:
        super().__init__()
        d = config.hidden_dim
        self.grid = grid
        self.embed = InputEmbedding(grid, d)
        self.rnn = nn.GRU(d, d)
        self.memory_attention = nn.AdditiveAttention(d)
        self.fuse = nn.Linear(2 * d, d)

    def _neighborhood_cells(self, batch: Batch) -> np.ndarray:
        rows, cols = self.grid.cell_of(batch.input_xy[..., 0], batch.input_xy[..., 1])
        offsets = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 0), (0, 1), (1, -1), (1, 0), (1, 1)]
        stacked = []
        for dr, dc in offsets:
            r = np.clip(rows + dr, 0, self.grid.rows - 1)
            c = np.clip(cols + dc, 0, self.grid.cols - 1)
            stacked.append(self.grid.flat_index(r, c))
        return np.stack(stacked, axis=-1)  # (b, l, 9)

    def forward(self, batch: Batch) -> Tensor:
        embedded = self.embed(batch)
        outputs, _ = self.rnn(embedded)
        b, l, d = outputs.shape

        cells = self._neighborhood_cells(batch)  # (b, l, 9)
        memory = self.embed.cell_embedding(cells.reshape(b * l, 9))  # (b*l, 9, d)
        query = outputs.reshape(b * l, d)
        context = self.memory_attention(query, memory)  # (b*l, d)
        fused = self.fuse(nn.concat([query, context], axis=-1)).relu()
        return fused.reshape(b, l, d)


class GTSEncoder(nn.Module):
    """GTS: graph-based point representation in the spatial network.

    GTS embeds POIs with a GNN over the spatial network and represents
    each GPS point by its nearest POI.  Here segments play the POI role:
    a GAT stack over the road graph produces segment embeddings, each
    input point gathers its nearest segment's embedding, and a GRU models
    the sequence.
    """

    def __init__(self, network: RoadNetwork, grid: Grid, config: RNTrajRecConfig) -> None:
        super().__init__()
        d = config.hidden_dim
        self.network = network
        self.embed = InputEmbedding(grid, d)
        self.node_embedding = nn.Embedding(network.num_segments, d)
        self.gnn = nn.GraphStack("gat", d, num_layers=2, num_heads=config.num_heads)
        self.fuse = nn.Linear(2 * d, d)
        self.rnn = nn.GRU(d, d)
        self._edge_index = nn.add_self_loops(network.edge_index(), network.num_segments)
        self._nearest_cache: dict[tuple[int, int], int] = {}

    def _nearest_segments(self, batch: Batch) -> np.ndarray:
        flat = batch.input_xy.reshape(-1, 2)
        out = np.zeros(len(flat), dtype=np.int64)
        for i, (x, y) in enumerate(flat):
            key = (int(round(x)), int(round(y)))
            sid = self._nearest_cache.get(key)
            if sid is None:
                sid, _, _ = self.network.nearest_segment(float(x), float(y))
                self._nearest_cache[key] = sid
            out[i] = sid
        return out.reshape(batch.size, batch.input_length)

    def forward(self, batch: Batch) -> Tensor:
        node_features = self.gnn(
            self.node_embedding(np.arange(self.network.num_segments)), self._edge_index
        )
        nearest = self._nearest_segments(batch)
        point_graph = gather_rows(node_features, nearest)  # (b, l, d)
        embedded = self.embed(batch)
        fused = self.fuse(nn.concat([embedded, point_graph], axis=-1)).relu()
        outputs, _ = self.rnn(fused)
        return outputs
