"""Shared seq2seq scaffolding for the end-to-end baselines.

Per the paper's Remark 2, every learned baseline "A + Decoder" couples the
encoder proposed by method A with the MTrajRec decoder [11].  This module
provides

* :func:`encoder_input_features` — the common per-point inputs (grid-cell
  embedding + time/grid/motion context, exactly what the paper's
  Transformer baseline consumes: "grid cell index and time index");
* :class:`Seq2SeqRecovery` — wraps any encoder with the shared
  :class:`~repro.core.decoder.RecoveryDecoder`, the constraint-mask loss
  (L_id + λ1 L_rate, no graph loss) and greedy recovery, satisfying the
  same trainer protocol as RNTrajRec.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Tuple

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from ..geo.grid import Grid
from ..roadnet.network import RoadNetwork
from ..trajectory.dataset import Batch
from ..trajectory.trajectory import MatchedTrajectory
from ..core.config import RNTrajRecConfig
from ..core.decoder import ReachabilityMask, RecoveryDecoder
from ..core.gps_former import ENV_CONTEXT_DIM, POINT_CONTEXT_DIM, point_context_features
from ..core.loss import LossBreakdown, total_loss


class InputEmbedding(nn.Module):
    """Grid-cell embedding + shared context features, projected to d."""

    def __init__(self, grid: Grid, hidden_dim: int) -> None:
        super().__init__()
        self.grid = grid
        self.cell_embedding = nn.Embedding(grid.num_cells, hidden_dim)
        self.proj = nn.Linear(hidden_dim + POINT_CONTEXT_DIM, hidden_dim)

    def forward(self, batch: Batch) -> Tensor:
        cells = self.grid.flat_cell_of(batch.input_xy[..., 0], batch.input_xy[..., 1])
        embedded = self.cell_embedding(cells)  # (b, l, d)
        context = Tensor(point_context_features(batch, self.grid))
        return self.proj(nn.concat([embedded, context], axis=-1))


class TrajectoryContextHead(nn.Module):
    """Mean-pool + environmental context → trajectory-level vector."""

    def __init__(self, hidden_dim: int) -> None:
        super().__init__()
        self.proj = nn.Linear(hidden_dim + ENV_CONTEXT_DIM, hidden_dim)

    def forward(self, point_features: Tensor, batch: Batch) -> Tensor:
        context = np.zeros((batch.size, ENV_CONTEXT_DIM))
        context[np.arange(batch.size), batch.hours] = 1.0
        context[:, 24] = batch.holidays.astype(np.float64)
        pooled = point_features.mean(axis=1)
        return self.proj(nn.concat([pooled, Tensor(context)], axis=-1))


class TrajectoryEncoder(Protocol):
    """Structural type every baseline encoder implements."""

    def forward(self, batch: Batch) -> Tensor: ...  # (b, l, d)


class Seq2SeqRecovery(nn.Module):
    """Encoder + shared MTrajRec decoder = one end-to-end baseline."""

    def __init__(self, network: RoadNetwork, encoder: nn.Module,
                 config: Optional[RNTrajRecConfig] = None) -> None:
        super().__init__()
        self.network = network
        self.config = config or RNTrajRecConfig()
        self.encoder = encoder
        self.context_head = TrajectoryContextHead(self.config.hidden_dim)
        self.decoder = RecoveryDecoder(network.num_segments, self.config)
        self._reachability: Optional[ReachabilityMask] = None

    @property
    def reachability(self) -> Optional[ReachabilityMask]:
        if self.config.reachability_hops <= 0:
            return None
        if self._reachability is None:
            self._reachability = ReachabilityMask(
                self.network.out_neighbors, hops=self.config.reachability_hops
            )
        return self._reachability

    # ------------------------------------------------------------------
    def _encode(self, batch: Batch) -> Tuple[Tensor, Tensor]:
        point_features = self.encoder(batch)
        trajectory_feature = self.context_head(point_features, batch)
        return point_features, trajectory_feature

    def compute_loss(self, batch: Batch, teacher_forcing_ratio: float = 0.5,
                     rng: Optional[np.random.Generator] = None) -> LossBreakdown:
        point_features, trajectory_feature = self._encode(batch)
        constraint = batch.constraint_tensor(self.network.num_segments)
        decoded = self.decoder.forward_teacher(
            point_features, trajectory_feature, batch, constraint,
            teacher_forcing_ratio=teacher_forcing_ratio, rng=rng,
        )
        return total_loss(
            decoded, batch,
            node_features=None, graphs=None, graph_projection=None,
            lambda_rate=self.config.lambda_rate,
            lambda_graph=0.0, use_graph_loss=False,
        )

    def recover(self, batch: Batch) -> Tuple[np.ndarray, np.ndarray]:
        point_features, trajectory_feature = self._encode(batch)
        constraint = batch.constraint_tensor(self.network.num_segments)
        if self.config.decode_prior_scale > 0:
            from ..core.decoder import interpolation_prior

            constraint = constraint * interpolation_prior(
                batch, self.network, self.config.decode_prior_scale,
                self.config.decode_prior_floor,
            )
        return self.decoder.decode_greedy(
            point_features, trajectory_feature, batch.target_length, constraint,
            reachability=self.reachability,
        )

    def recover_trajectories(self, batch: Batch) -> List[MatchedTrajectory]:
        segments, rates = self.recover(batch)
        return [
            MatchedTrajectory(segments[i], rates[i], batch.target_times[i])
            for i in range(batch.size)
        ]
