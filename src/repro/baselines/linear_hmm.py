"""Linear + HMM — the non-learned two-stage baseline (§VI-A4 i).

Linear interpolation [18] densifies the low-sample raw trajectory to the
ε_ρ grid assuming uniform speed, then Newson-Krumm HMM map matching [14]
snaps every interpolated point to the road network.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..mapmatch.hmm import HMMConfig, HMMMapMatcher
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from ..trajectory.dataset import Batch, RecoverySample
from ..trajectory.resample import linear_interpolate
from ..trajectory.trajectory import MatchedTrajectory, RawTrajectory


class LinearHMMRecovery:
    """Two-stage recovery: linear interpolation then HMM map matching.

    Exposes the same ``recover_trajectories(batch)`` surface as the learned
    models so the evaluation harness treats all methods uniformly.
    """

    def __init__(self, network: RoadNetwork, hmm_config: Optional[HMMConfig] = None,
                 engine: Optional[ShortestPathEngine] = None) -> None:
        self.network = network
        self.engine = engine or ShortestPathEngine(network)
        self.matcher = HMMMapMatcher(network, hmm_config, engine=self.engine)

    # The harness calls eval()/train() on every model; no-ops here.
    def eval(self) -> "LinearHMMRecovery":
        return self

    def train(self, mode: bool = True) -> "LinearHMMRecovery":
        return self

    def num_parameters(self) -> int:
        return 0

    # ------------------------------------------------------------------
    def recover_sample(self, sample: RecoverySample) -> MatchedTrajectory:
        dense = linear_interpolate(sample.raw_low, sample.target.times)
        matched = self.matcher.match(dense)
        if matched is not None:
            return matched
        # Degenerate fallback: nearest segment per point.
        segments = np.zeros(len(dense), dtype=np.int64)
        ratios = np.zeros(len(dense))
        for i, (x, y) in enumerate(dense.xy):
            sid, _, ratio = self.network.nearest_segment(float(x), float(y))
            segments[i] = sid
            ratios[i] = min(ratio, 1.0 - 1e-9)
        return MatchedTrajectory(segments, ratios, dense.times)

    def recover_trajectories(self, batch: Batch) -> List[MatchedTrajectory]:
        return [self.recover_sample(sample) for sample in batch.samples]

    def recover(self, batch: Batch) -> Tuple[np.ndarray, np.ndarray]:
        recovered = self.recover_trajectories(batch)
        segments = np.stack([t.segments for t in recovered])
        ratios = np.stack([t.ratios for t in recovered])
        return segments, ratios
