"""RNTrajRec — the end-to-end model (Fig. 2).

``GridGNN`` (road representation) → ``SubGraphGeneration`` → ``GPSFormer``
(spatial-temporal transformer encoder) → attention GRU decoder with
constraint masks and multi-task heads.  The public surface is:

* :meth:`RNTrajRec.compute_loss` — teacher-forced training loss (Eq. 19);
* :meth:`RNTrajRec.recover` — greedy recovery of the ε_ρ trajectory grid;
* :meth:`RNTrajRec.recover_trajectories` — the same, packaged as
  :class:`~repro.trajectory.trajectory.MatchedTrajectory` objects.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn, profile
from ..nn.tensor import no_grad
from ..roadnet.network import RoadNetwork
from ..trajectory.dataset import Batch
from ..trajectory.trajectory import MatchedTrajectory
from .config import RNTrajRecConfig
from .decoder import ReachabilityMask, RecoveryDecoder
from .gps_former import EncoderOutput, GPSFormer
from .loss import LossBreakdown, total_loss


class RNTrajRec(nn.Module):
    """Road Network enhanced Trajectory Recovery model."""

    def __init__(self, network: RoadNetwork, config: Optional[RNTrajRecConfig] = None,
                 grid=None) -> None:
        super().__init__()
        self.network = network
        self.config = config or RNTrajRecConfig()
        # ``grid`` lets the serving model registry pin one Grid across every
        # loaded model instead of rebuilding it per checkpoint.
        self.encoder = GPSFormer(network, self.config, grid=grid)
        self.decoder = RecoveryDecoder(network.num_segments, self.config)
        # Projection w of Eq. 18 (graph classification loss).
        self.graph_projection = nn.Parameter(
            nn.init.xavier_uniform(self.config.hidden_dim, 1), name="model.graph_projection"
        )
        self._reachability: Optional[ReachabilityMask] = None

    def train(self, mode: bool = True) -> "RNTrajRec":
        # Any train/eval flip may precede in-place parameter updates, so the
        # encoder's memoized X_road must not survive the transition.
        self.encoder.clear_road_cache()
        return super().train(mode)

    def load_state_dict(self, state, strict: bool = True, copy: bool = True) -> None:
        # The base implementation assigns parameters directly via
        # named_parameters() (it never recurses into submodule overrides),
        # so the encoder's memoized X_road must be dropped here — this is
        # the path load_checkpoint and the serving registry go through.
        self.encoder.clear_road_cache()
        super().load_state_dict(state, strict=strict, copy=copy)

    @property
    def reachability(self) -> Optional[ReachabilityMask]:
        if self.config.reachability_hops <= 0:
            return None
        if self._reachability is None:
            self._reachability = ReachabilityMask(
                self.network.out_neighbors, hops=self.config.reachability_hops
            )
        return self._reachability

    # ------------------------------------------------------------------
    def encode(self, batch: Batch) -> EncoderOutput:
        return self.encoder(batch)

    def compute_loss(self, batch: Batch, teacher_forcing_ratio: float = 0.5,
                     rng: Optional[np.random.Generator] = None) -> LossBreakdown:
        """Scheduled-sampling multi-task loss on one mini-batch."""
        encoded = self.encode(batch)
        constraint = batch.constraint_tensor(self.network.num_segments)
        decoded = self.decoder.forward_teacher(
            encoded.point_features, encoded.trajectory_feature, batch, constraint,
            teacher_forcing_ratio=teacher_forcing_ratio, rng=rng,
        )
        return total_loss(
            decoded,
            batch,
            encoded.node_features,
            encoded.graphs,
            self.graph_projection,
            lambda_rate=self.config.lambda_rate,
            lambda_graph=self.config.lambda_graph,
            use_graph_loss=self.config.use_graph_loss,
        )

    # ------------------------------------------------------------------
    def decode_constraint(self, batch: Batch) -> np.ndarray:
        """The (b, l_ρ, |V|) decode-time mask: the paper's Eq. 16 distance
        constraint, sharpened by the interpolation prior when configured.
        Factored out of :meth:`recover` so the continuous-batching engine's
        per-request admission replays the exact same ops."""
        constraint = batch.constraint_tensor(self.network.num_segments)
        if self.config.decode_prior_scale > 0:
            from .decoder import interpolation_prior

            constraint = constraint * interpolation_prior(
                batch, self.network, self.config.decode_prior_scale,
                self.config.decode_prior_floor,
            )
        return constraint

    def recover(self, batch: Batch, beam_width: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """Recover segments/rates (b, l_ρ); greedy, or beam search if
        ``beam_width`` > 1.  Runs under ``no_grad`` — inference never needs
        the autograd graph, and the encoder can memoize X_road."""
        with no_grad(), profile.section("model.recover"):
            with profile.section("model.encode"):
                encoded = self.encode(batch)
            constraint = self.decode_constraint(batch)
            if beam_width > 1:
                return self.decoder.decode_beam(
                    encoded.point_features, encoded.trajectory_feature,
                    batch.target_length, constraint, beam_width=beam_width,
                )
            return self.decoder.decode_greedy(
                encoded.point_features,
                encoded.trajectory_feature,
                batch.target_length,
                constraint,
                reachability=self.reachability,
            )

    def recover_trajectories(self, batch: Batch) -> List[MatchedTrajectory]:
        """Recovered trajectories as first-class objects."""
        segments, rates = self.recover(batch)
        return [
            MatchedTrajectory(segments[i], rates[i], batch.target_times[i])
            for i in range(batch.size)
        ]

    def recover_padded(
        self, batch: Batch, target_lengths: Sequence[int]
    ) -> List[MatchedTrajectory]:
        """Batched no-teacher-forcing recovery of a target-padded batch.

        The serving scheduler coalesces concurrent requests whose target
        lengths differ by padding them to a common grid
        (:func:`~repro.trajectory.dataset.make_padded_batch`); this decodes
        the whole batch in one greedy pass and truncates each output back
        to its true length.  Greedy decoding is stepwise-causal and every
        per-step computation is row-independent, so the truncated outputs
        equal per-request :meth:`recover` calls.
        """
        if len(target_lengths) != batch.size:
            raise ValueError("target_lengths must have one entry per sample")
        segments, rates = self.recover(batch)
        return [
            MatchedTrajectory(segments[i, :length], rates[i, :length],
                              batch.target_times[i, :length])
            for i, length in enumerate(target_lengths)
        ]
