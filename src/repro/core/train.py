"""Training loop shared by RNTrajRec and every learned baseline.

Adam, gradient clipping, teacher forcing, deterministic batch order per
epoch seed, and per-epoch validation accuracy.  Any model exposing
``compute_loss(batch) -> LossBreakdown`` and
``recover(batch) -> (segments, rates)`` can be trained.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .. import nn
from ..trajectory.dataset import Batch, RecoverySample, iterate_batches


class RecoveryModel(Protocol):
    """Structural interface the trainer requires."""

    def compute_loss(self, batch: Batch): ...
    def recover(self, batch: Batch) -> Tuple[np.ndarray, np.ndarray]: ...
    def parameters(self) -> list: ...
    def train(self, mode: bool = True): ...
    def eval(self): ...
    def zero_grad(self) -> None: ...


@dataclass
class TrainConfig:
    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    teacher_forcing_ratio: float = 0.5
    seed: int = 0
    log_every: int = 0            # 0 disables step logging
    validate: bool = True


@dataclass
class EpochStats:
    epoch: int
    loss: float
    id_loss: float
    rate_loss: float
    graph_loss: float
    val_accuracy: Optional[float]
    seconds: float


@dataclass
class TrainResult:
    history: List[EpochStats] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.history[-1].loss if self.history else float("nan")

    @property
    def best_val_accuracy(self) -> float:
        accs = [e.val_accuracy for e in self.history if e.val_accuracy is not None]
        return max(accs) if accs else float("nan")


def quick_accuracy(model: RecoveryModel, samples: Sequence[RecoverySample],
                   batch_size: int = 16, limit: Optional[int] = None) -> float:
    """Mean per-point segment accuracy of greedy recovery."""
    model.eval()
    subset = list(samples[:limit]) if limit else list(samples)
    if not subset:
        return float("nan")
    correct = 0
    total = 0
    for batch in iterate_batches(subset, batch_size):
        segments, _ = model.recover(batch)
        correct += int((segments == batch.target_segments).sum())
        total += segments.size
    model.train()
    return correct / max(total, 1)


class Trainer:
    """Adam trainer with teacher forcing."""

    def __init__(self, model: RecoveryModel, config: Optional[TrainConfig] = None) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = nn.Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )

    def fit(
        self,
        train_samples: Sequence[RecoverySample],
        val_samples: Sequence[RecoverySample] = (),
        progress: Optional[Callable[[EpochStats], None]] = None,
    ) -> TrainResult:
        cfg = self.config
        result = TrainResult()
        self.model.train()
        rng = np.random.default_rng(cfg.seed)

        for epoch in range(cfg.epochs):
            start = time.perf_counter()
            losses: List[float] = []
            id_losses: List[float] = []
            rate_losses: List[float] = []
            graph_losses: List[float] = []

            for step, batch in enumerate(
                iterate_batches(train_samples, cfg.batch_size, shuffle=True, seed=cfg.seed + epoch)
            ):
                self.model.zero_grad()
                breakdown = self.model.compute_loss(
                    batch, teacher_forcing_ratio=cfg.teacher_forcing_ratio, rng=rng
                )
                breakdown.total.backward()
                nn.clip_grad_norm(self.model.parameters(), cfg.clip_norm)
                self.optimizer.step()

                losses.append(breakdown.total.item())
                id_losses.append(breakdown.id_loss)
                rate_losses.append(breakdown.rate_loss)
                graph_losses.append(breakdown.graph_loss)
                if cfg.log_every and (step + 1) % cfg.log_every == 0:
                    print(f"  epoch {epoch} step {step + 1}: loss {losses[-1]:.4f}")

            val_acc = None
            if cfg.validate and len(val_samples):
                val_acc = quick_accuracy(self.model, val_samples, cfg.batch_size)

            stats = EpochStats(
                epoch=epoch,
                loss=float(np.mean(losses)) if losses else float("nan"),
                id_loss=float(np.mean(id_losses)) if id_losses else float("nan"),
                rate_loss=float(np.mean(rate_losses)) if rate_losses else float("nan"),
                graph_loss=float(np.mean(graph_losses)) if graph_losses else float("nan"),
                val_accuracy=val_acc,
                seconds=time.perf_counter() - start,
            )
            result.history.append(stats)
            if progress is not None:
                progress(stats)
        self.model.eval()
        return result
