"""Deprecated shim — the trainer moved to :mod:`repro.train`.

The seed training loop that lived here was promoted into a full
subsystem (callback pipeline, exact-resume checkpointing, LR schedules,
gradient accumulation, data-parallel gradient workers, train→deploy
bundling).  Import from :mod:`repro.train` in new code::

    from repro.train import Trainer, TrainConfig, ParallelTrainer

Every historical name keeps working from here so existing imports
(``from repro.core import Trainer`` / ``from repro.core.train import
quick_accuracy``) are unaffected.
"""

from __future__ import annotations

from ..train import (  # noqa: F401  (re-exports)
    EpochStats,
    ParallelTrainer,
    RecoveryModel,
    TrainConfig,
    TrainResult,
    Trainer,
    quick_accuracy,
)

__all__ = [
    "EpochStats",
    "ParallelTrainer",
    "RecoveryModel",
    "TrainConfig",
    "TrainResult",
    "Trainer",
    "quick_accuracy",
]
