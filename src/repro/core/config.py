"""Configuration for RNTrajRec and its ablation variants (§VI-A3, §VI-G).

Defaults follow the paper where they are computationally feasible on CPU:
M = N = 2 stacked layers, P = 1 GAT in the graph refinement layer,
δ = 400 m receptive field, γ = 30 m influence scale, β = 15 m constraint
kernel, λ1 = 10, λ2 = 0.1, 8 attention heads.  The hidden size defaults to
32 instead of the paper's 512 — the substrate is numpy on CPU, and the
benchmark harness compares methods at matched capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple


@dataclass(frozen=True)
class RNTrajRecConfig:
    """Hyper-parameters of the full model; flags switch ablation variants."""

    hidden_dim: int = 32
    num_heads: int = 4
    num_road_gat_layers: int = 2    # M — GAT depth in GridGNN
    num_gpsformer_layers: int = 2   # N — GPSFormerBlock count
    num_grl_gat_layers: int = 1     # P — GAT depth in graph refinement
    receptive_delta: float = 400.0  # δ meters, sub-graph radius
    influence_gamma: float = 30.0   # γ meters, Eq. 5 kernel
    constraint_beta: float = 15.0   # β meters, Eq. 16 mask kernel
    lambda_rate: float = 10.0       # λ1
    lambda_graph: float = 0.1       # λ2
    grid_cell_size: float = 50.0
    dropout: float = 0.1
    max_subgraph_nodes: int = 48    # cap per sub-graph for tractability

    # Ablation switches (Table V) — all True for the full model.
    use_grl: bool = True            # w/o GRL: plain transformer stack
    use_gated_fusion: bool = True   # w/o GF: concat + FFN
    use_graph_norm: bool = True     # w/o GN: layer norm
    use_gat_forward: bool = True    # w/o GAT: feed-forward graph update
    use_graph_loss: bool = True     # w/o GCL: drop L_enc

    # Fig. 7(a): road-network encoder choice.
    road_encoder: str = "gridgnn"   # gridgnn | gcn | gin | gat

    # §VI-I (Discussion): refine per-node sub-graph weights from the
    # refined embeddings before each graph readout.  The paper reports this
    # *hurts* (linear transformation too weak without supervision); kept to
    # reproduce that negative result.  none | sigmoid | softmax.
    weight_refinement: str = "none"

    # Spatial-consistency decoding (k-hop reachability mask at inference;
    # 0 disables).  Applied to every learned method by the harness.
    reachability_hops: int = 2

    # Decode-time position prior: unobserved steps multiply the candidate
    # mask by exp(-d²/scale²) where d is the segment's distance to the
    # linearly interpolated position.  A Bayesian combination of the
    # learned logits with the uniform-speed prior; shared by all learned
    # methods (see DESIGN.md).  0 disables.
    decode_prior_scale: float = 150.0
    decode_prior_floor: float = 0.005

    def variant(self, **overrides) -> "RNTrajRecConfig":
        """A copy with some fields replaced (ablation helper)."""
        return replace(self, **overrides)

    def ablation(self, name: str) -> "RNTrajRecConfig":
        """Named Table-V variants: 'grl', 'gf', 'gat', 'gn', 'gcl'."""
        mapping = {
            "grl": {"use_grl": False},
            "gf": {"use_gated_fusion": False},
            "gat": {"use_gat_forward": False},
            "gn": {"use_graph_norm": False},
            "gcl": {"use_graph_loss": False},
        }
        if name not in mapping:
            raise ValueError(f"unknown ablation {name!r}; expected one of {sorted(mapping)}")
        return self.variant(**mapping[name])
