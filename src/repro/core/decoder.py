"""Attention GRU decoder with constraint mask and multi-task heads
(§IV-G, §V; architecture from MTrajRec [11], reused by every end-to-end
baseline per the paper's Remark 2).

Per output timestep j:

1. additive attention (Eq. 14) over encoder outputs yields context a(j);
2. the GRU consumes [x(j-1) ‖ r(j-1) ‖ a(j)] (Eq. 15) where x is the
   embedding of the previous road segment and r its moving ratio;
3. the **segment head** scores all |V| segments, multiplied by the
   constraint mask c_j (Eq. 16) — observed timestamps restrict candidates
   to segments near the observed fix;
4. the **rate head** predicts the moving ratio via
   σ([x(j) ‖ h(j)] · w_rate) (Eq. 17).

Training uses teacher forcing (ground-truth x/r inputs); inference decodes
greedily with the same constraint masks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .. import nn, profile
from ..nn import functional as F
from ..nn.graph import csr_from_lists, ragged_positions, sorted_lookup
from ..nn.tensor import Tensor, no_grad
from ..trajectory.dataset import Batch
from .config import RNTrajRecConfig


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Raw-array twin of :meth:`repro.nn.tensor.Tensor.sigmoid` — same
    clipping and branch structure, so values are bit-identical.  The clip
    is spelled as its ufunc definition (``minimum(maximum(x, lo), hi)``,
    bit-equal by construction) because ``np.clip``'s dispatch overhead is
    measurable at the (1, d) sizes the decode engine steps with."""
    clipped = np.minimum(np.maximum(x, -60.0), 60.0)
    exp_neg = np.exp(-np.abs(clipped))
    return np.where(clipped >= 0, 1.0 / (1.0 + exp_neg), exp_neg / (1.0 + exp_neg))


@dataclass
class DecoderOutput:
    """Stacked per-step decoder outputs."""

    segment_log_probs: Tensor   # (b, l_ρ, |V|) — masked log softmax
    rates: Tensor               # (b, l_ρ)


@dataclass
class GreedyWeights:
    """Raw arrays of every parameter the greedy kernel touches, unpacked once.

    The run-to-completion kernel unpacks these at the top of each decode
    call; the continuous-batching engine (``repro.serve.engine``) instead
    caches one bundle per model generation tag, so every slot decoding
    under the same tag shares the same unpacked weights and the per-step
    cost is pure math.  The arrays are references to (not copies of) the
    decoder's parameters — a bundle is only valid for as long as the model
    generation it was built from (generation tags are immutable: a
    re-register bumps the tag, so the serving layer can key caches on it).
    """

    w_h: np.ndarray          # attention key projection (d, d)
    w_g: np.ndarray          # attention query projection (d, d)
    v: np.ndarray            # attention energy vector (d,)
    w_z: np.ndarray          # GRU update gate (3d+1, d)
    b_z: np.ndarray
    w_r: np.ndarray          # GRU reset gate
    b_r: np.ndarray
    w_c: np.ndarray          # GRU candidate
    b_c: np.ndarray
    head: np.ndarray         # segment head (d, |V|)
    rate_w: np.ndarray       # rate head (2d, 1)
    rate_b: np.ndarray
    embed_table: np.ndarray  # segment embeddings (|V|, d)
    start: np.ndarray        # learned start embedding (d,)
    num_segments: int
    hidden_dim: int

    @classmethod
    def from_decoder(cls, decoder: "RecoveryDecoder") -> "GreedyWeights":
        attention, gru = decoder.attention, decoder.gru
        return cls(
            w_h=attention.w_h.weight.data,
            w_g=attention.w_g.weight.data,
            v=attention.v.data,
            w_z=gru.w_z.data, b_z=gru.b_z.data,
            w_r=gru.w_r.data, b_r=gru.b_r.data,
            w_c=gru.w_c.data, b_c=gru.b_c.data,
            head=decoder.segment_head.weight.data,
            rate_w=decoder.rate_head.weight.data,
            rate_b=decoder.rate_head.bias.data,
            embed_table=decoder.segment_embedding.weight.data,
            start=decoder.start_embedding.data,
            num_segments=decoder.num_segments,
            hidden_dim=decoder.config.hidden_dim,
        )

    def project_keys(self, enc: np.ndarray) -> np.ndarray:
        """W_h·enc — constant across a sequence's decode steps, so it is
        hoisted: once per kernel call here, once per *admission* in the
        continuous engine (amortized over every step of the slot)."""
        return enc @ self.w_h


def greedy_step(
    weights: GreedyWeights,
    enc: np.ndarray,
    keys: np.ndarray,
    carry: "GreedyCarry",
    mask_row: Optional[np.ndarray],
    reachability: Optional["ReachabilityMask"],
) -> Tuple[np.ndarray, np.ndarray, "GreedyCarry"]:
    """One greedy decode step; returns (predicted (b,), rates (b,), carry).

    This is the loop body of :meth:`RecoveryDecoder._greedy_kernel`, shared
    verbatim between the run-to-completion kernel and the continuous-
    batching engine's per-slot stepper so the two can never drift: a slot
    stepped ``n`` times replays the exact floating-point op sequence of an
    ``n``-step kernel call on the same carry.  ``mask_row`` is the step's
    raw constraint row (a view is fine — nothing here mutates it);
    the reachability combine with ``carry.prev_segments`` happens inside,
    exactly as the full kernel does it.
    """
    state, prev_embed, prev_rate = carry.state, carry.prev_embed, carry.prev_rate
    prev_segments = carry.prev_segments
    b, length = enc.shape[0], enc.shape[1]
    if reachability is not None and prev_segments is not None:
        mask_row = reachability.combine(mask_row, prev_segments,
                                        weights.num_segments)
    # Additive attention (Eq. 14), mirroring AdditiveAttention.
    energy = np.tanh((state @ weights.w_g).reshape(b, 1, -1) + keys) @ weights.v
    scores = energy.reshape(b, length)
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    attn = exp / exp.sum(axis=-1, keepdims=True)
    context = (attn.reshape(b, 1, -1) @ enc).reshape(b, -1)
    # GRU cell (Eq. 15), mirroring nn.GRUCell.forward.
    x = np.concatenate([prev_embed, prev_rate, context], axis=-1)
    hx = np.concatenate([state, x], axis=-1)
    z = _sigmoid(hx @ weights.w_z + weights.b_z)
    r = _sigmoid(hx @ weights.w_r + weights.b_r)
    rhx = np.concatenate([r * state, x], axis=-1)
    c = np.tanh(rhx @ weights.w_c + weights.b_c)
    state = (1.0 - z) * state + z * c
    # Segment head + Eq. 16 mask, argmax only.
    logits = state @ weights.head
    if mask_row is not None:
        logits = logits + np.log(np.maximum(mask_row, 1e-12))
    predicted = np.argmax(logits, axis=-1)
    # Rate head (Eq. 17), mirroring _rate.
    prev_embed = weights.embed_table[predicted]
    rate = _sigmoid(
        np.concatenate([prev_embed, state], axis=-1) @ weights.rate_w
        + weights.rate_b
    )
    rates = np.minimum(np.maximum(rate.reshape(b), 0.0), 1.0 - 1e-9)
    return predicted, rates, GreedyCarry(state, prev_embed, rates[:, None],
                                         predicted)


@dataclass
class GreedyCarry:
    """Raw recurrent state of the greedy kernel between two decode spans.

    Greedy decoding is stepwise-causal: everything step j needs from steps
    < j is this carry — the GRU state, the previous segment's embedding and
    rate (the step's inputs), and the previous segment id (for the
    reachability mask).  Splitting a decode at any step and resuming from
    the carry therefore replays the exact floating-point op sequence of the
    unsplit decode, which is what the streaming engine's replay + suffix
    path builds on (asserted bit-for-bit by ``tests/test_stream.py``).
    """

    state: np.ndarray                     # (b, d) GRU hidden state
    prev_embed: np.ndarray                # (b, d) previous segment embedding
    prev_rate: np.ndarray                 # (b, 1) previous moving ratio
    prev_segments: Optional[np.ndarray]   # (b,) previous segment ids (None
                                          # before the first decoded step)


class RecoveryDecoder(nn.Module):
    """Multi-task GRU decoder over road segments and moving ratios."""

    def __init__(self, num_segments: int, config: RNTrajRecConfig) -> None:
        super().__init__()
        d = config.hidden_dim
        self.num_segments = num_segments
        self.config = config

        self.segment_embedding = nn.Embedding(num_segments, d)
        self.start_embedding = nn.Parameter(nn.init.normal((d,), std=0.02), name="decoder.start")
        self.attention = nn.AdditiveAttention(d)
        self.gru = nn.GRUCell(2 * d + 1, d)
        self.segment_head = nn.Linear(d, num_segments, bias=False)
        self.rate_head = nn.Linear(2 * d, 1)

    # ------------------------------------------------------------------
    def _step(
        self,
        prev_embed: Tensor,
        prev_rate: Tensor,
        state: Tensor,
        encoder_outputs: Tensor,
        mask_row: Optional[np.ndarray],
        projected_keys: Optional[Tensor] = None,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """One decode step; returns (log_probs, new_state, context).

        ``projected_keys`` optionally carries the attention's W_h·enc
        projection, which is constant across steps — decode loops compute
        it once instead of per step.
        """
        logits, state, context = self._step_logits(
            prev_embed, prev_rate, state, encoder_outputs, projected_keys
        )
        if mask_row is not None:
            log_probs = F.masked_log_softmax(logits, mask_row, axis=-1)
        else:
            log_probs = F.log_softmax(logits, axis=-1)
        return log_probs, state, context

    def _step_logits(
        self,
        prev_embed: Tensor,
        prev_rate: Tensor,
        state: Tensor,
        encoder_outputs: Tensor,
        projected_keys: Optional[Tensor] = None,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Attention + GRU + segment head, without the softmax normalization
        (greedy decoding only needs the argmax, and log-softmax is a
        monotone per-row shift — see :meth:`decode_greedy`)."""
        context = self.attention(state, encoder_outputs, projected_keys=projected_keys)
        gru_input = nn.concat([prev_embed, prev_rate, context], axis=-1)
        state = self.gru(gru_input, state)
        return self.segment_head(state), state, context

    def _rate(self, segment_embed: Tensor, state: Tensor) -> Tensor:
        """Eq. 17 head: sigmoid of a bilinear score."""
        return self.rate_head(nn.concat([segment_embed, state], axis=-1)).sigmoid()

    # ------------------------------------------------------------------
    def forward_teacher(
        self,
        encoder_outputs: Tensor,
        initial_state: Tensor,
        batch: Batch,
        constraint: np.ndarray,
        teacher_forcing_ratio: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ) -> DecoderOutput:
        """Training pass with scheduled sampling (MTrajRec uses ratio 0.5).

        At each step the next-step input is the gold segment/ratio with
        probability ``teacher_forcing_ratio`` and the model's own greedy
        prediction otherwise, which closes the train/inference gap of pure
        teacher forcing.  The rate head is always supervised on the gold
        segment embedding (its target is the gold ratio).
        """
        rng = rng or np.random.default_rng(0)
        b, l_rho = batch.target_segments.shape
        state = initial_state
        prev_embed = self.start_embedding.reshape(1, -1) * Tensor(np.ones((b, 1)))
        prev_rate = Tensor(np.zeros((b, 1)))
        projected_keys = self.attention.project_keys(encoder_outputs)

        log_prob_steps: List[Tensor] = []
        rate_steps: List[Tensor] = []
        for j in range(l_rho):
            log_probs, state, _ = self._step(
                prev_embed, prev_rate, state, encoder_outputs, constraint[:, j, :],
                projected_keys=projected_keys,
            )
            log_prob_steps.append(log_probs)
            true_embed = self.segment_embedding(batch.target_segments[:, j])
            rate_steps.append(self._rate(true_embed, state).reshape(b))

            if teacher_forcing_ratio >= 1.0 or rng.random() < teacher_forcing_ratio:
                prev_embed = true_embed
                prev_rate = Tensor(batch.target_ratios[:, j][:, None])
            else:
                predicted = np.argmax(log_probs.data, axis=-1)
                prev_embed = self.segment_embedding(predicted)
                pred_rate = self._rate(prev_embed, state)
                prev_rate = Tensor(np.clip(pred_rate.data.reshape(b, 1), 0.0, 1.0 - 1e-9))

        return DecoderOutput(
            segment_log_probs=nn.stack(log_prob_steps, axis=1),
            rates=nn.stack(rate_steps, axis=1),
        )

    # ------------------------------------------------------------------
    def decode_greedy(
        self,
        encoder_outputs: Tensor,
        initial_state: Tensor,
        target_length: int,
        constraint: Optional[np.ndarray],
        reachability: Optional["ReachabilityMask"] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Greedy inference; returns (segments (b, l_ρ), rates (b, l_ρ)).

        ``reachability`` optionally enforces spatial consistency: after the
        first step, candidates at unobserved timestamps are restricted to
        segments reachable from the previous prediction within one ε_ρ
        interval (k-hop neighborhood).  Observed timestamps always keep the
        paper's distance-based constraint mask.

        The step recurrence is inherently sequential, but inference needs
        neither gradients nor normalized probabilities, so the loop runs as
        a raw-numpy kernel: the attention key projection is hoisted out of
        the loop, each step replays the exact floating-point operations of
        :meth:`_step_logits` on plain arrays (bit-identical outputs,
        asserted by ``tests/test_vectorized_equivalence.py``), and greedy
        selection uses ``argmax(logits + log mask)`` — the log-softmax
        normalizer is a constant per row and cannot change the argmax.
        """
        with profile.section("decode.greedy"):
            carry = self.initial_carry(initial_state.data)
            segments, rates, _ = self._greedy_kernel(
                encoder_outputs.data, carry, target_length, constraint,
                reachability,
            )
            return segments, rates

    # ------------------------------------------------------------------
    # Split greedy decoding (the streaming engine's primitives)
    # ------------------------------------------------------------------
    def initial_carry(self, initial_state: np.ndarray) -> GreedyCarry:
        """The carry a greedy decode starts from: the encoder's trajectory
        feature as GRU state, the learned start embedding, rate 0."""
        initial_state = np.asarray(initial_state)
        b = initial_state.shape[0]
        return GreedyCarry(
            state=initial_state,
            prev_embed=self.start_embedding.data.reshape(1, -1) * np.ones((b, 1)),
            prev_rate=np.zeros((b, 1)),
            prev_segments=None,
        )

    def decode_greedy_from(
        self,
        encoder_outputs,
        carry: GreedyCarry,
        num_steps: int,
        constraint: Optional[np.ndarray],
        reachability: Optional["ReachabilityMask"] = None,
    ) -> Tuple[np.ndarray, np.ndarray, GreedyCarry]:
        """Greedy-decode ``num_steps`` more steps from a carry.

        ``constraint`` covers exactly the decoded span — (b, num_steps, |V|)
        — not the whole grid.  With ``carry = initial_carry(...)`` this IS
        :meth:`decode_greedy`; with the carry returned by
        :meth:`replay_greedy` over a committed prefix it continues the
        decode bit-identically to the unsplit run (the reachability mask at
        the first step uses ``carry.prev_segments``, exactly as the full
        decode would use the prefix's last prediction).
        """
        with profile.section("decode.greedy"):
            enc = getattr(encoder_outputs, "data", encoder_outputs)
            return self._greedy_kernel(enc, carry, num_steps, constraint,
                                       reachability)

    def replay_greedy(
        self,
        encoder_outputs,
        carry: GreedyCarry,
        segments: np.ndarray,
    ) -> Tuple[np.ndarray, GreedyCarry]:
        """Advance the greedy carry along an already-decided segment path.

        Replays attention + GRU + rate head for each step of ``segments``
        (b, n) **without** the |V|-wide segment head, the constraint mask
        materialization or the argmax — the decisions are given.  Costs
        O(l_τ·d + d²) per step instead of O(d·|V|), which is what makes
        re-synchronizing a session's committed prefix against fresh encoder
        outputs cheap.  Given the same encoder outputs and the same
        decisions, state and rates are bit-identical to the full kernel's
        (same op order; the skipped logits/argmax never feed the state).
        """
        with profile.section("decode.replay"):
            enc = getattr(encoder_outputs, "data", encoder_outputs)
            attention, gru = self.attention, self.gru
            w_g, v = attention.w_g.weight.data, attention.v.data
            w_z, b_z = gru.w_z.data, gru.b_z.data
            w_r, b_r = gru.w_r.data, gru.b_r.data
            w_c, b_c = gru.w_c.data, gru.b_c.data
            rate_w = self.rate_head.weight.data
            rate_b = self.rate_head.bias.data
            embed_table = self.segment_embedding.weight.data

            segments = np.asarray(segments, dtype=np.int64)
            b, length = enc.shape[0], enc.shape[1]
            n = segments.shape[1]
            keys = enc @ attention.w_h.weight.data
            state, prev_embed, prev_rate = (
                carry.state, carry.prev_embed, carry.prev_rate)
            prev_segments = carry.prev_segments

            rates = np.zeros((b, n))
            for j in range(n):
                energy = np.tanh((state @ w_g).reshape(b, 1, -1) + keys) @ v
                scores = energy.reshape(b, length)
                shifted = scores - scores.max(axis=-1, keepdims=True)
                exp = np.exp(shifted)
                weights = exp / exp.sum(axis=-1, keepdims=True)
                context = (weights.reshape(b, 1, -1) @ enc).reshape(b, -1)
                x = np.concatenate([prev_embed, prev_rate, context], axis=-1)
                hx = np.concatenate([state, x], axis=-1)
                z = _sigmoid(hx @ w_z + b_z)
                r = _sigmoid(hx @ w_r + b_r)
                rhx = np.concatenate([r * state, x], axis=-1)
                c = np.tanh(rhx @ w_c + b_c)
                state = (1.0 - z) * state + z * c
                prev_segments = segments[:, j]
                prev_embed = embed_table[prev_segments]
                rate = _sigmoid(
                    np.concatenate([prev_embed, state], axis=-1) @ rate_w + rate_b
                )
                rates[:, j] = np.clip(rate.reshape(b), 0.0, 1.0 - 1e-9)
                prev_rate = rates[:, j][:, None]
            return rates, GreedyCarry(state, prev_embed, prev_rate, prev_segments)

    def _greedy_kernel(
        self,
        enc: np.ndarray,
        carry: GreedyCarry,
        num_steps: int,
        constraint: Optional[np.ndarray],
        reachability: Optional["ReachabilityMask"],
    ) -> Tuple[np.ndarray, np.ndarray, GreedyCarry]:
        """The shared raw-numpy greedy step loop (see :meth:`decode_greedy`).

        Weight unpacking + key projection happen once per call; each loop
        iteration is one :func:`greedy_step`, the same primitive the
        continuous-batching engine drives slot by slot.
        """
        weights = GreedyWeights.from_decoder(self)
        keys = weights.project_keys(enc)  # W_h·enc, constant per decode
        b = enc.shape[0]
        segments = np.zeros((b, num_steps), dtype=np.int64)
        rates = np.zeros((b, num_steps))
        for j in range(num_steps):
            # No step mutates the mask, so a view (not a copy) is safe.
            mask_row = constraint[:, j, :] if constraint is not None else None
            predicted, step_rates, carry = greedy_step(
                weights, enc, keys, carry, mask_row, reachability)
            segments[:, j] = predicted
            rates[:, j] = step_rates
        return segments, rates, carry

    def decode_greedy_step(
        self,
        enc: np.ndarray,
        keys: np.ndarray,
        carry: GreedyCarry,
        mask_row: Optional[np.ndarray],
        reachability: Optional["ReachabilityMask"] = None,
        weights: Optional[GreedyWeights] = None,
    ) -> Tuple[np.ndarray, np.ndarray, GreedyCarry]:
        """Advance every row one greedy step from its carry.

        The continuous-batching engine's primitive: ``n`` calls with the
        per-step constraint rows of an ``n``-step decode reproduce
        :meth:`decode_greedy_from` bit for bit (same shared loop body).
        ``keys`` is the hoisted ``W_h·enc`` projection
        (:meth:`GreedyWeights.project_keys`); pass ``weights`` to reuse a
        cached bundle across calls.
        """
        if weights is None:
            weights = GreedyWeights.from_decoder(self)
        return greedy_step(weights, enc, keys, carry, mask_row, reachability)


    # ------------------------------------------------------------------
    def decode_beam(
        self,
        encoder_outputs: Tensor,
        initial_state: Tensor,
        target_length: int,
        constraint: Optional[np.ndarray],
        beam_width: int = 4,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Beam-search decoding (extension; the paper decodes greedily).

        Tracks ``beam_width`` hypotheses per trajectory, scoring by summed
        masked log-probabilities.  All live hypotheses of one trajectory are
        stacked into the *batch axis* of a single :meth:`_step` call, and
        expansion is one top-k over the flattened (beams × |V|) score matrix
        — no per-beam Python candidate lists.  Selecting the global top
        ``beam_width`` of that matrix is equivalent to the classic
        per-beam-top-k-then-merge: a candidate outside its own beam's top
        ``beam_width`` is outranked by ``beam_width`` siblings and can never
        make the global cut.  The rate head runs once along the winning
        hypothesis.
        """
        with no_grad(), profile.section("decode.beam"):
            batch_size = encoder_outputs.shape[0]
            num_segments = self.num_segments
            segments = np.zeros((batch_size, target_length), dtype=np.int64)
            rates = np.zeros((batch_size, target_length))
            enc_data = encoder_outputs.data
            keys_data = self.attention.project_keys(encoder_outputs).data

            for i in range(batch_size):
                scores = np.zeros(1)
                histories = np.zeros((1, 0), dtype=np.int64)
                state = initial_state[i : i + 1]
                prev_embed = self.start_embedding.reshape(1, -1)
                prev_rate = Tensor(np.zeros((1, 1)))
                for j in range(target_length):
                    k = len(scores)
                    enc_k = Tensor(np.broadcast_to(enc_data[i], (k,) + enc_data[i].shape))
                    keys_k = Tensor(np.broadcast_to(keys_data[i], (k,) + keys_data[i].shape))
                    mask_row = None
                    if constraint is not None:
                        mask_row = np.broadcast_to(constraint[i, j, :], (k, num_segments))
                    log_probs, new_state, _ = self._step(
                        prev_embed, prev_rate, state, enc_k, mask_row,
                        projected_keys=keys_k,
                    )
                    flat = (scores[:, None] + log_probs.data).reshape(-1)
                    if flat.size > beam_width:
                        top = np.argpartition(-flat, beam_width - 1)[:beam_width]
                    else:
                        top = np.arange(flat.size)
                    # Deterministic ranking: score descending, index tiebreak.
                    top = top[np.lexsort((top, -flat[top]))]
                    beam_idx, sids = top // num_segments, top % num_segments
                    scores = flat[top]
                    histories = np.concatenate(
                        [histories[beam_idx], sids[:, None]], axis=1
                    )
                    state = Tensor(new_state.data[beam_idx])
                    prev_embed = self.segment_embedding(sids)
                    rate = self._rate(prev_embed, state)
                    prev_rate = Tensor(np.clip(rate.data.reshape(-1, 1), 0.0, 1.0 - 1e-9))
                segments[i] = histories[int(np.argmax(scores))]
                # Re-run the rate head along the winning path for per-step rates.
                enc_i = encoder_outputs[i : i + 1]
                keys_i = Tensor(keys_data[i : i + 1])
                state = initial_state[i : i + 1]
                prev_embed = self.start_embedding.reshape(1, -1)
                prev_rate = Tensor(np.zeros((1, 1)))
                for j in range(target_length):
                    # Only the recurrent state matters here (the path is
                    # fixed), so skip the softmax entirely.
                    _, state, _ = self._step_logits(
                        prev_embed, prev_rate, state, enc_i, projected_keys=keys_i,
                    )
                    prev_embed = self.segment_embedding(segments[i, j : j + 1])
                    rate = self._rate(prev_embed, state)
                    rates[i, j] = float(np.clip(rate.data.reshape(-1)[0], 0.0, 1.0 - 1e-9))
                    prev_rate = Tensor(np.full((1, 1), rates[i, j]))
            return segments, rates


def interpolation_prior(batch: Batch, network, scale: float, floor: float) -> np.ndarray:
    """(b, l_ρ, |V|) decode prior from linear position interpolation.

    For each target timestamp the low-sample input is linearly interpolated
    to an approximate position; segments within ~3·scale meters receive
    weight exp(-d²/scale²) (Eq. 5's kernel) and everything else ``floor``.
    Combining this prior with the learned logits at decode time is a
    Bayesian product of experts: the uniform-speed prior anchors positions
    while the model disambiguates direction, route and timing.

    Steps that interpolate to the same position (clamped tails past the
    last fix, padded serving grids, stationary spans — deduplicated across
    the *whole batch*, not just consecutive steps) share one R-tree query,
    and each query's hits scatter into the prior in one fancy-indexed
    assignment rather than a per-hit Python loop.
    """
    with profile.section("decode.prior"):
        b, l_rho = batch.target_segments.shape
        num_segments = network.num_segments
        prior = np.full((b * l_rho, num_segments), floor)
        radius = 3.0 * scale

        positions = np.empty((b, l_rho, 2))
        for i, sample in enumerate(batch.samples):
            low = sample.raw_low
            positions[i, :, 0] = np.interp(batch.target_times[i], low.times, low.xy[:, 0])
            positions[i, :, 1] = np.interp(batch.target_times[i], low.times, low.xy[:, 1])

        flat = positions.reshape(-1, 2)
        _, first, inverse = np.unique(flat, axis=0, return_index=True,
                                      return_inverse=True)
        inverse = inverse.reshape(-1)
        # Rows of ``prior`` grouped by their distinct interpolated position.
        order = np.argsort(inverse, kind="stable")
        boundaries = np.searchsorted(inverse[order], np.arange(len(first) + 1))
        # All distinct positions' radius queries and kernel weights in one
        # batched pass (identical per-element math to the single-point
        # query, so the prior is bit-equal to a per-position loop).
        indptr, ids, dists = network.segments_within_batch(flat[first], radius)
        weights = np.maximum(np.exp(-(dists / scale) ** 2), floor)
        for u in range(len(first)):
            cols = ids[indptr[u] : indptr[u + 1]]
            if not len(cols):
                continue
            rows = order[boundaries[u] : boundaries[u + 1]]
            prior[np.ix_(rows, cols)] = weights[indptr[u] : indptr[u + 1]]
        return prior.reshape(b, l_rho, num_segments)


class ReachabilityMask:
    """k-hop forward reachability over the road graph for decoding.

    The set R(s) = {s} ∪ N_out(s) ∪ ... ∪ N_out^k(s) contains every segment
    a vehicle can occupy one ε_ρ interval after being on s.  Combining this
    with the observed-step constraint mask keeps greedy decoding spatially
    consistent — the motivation the paper gives for road-network awareness
    (§I); the original MTrajRec decoder omits it and relies on massive
    training data instead (see DESIGN.md).
    """

    def __init__(self, out_neighbors: List[List[int]], hops: int = 2,
                 escape_weight: float = 0.02) -> None:
        self.hops = hops
        self.escape_weight = escape_weight
        n = len(out_neighbors)
        self.num_nodes = n

        # CSR adjacency of the road graph.
        adj_indptr, adj_indices, degree = csr_from_lists(out_neighbors)

        # Multi-source BFS, vectorized over ALL start nodes at once: the
        # frontier is a flat array of (root, node) pairs encoded as
        # root * n + node; each hop expands every pair's neighbors with one
        # ragged gather and dedupes against the reached set with sorted
        # searchsorted membership.  Replaces the per-node Python set-union
        # BFS (see repro.core.reference.ReferenceReachability).
        identity = np.arange(n, dtype=np.int64) * n + np.arange(n, dtype=np.int64)
        reached_keys = identity  # sorted
        frontier_keys = identity
        for _ in range(hops):
            nodes = frontier_keys % n
            roots = frontier_keys // n
            counts = degree[nodes]
            neighbor_nodes = adj_indices[ragged_positions(adj_indptr[nodes], counts)]
            candidate = np.unique(np.repeat(roots, counts) * n + neighbor_nodes)
            already_reached, _ = sorted_lookup(reached_keys, candidate)
            frontier_keys = candidate[~already_reached]
            if not len(frontier_keys):
                break
            reached_keys = np.union1d(reached_keys, frontier_keys)

        # Final closure as CSR: keys are sorted, so roots group contiguously.
        roots = reached_keys // n
        self._indices = reached_keys % n
        self._indptr = np.searchsorted(roots, np.arange(n + 1, dtype=np.int64))
        self._sets_view: Optional[List[np.ndarray]] = None

    @classmethod
    def from_arrays(cls, indptr: np.ndarray, indices: np.ndarray,
                    hops: int = 2, escape_weight: float = 0.02) -> "ReachabilityMask":
        """A mask over an externally owned (possibly memory-mapped,
        write-protected) CSR closure, skipping the multi-source BFS.

        The closure arrays fully determine :meth:`combine`'s output, so a
        mask rebuilt this way is bit-identical to the one the arrays were
        exported from.  Nothing is copied; ``combine`` always writes into
        freshly allocated outputs, so read-only sources are safe.
        """
        mask = object.__new__(cls)
        mask.hops = int(hops)
        mask.escape_weight = float(escape_weight)
        mask._indptr = np.asarray(indptr, dtype=np.int64)
        mask._indices = np.asarray(indices, dtype=np.int64)
        mask.num_nodes = int(len(mask._indptr) - 1)
        mask._sets_view = None
        return mask

    @property
    def _sets(self) -> List[np.ndarray]:
        """Per-node reachable-id arrays (compatibility/introspection view),
        split once and memoized — the CSR arrays are immutable."""
        if self._sets_view is None:
            self._sets_view = np.split(self._indices, self._indptr[1:-1])
        return self._sets_view

    def combine(self, mask_row: Optional[np.ndarray], previous: np.ndarray,
                num_segments: int) -> np.ndarray:
        """Down-weight (b, |V|) mask entries unreachable from ``previous``.

        Soft masking: unreachable segments keep ``escape_weight`` of their
        mask weight rather than zero, so a confident model can recover from
        an earlier wrong turn instead of being locked into it.  The batch
        dimension is handled with one ragged CSR gather + fancy-indexed
        restore instead of a per-row Python loop.
        """
        previous = np.asarray(previous, dtype=np.int64)
        b = len(previous)
        if mask_row is None:
            mask_row = np.ones((b, num_segments))
        out = mask_row * self.escape_weight
        if b == 1:
            # Engine slots decode batch-of-1: the reachable columns are one
            # contiguous CSR slice, no ragged gather needed.  Same columns,
            # same writes, same bits as the general path below.
            p = int(previous[0])
            cols = self._indices[self._indptr[p]:self._indptr[p + 1]]
            out[0, cols] = mask_row[0, cols]
            return out
        starts = self._indptr[previous]
        counts = self._indptr[previous + 1] - starts
        rows = np.repeat(np.arange(b), counts)
        cols = self._indices[ragged_positions(starts, counts)]
        out[rows, cols] = mask_row[rows, cols]
        return out
