"""Attention GRU decoder with constraint mask and multi-task heads
(§IV-G, §V; architecture from MTrajRec [11], reused by every end-to-end
baseline per the paper's Remark 2).

Per output timestep j:

1. additive attention (Eq. 14) over encoder outputs yields context a(j);
2. the GRU consumes [x(j-1) ‖ r(j-1) ‖ a(j)] (Eq. 15) where x is the
   embedding of the previous road segment and r its moving ratio;
3. the **segment head** scores all |V| segments, multiplied by the
   constraint mask c_j (Eq. 16) — observed timestamps restrict candidates
   to segments near the observed fix;
4. the **rate head** predicts the moving ratio via
   σ([x(j) ‖ h(j)] · w_rate) (Eq. 17).

Training uses teacher forcing (ground-truth x/r inputs); inference decodes
greedily with the same constraint masks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor, gather_rows
from ..trajectory.dataset import Batch
from .config import RNTrajRecConfig


@dataclass
class DecoderOutput:
    """Stacked per-step decoder outputs."""

    segment_log_probs: Tensor   # (b, l_ρ, |V|) — masked log softmax
    rates: Tensor               # (b, l_ρ)


class RecoveryDecoder(nn.Module):
    """Multi-task GRU decoder over road segments and moving ratios."""

    def __init__(self, num_segments: int, config: RNTrajRecConfig) -> None:
        super().__init__()
        d = config.hidden_dim
        self.num_segments = num_segments
        self.config = config

        self.segment_embedding = nn.Embedding(num_segments, d)
        self.start_embedding = nn.Parameter(nn.init.normal((d,), std=0.02), name="decoder.start")
        self.attention = nn.AdditiveAttention(d)
        self.gru = nn.GRUCell(2 * d + 1, d)
        self.segment_head = nn.Linear(d, num_segments, bias=False)
        self.rate_head = nn.Linear(2 * d, 1)

    # ------------------------------------------------------------------
    def _step(
        self,
        prev_embed: Tensor,
        prev_rate: Tensor,
        state: Tensor,
        encoder_outputs: Tensor,
        mask_row: Optional[np.ndarray],
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """One decode step; returns (log_probs, new_state, context)."""
        context = self.attention(state, encoder_outputs)
        gru_input = nn.concat([prev_embed, prev_rate, context], axis=-1)
        state = self.gru(gru_input, state)
        logits = self.segment_head(state)
        if mask_row is not None:
            log_probs = F.masked_log_softmax(logits, mask_row, axis=-1)
        else:
            log_probs = F.log_softmax(logits, axis=-1)
        return log_probs, state, context

    def _rate(self, segment_embed: Tensor, state: Tensor) -> Tensor:
        """Eq. 17 head: sigmoid of a bilinear score."""
        return self.rate_head(nn.concat([segment_embed, state], axis=-1)).sigmoid()

    # ------------------------------------------------------------------
    def forward_teacher(
        self,
        encoder_outputs: Tensor,
        initial_state: Tensor,
        batch: Batch,
        constraint: np.ndarray,
        teacher_forcing_ratio: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ) -> DecoderOutput:
        """Training pass with scheduled sampling (MTrajRec uses ratio 0.5).

        At each step the next-step input is the gold segment/ratio with
        probability ``teacher_forcing_ratio`` and the model's own greedy
        prediction otherwise, which closes the train/inference gap of pure
        teacher forcing.  The rate head is always supervised on the gold
        segment embedding (its target is the gold ratio).
        """
        rng = rng or np.random.default_rng(0)
        b, l_rho = batch.target_segments.shape
        state = initial_state
        prev_embed = self.start_embedding.reshape(1, -1) * Tensor(np.ones((b, 1)))
        prev_rate = Tensor(np.zeros((b, 1)))

        log_prob_steps: List[Tensor] = []
        rate_steps: List[Tensor] = []
        for j in range(l_rho):
            log_probs, state, _ = self._step(
                prev_embed, prev_rate, state, encoder_outputs, constraint[:, j, :]
            )
            log_prob_steps.append(log_probs)
            true_embed = self.segment_embedding(batch.target_segments[:, j])
            rate_steps.append(self._rate(true_embed, state).reshape(b))

            if teacher_forcing_ratio >= 1.0 or rng.random() < teacher_forcing_ratio:
                prev_embed = true_embed
                prev_rate = Tensor(batch.target_ratios[:, j][:, None])
            else:
                predicted = np.argmax(log_probs.data, axis=-1)
                prev_embed = self.segment_embedding(predicted)
                pred_rate = self._rate(prev_embed, state)
                prev_rate = Tensor(np.clip(pred_rate.data.reshape(b, 1), 0.0, 1.0 - 1e-9))

        return DecoderOutput(
            segment_log_probs=nn.stack(log_prob_steps, axis=1),
            rates=nn.stack(rate_steps, axis=1),
        )

    # ------------------------------------------------------------------
    def decode_greedy(
        self,
        encoder_outputs: Tensor,
        initial_state: Tensor,
        target_length: int,
        constraint: Optional[np.ndarray],
        reachability: Optional["ReachabilityMask"] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Greedy inference; returns (segments (b, l_ρ), rates (b, l_ρ)).

        ``reachability`` optionally enforces spatial consistency: after the
        first step, candidates at unobserved timestamps are restricted to
        segments reachable from the previous prediction within one ε_ρ
        interval (k-hop neighborhood).  Observed timestamps always keep the
        paper's distance-based constraint mask.
        """
        b = encoder_outputs.shape[0]
        state = initial_state
        prev_embed = self.start_embedding.reshape(1, -1) * Tensor(np.ones((b, 1)))
        prev_rate = Tensor(np.zeros((b, 1)))

        segments = np.zeros((b, target_length), dtype=np.int64)
        rates = np.zeros((b, target_length))
        for j in range(target_length):
            mask_row = constraint[:, j, :].copy() if constraint is not None else None
            if reachability is not None and j > 0:
                mask_row = reachability.combine(mask_row, segments[:, j - 1], self.num_segments)
            log_probs, state, _ = self._step(prev_embed, prev_rate, state, encoder_outputs, mask_row)
            predicted = np.argmax(log_probs.data, axis=-1)
            segments[:, j] = predicted
            pred_embed = self.segment_embedding(predicted)
            rate = self._rate(pred_embed, state)
            rates[:, j] = np.clip(rate.data.reshape(b), 0.0, 1.0 - 1e-9)
            prev_embed = pred_embed
            prev_rate = Tensor(rates[:, j][:, None])
        return segments, rates


    # ------------------------------------------------------------------
    def decode_beam(
        self,
        encoder_outputs: Tensor,
        initial_state: Tensor,
        target_length: int,
        constraint: Optional[np.ndarray],
        beam_width: int = 4,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Beam-search decoding (extension; the paper decodes greedily).

        Tracks ``beam_width`` hypotheses per trajectory, scoring by summed
        masked log-probabilities.  Decodes each batch element independently
        (beam state bookkeeping dominates, so the loop is per-sample); the
        rate head runs once along the winning hypothesis.
        """
        batch_size = encoder_outputs.shape[0]
        segments = np.zeros((batch_size, target_length), dtype=np.int64)
        rates = np.zeros((batch_size, target_length))

        for i in range(batch_size):
            enc_i = encoder_outputs[i : i + 1]
            # Each hypothesis: (score, segment list, state, prev_embed, prev_rate)
            beams = [(
                0.0,
                [],
                initial_state[i : i + 1],
                self.start_embedding.reshape(1, -1),
                Tensor(np.zeros((1, 1))),
            )]
            for j in range(target_length):
                mask_row = constraint[i : i + 1, j, :] if constraint is not None else None
                candidates = []
                for score, history, state, prev_embed, prev_rate in beams:
                    log_probs, new_state, _ = self._step(
                        prev_embed, prev_rate, state, enc_i, mask_row
                    )
                    flat = log_probs.data.reshape(-1)
                    top = np.argpartition(-flat, min(beam_width, len(flat) - 1))[:beam_width]
                    for sid in top:
                        candidates.append((score + float(flat[sid]), history + [int(sid)],
                                           new_state, int(sid)))
                candidates.sort(key=lambda c: -c[0])
                beams = []
                for score, history, state, sid in candidates[:beam_width]:
                    embed = self.segment_embedding(np.array([sid]))
                    rate = self._rate(embed, state)
                    beams.append((score, history, state, embed,
                                  Tensor(np.clip(rate.data, 0.0, 1.0 - 1e-9))))
            best = max(beams, key=lambda b: b[0])
            segments[i] = best[1]
            # Re-run the rate head along the winning path for per-step rates.
            state = initial_state[i : i + 1]
            prev_embed = self.start_embedding.reshape(1, -1)
            prev_rate = Tensor(np.zeros((1, 1)))
            for j in range(target_length):
                _, state, _ = self._step(
                    prev_embed, prev_rate, state, enc_i,
                    constraint[i : i + 1, j, :] if constraint is not None else None,
                )
                prev_embed = self.segment_embedding(np.array([segments[i, j]]))
                rate = self._rate(prev_embed, state)
                rates[i, j] = float(np.clip(rate.data.reshape(-1)[0], 0.0, 1.0 - 1e-9))
                prev_rate = Tensor(np.full((1, 1), rates[i, j]))
        return segments, rates


def interpolation_prior(batch: Batch, network, scale: float, floor: float) -> np.ndarray:
    """(b, l_ρ, |V|) decode prior from linear position interpolation.

    For each target timestamp the low-sample input is linearly interpolated
    to an approximate position; segments within ~3·scale meters receive
    weight exp(-d²/scale²) (Eq. 5's kernel) and everything else ``floor``.
    Combining this prior with the learned logits at decode time is a
    Bayesian product of experts: the uniform-speed prior anchors positions
    while the model disambiguates direction, route and timing.
    """
    b, l_rho = batch.target_segments.shape
    num_segments = network.num_segments
    prior = np.full((b, l_rho, num_segments), floor)
    radius = 3.0 * scale
    for i, sample in enumerate(batch.samples):
        low = sample.raw_low
        xs = np.interp(batch.target_times[i], low.times, low.xy[:, 0])
        ys = np.interp(batch.target_times[i], low.times, low.xy[:, 1])
        # Consecutive steps that interpolate to the same position (clamped
        # tails past the last fix, padded serving grids, stationary spans)
        # share one R-tree query and prior row.
        prev_xy = None
        for j in range(l_rho):
            xy = (float(xs[j]), float(ys[j]))
            if xy == prev_xy:
                prior[i, j] = prior[i, j - 1]
                continue
            hits = network.segments_within(xy[0], xy[1], radius)
            for sid, dist in hits:
                prior[i, j, sid] = max(np.exp(-(dist / scale) ** 2), floor)
            prev_xy = xy
    return prior


class ReachabilityMask:
    """k-hop forward reachability over the road graph for decoding.

    The set R(s) = {s} ∪ N_out(s) ∪ ... ∪ N_out^k(s) contains every segment
    a vehicle can occupy one ε_ρ interval after being on s.  Combining this
    with the observed-step constraint mask keeps greedy decoding spatially
    consistent — the motivation the paper gives for road-network awareness
    (§I); the original MTrajRec decoder omits it and relies on massive
    training data instead (see DESIGN.md).
    """

    def __init__(self, out_neighbors: List[List[int]], hops: int = 2,
                 escape_weight: float = 0.02) -> None:
        self.hops = hops
        self.escape_weight = escape_weight
        self._sets: List[np.ndarray] = []
        for start, direct in enumerate(out_neighbors):
            frontier = {start}
            reached = {start}
            for _ in range(hops):
                frontier = {n for s in frontier for n in out_neighbors[s]} - reached
                reached |= frontier
            self._sets.append(np.fromiter(reached, dtype=np.int64))

    def combine(self, mask_row: Optional[np.ndarray], previous: np.ndarray,
                num_segments: int) -> np.ndarray:
        """Down-weight (b, |V|) mask entries unreachable from ``previous``.

        Soft masking: unreachable segments keep ``escape_weight`` of their
        mask weight rather than zero, so a confident model can recover from
        an earlier wrong turn instead of being locked into it.
        """
        b = len(previous)
        if mask_row is None:
            mask_row = np.ones((b, num_segments))
        out = mask_row * self.escape_weight
        for i in range(b):
            reachable = self._sets[int(previous[i])]
            out[i, reachable] = mask_row[i, reachable]
        return out
