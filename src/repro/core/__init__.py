"""RNTrajRec core: the paper's primary contribution."""

from .config import RNTrajRecConfig
from .decoder import DecoderOutput, GreedyCarry, RecoveryDecoder
from .gps_former import ENV_CONTEXT_DIM, EncoderOutput, GPSFormer, GPSFormerBlock
from .graph_refinement import (
    ConcatFusion,
    GatedFusion,
    GraphNorm,
    GraphRefinementLayer,
    mean_graph_readout,
    weighted_graph_readout,
)
from .grid_gnn import GridGNN, PlainRoadEncoder, build_road_encoder
from .loss import LossBreakdown, graph_classification_loss, rate_loss, segment_id_loss, total_loss
from .model import RNTrajRec
from .subgraph_gen import PointSubGraph, SubGraphBatch, SubGraphGenerator
# Deprecated re-exports: the trainer lives in repro.train now (see
# core/train.py, kept as a shim so historical imports stay valid).
from .train import EpochStats, TrainConfig, Trainer, TrainResult, quick_accuracy

__all__ = [
    "RNTrajRecConfig",
    "DecoderOutput",
    "GreedyCarry",
    "RecoveryDecoder",
    "ENV_CONTEXT_DIM",
    "EncoderOutput",
    "GPSFormer",
    "GPSFormerBlock",
    "ConcatFusion",
    "GatedFusion",
    "GraphNorm",
    "GraphRefinementLayer",
    "mean_graph_readout",
    "weighted_graph_readout",
    "GridGNN",
    "PlainRoadEncoder",
    "build_road_encoder",
    "LossBreakdown",
    "graph_classification_loss",
    "rate_loss",
    "segment_id_loss",
    "total_loss",
    "RNTrajRec",
    "PointSubGraph",
    "SubGraphBatch",
    "SubGraphGenerator",
    "EpochStats",
    "TrainConfig",
    "Trainer",
    "TrainResult",
    "quick_accuracy",
]
