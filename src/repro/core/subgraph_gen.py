"""Sub-Graph Generation (§IV-C).

Each GPS point p becomes a weighted directed sub-graph of the road network:
the segments within δ meters of p, the network edges among them, and
per-segment influence weights ω(e, p) = exp(-dist²(e, p)/γ²) (Eq. 5).

For batched processing the sub-graphs of all points of all trajectories in
a mini-batch are flattened into one disjoint union: a single node array
with ``graph_ids`` marking which (trajectory, timestep) each node belongs
to.  GNN layers and pooling then run once over the union.

Sub-graph structure depends only on the (static) input trajectories, so
:class:`SubGraphGenerator` memoizes per-point results keyed on quantized
coordinates.  The hot path is vectorized end to end:

* per-point local edges come from a precomputed CSR copy of the network's
  out-neighbor lists (one ragged gather + a reusable global→local lookup
  buffer) instead of per-node dict/set unions;
* :meth:`SubGraphGenerator.batch` deduplicates quantized points across the
  whole (b, l) grid, builds each distinct sub-graph once, and assembles
  the disjoint union with ragged CSR gathers instead of a per-point
  Python loop over list appends.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import profile
from ..geo.distance import gaussian_weight
from ..nn.graph import ragged_positions, sorted_lookup
from ..roadnet.network import RoadNetwork
from .config import RNTrajRecConfig


@dataclass
class PointSubGraph:
    """Sub-graph of a single GPS point (segment ids, local edges, weights)."""

    segments: np.ndarray      # (v,) road segment ids
    edges: np.ndarray         # (2, e) indices local to ``segments``
    weights: np.ndarray       # (v,) influence weights ω(e, p)


@dataclass
class SubGraphBatch:
    """Disjoint union of the sub-graphs of a (batch, length) point grid."""

    node_segments: np.ndarray  # (total_nodes,) road segment ids
    node_weights: np.ndarray   # (total_nodes,) Eq. 5 weights
    graph_ids: np.ndarray      # (total_nodes,) flat (b * l) graph index
    edge_index: np.ndarray     # (2, total_edges) into the flat node array
    batch_size: int
    length: int

    @property
    def num_graphs(self) -> int:
        return self.batch_size * self.length

    @property
    def num_nodes(self) -> int:
        return len(self.node_segments)


def _grow_1d(array: np.ndarray, needed: int) -> np.ndarray:
    """``array`` with capacity >= ``needed`` (amortized doubling)."""
    if len(array) >= needed:
        return array
    grown = np.empty(max(needed, 2 * len(array)), dtype=array.dtype)
    grown[: len(array)] = array
    return grown


def _grow_edges(array: np.ndarray, needed: int) -> np.ndarray:
    """(2, cap) edge buffer with capacity >= ``needed`` columns."""
    if array.shape[1] >= needed:
        return array
    grown = np.empty((2, max(needed, 2 * array.shape[1])), dtype=array.dtype)
    grown[:, : array.shape[1]] = array
    return grown


class SubGraphGenerator:
    """Builds :class:`PointSubGraph`/:class:`SubGraphBatch` objects."""

    def __init__(self, network: RoadNetwork, config: RNTrajRecConfig) -> None:
        self.network = network
        self.config = config
        # CSR view of the out-neighbor lists (cached on the network): local
        # sub-graph edges are one ragged gather over these arrays instead
        # of per-node set lookups.
        self._nbr_indptr, self._nbr_indices, self._degree = (
            network.csr_out_neighbors())
        # Reusable global→local scratch (reset after every use, so a
        # fresh O(|V|) allocation is not paid per point).
        self._local_of = np.full(network.num_segments, -1, dtype=np.int64)
        # The per-point cache IS the arena: every built sub-graph lives
        # exactly once, stacked in growable arrays (amortized-doubling
        # appends), so batch assembly is pure ragged gathers with zero
        # per-batch concatenation and a novel point costs only its own
        # copy-in.  Packed quantized keys map to arena slots through a
        # sorted array so a whole batch resolves with one searchsorted.
        # A shared model may be driven from several threads (the serving
        # scheduler's worker plus direct callers), and both the scratch
        # buffer and the arena are mutable — one lock serializes them.
        self._lock = threading.RLock()
        self._slot_of: Dict[Tuple[int, int], int] = {}
        self._view_of: Dict[int, PointSubGraph] = {}  # slot → shared view
        self._num_slots = 0
        self._node_indptr = np.zeros(64, dtype=np.int64)
        self._edge_indptr = np.zeros(64, dtype=np.int64)
        self._seg_data = np.empty(1024, dtype=np.int64)
        self._weight_data = np.empty(1024, dtype=np.float64)
        self._edge_data = np.empty((2, 2048), dtype=np.int64)
        self._known_keys = np.zeros(0, dtype=np.int64)   # sorted packed keys
        self._known_slots = np.zeros(0, dtype=np.int64)  # aligned arena slots

    def _sub_from_slot(self, slot: int) -> PointSubGraph:
        """A view-based :class:`PointSubGraph` over the arena's arrays.

        The arena is append-only (grown buffers copy the prefix), so views
        handed out remain valid and immutable in content.
        """
        n0, n1 = int(self._node_indptr[slot]), int(self._node_indptr[slot + 1])
        e0, e1 = int(self._edge_indptr[slot]), int(self._edge_indptr[slot + 1])
        return PointSubGraph(
            segments=self._seg_data[n0:n1],
            edges=self._edge_data[:, e0:e1],
            weights=self._weight_data[n0:n1],
        )

    def _slot(self, key: Tuple[int, int], x: float, y: float) -> int:
        """Arena slot of the sub-graph for a quantized key (build on miss)."""
        slot = self._slot_of.get(key)
        if slot is None:
            sub = self._build_subgraph(x, y)
            slot = self._slot_of[key] = self._num_slots
            self._num_slots += 1
            v, e = len(sub.segments), sub.edges.shape[1]
            nodes_used = int(self._node_indptr[slot])
            edges_used = int(self._edge_indptr[slot])
            self._node_indptr = _grow_1d(self._node_indptr, slot + 2)
            self._edge_indptr = _grow_1d(self._edge_indptr, slot + 2)
            self._node_indptr[slot + 1] = nodes_used + v
            self._edge_indptr[slot + 1] = edges_used + e
            self._seg_data = _grow_1d(self._seg_data, nodes_used + v)
            self._weight_data = _grow_1d(self._weight_data, nodes_used + v)
            self._seg_data[nodes_used : nodes_used + v] = sub.segments
            self._weight_data[nodes_used : nodes_used + v] = sub.weights
            self._edge_data = _grow_edges(self._edge_data, edges_used + e)
            self._edge_data[:, edges_used : edges_used + e] = sub.edges
        return slot

    def _resolve_slots(self, unique_keys: Optional[np.ndarray],
                       first: np.ndarray, quantized: np.ndarray,
                       flat: np.ndarray) -> np.ndarray:
        """Arena slots for a batch's distinct quantized points.

        Steady state (every key already seen) is a single ``searchsorted``
        over the sorted known-key array; only unseen keys fall back to the
        Python build path, after which the key index is re-merged.
        """
        if unique_keys is None:  # exotic coordinates: per-point Python path
            return np.fromiter(
                (self._slot((int(quantized[r, 0]), int(quantized[r, 1])),
                            float(flat[r, 0]), float(flat[r, 1]))
                 for r in first),
                dtype=np.int64, count=len(first),
            )
        known_keys, known_slots = self._known_keys, self._known_slots
        slots = np.empty(len(unique_keys), dtype=np.int64)
        hit, positions = sorted_lookup(known_keys, unique_keys)
        slots[hit] = known_slots[positions[hit]]
        missing = np.nonzero(~hit)[0]
        if len(missing):
            for u in missing:
                r = first[u]
                slots[u] = self._slot(
                    (int(quantized[r, 0]), int(quantized[r, 1])),
                    float(flat[r, 0]), float(flat[r, 1]),
                )
            merged_keys = np.concatenate([known_keys, unique_keys[missing]])
            merged_slots = np.concatenate([known_slots, slots[missing]])
            order = np.argsort(merged_keys, kind="stable")
            self._known_keys = merged_keys[order]
            self._known_slots = merged_slots[order]
        return slots

    def _stacks(self):
        """(node_indptr, seg_stack, weight_stack, edge_indptr, edge_stack)
        views over the arena's growable arrays."""
        n = self._num_slots
        nodes_used = int(self._node_indptr[n])
        edges_used = int(self._edge_indptr[n])
        return (
            self._node_indptr[: n + 1],
            self._seg_data[:nodes_used],
            self._weight_data[:nodes_used],
            self._edge_indptr[: n + 1],
            self._edge_data[:, :edges_used],
        )

    # ------------------------------------------------------------------
    def point_subgraph(self, x: float, y: float) -> PointSubGraph:
        """The weighted sub-graph around one GPS point (cached in the arena).

        Repeated calls for the same quantized point return the *same*
        view-backed object (zero-copy over the arena arrays).
        """
        key = (int(round(x)), int(round(y)))  # 1 m quantization
        with self._lock:
            slot = self._slot(key, x, y)
            view = self._view_of.get(slot)
            if view is None:
                view = self._view_of[slot] = self._sub_from_slot(slot)
            return view

    def _build_subgraph(self, x: float, y: float) -> PointSubGraph:
        """Construct one sub-graph from scratch (callers cache the result)."""
        cfg = self.config
        segments, distances = self.network.segments_within_arrays(
            x, y, cfg.receptive_delta)
        if not len(segments):
            sid, dist, _ = self.network.nearest_segment(x, y)
            segments = np.array([sid], dtype=np.int64)
            distances = np.array([dist])
        segments = segments[: cfg.max_subgraph_nodes]
        distances = distances[: cfg.max_subgraph_nodes]
        weights = np.maximum(gaussian_weight(distances, cfg.influence_gamma), 1e-8)

        v = len(segments)
        counts = self._degree[segments]
        neighbors = self._nbr_indices[
            ragged_positions(self._nbr_indptr[segments], counts)
        ]
        lookup = self._local_of
        lookup[segments] = np.arange(v, dtype=np.int64)
        dst = lookup[neighbors]
        lookup[segments] = -1  # reset the scratch for the next point
        keep = dst >= 0
        src = np.repeat(np.arange(v, dtype=np.int64), counts)[keep]
        dst = dst[keep]
        # Self-loops keep every node reachable by its own message.
        loops = np.arange(v, dtype=np.int64)
        edges = np.stack([np.concatenate([src, loops]),
                          np.concatenate([dst, loops])])
        return PointSubGraph(segments=segments, edges=edges, weights=weights)

    # ------------------------------------------------------------------
    def batch(self, xy: np.ndarray) -> SubGraphBatch:
        """Flatten sub-graphs of an (b, l, 2) point array into one union."""
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 3 or xy.shape[2] != 2:
            raise ValueError(f"expected (batch, length, 2) points, got {xy.shape}")
        b, l = xy.shape[0], xy.shape[1]

        with profile.section("subgraph.batch"), self._lock:
            flat = xy.reshape(-1, 2)
            # 1 m quantization, matching point_subgraph's cache key; points
            # sharing a key are built (and stored) once per batch.  The two
            # coordinates pack into one int64 so the dedupe is a fast 1-D
            # unique (axis=0 unique is an order of magnitude slower).
            quantized = np.round(flat).astype(np.int64)
            if np.abs(quantized).max(initial=0) < 2**31:
                packed = quantized[:, 0] * (2**32) + quantized[:, 1]
                unique_keys, first, inverse = np.unique(
                    packed, return_index=True, return_inverse=True)
            else:  # coordinates beyond ±2^31 m: fall back to row-wise unique
                unique_keys = None
                _, first, inverse = np.unique(quantized, axis=0,
                                              return_index=True,
                                              return_inverse=True)
            inverse = inverse.reshape(-1)
            slots = self._resolve_slots(unique_keys, first, quantized, flat)
            node_indptr, seg_stack, weight_stack, edge_indptr, edge_stack = (
                self._stacks())

            # Assemble the per-point union with ragged gathers over the
            # arena's stacked arrays.
            point_slots = slots[inverse]
            per_point_nodes = node_indptr[point_slots + 1] - node_indptr[point_slots]
            node_offsets = np.zeros(len(inverse), dtype=np.int64)
            np.cumsum(per_point_nodes[:-1], out=node_offsets[1:])
            node_pos = ragged_positions(node_indptr[point_slots], per_point_nodes)

            per_point_edges = edge_indptr[point_slots + 1] - edge_indptr[point_slots]
            edge_pos = ragged_positions(edge_indptr[point_slots], per_point_edges)
            edge_shift = np.repeat(node_offsets, per_point_edges)

            return SubGraphBatch(
                node_segments=seg_stack[node_pos],
                node_weights=weight_stack[node_pos],
                graph_ids=np.repeat(np.arange(b * l, dtype=np.int64),
                                    per_point_nodes),
                edge_index=edge_stack[:, edge_pos] + edge_shift[None, :],
                batch_size=b,
                length=l,
            )

    def clear_cache(self) -> None:
        with self._lock:
            self._slot_of.clear()
            self._view_of.clear()
            self._num_slots = 0
            # Growable buffers are REPLACED, not reset in place: sub-graphs
            # handed out earlier hold views into the old buffers and must
            # keep their content.
            self._node_indptr = np.zeros(64, dtype=np.int64)
            self._edge_indptr = np.zeros(64, dtype=np.int64)
            self._seg_data = np.empty(1024, dtype=np.int64)
            self._weight_data = np.empty(1024, dtype=np.float64)
            self._edge_data = np.empty((2, 2048), dtype=np.int64)
            self._known_keys = np.zeros(0, dtype=np.int64)
            self._known_slots = np.zeros(0, dtype=np.int64)
