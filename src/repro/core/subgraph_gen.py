"""Sub-Graph Generation (§IV-C).

Each GPS point p becomes a weighted directed sub-graph of the road network:
the segments within δ meters of p, the network edges among them, and
per-segment influence weights ω(e, p) = exp(-dist²(e, p)/γ²) (Eq. 5).

For batched processing the sub-graphs of all points of all trajectories in
a mini-batch are flattened into one disjoint union: a single node array
with ``graph_ids`` marking which (trajectory, timestep) each node belongs
to.  GNN layers and pooling then run once over the union.

Sub-graph structure depends only on the (static) input trajectories, so
:class:`SubGraphGenerator` memoizes per-point results keyed on quantized
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.distance import gaussian_weight
from ..roadnet.network import RoadNetwork
from .config import RNTrajRecConfig


@dataclass
class PointSubGraph:
    """Sub-graph of a single GPS point (segment ids, local edges, weights)."""

    segments: np.ndarray      # (v,) road segment ids
    edges: np.ndarray         # (2, e) indices local to ``segments``
    weights: np.ndarray       # (v,) influence weights ω(e, p)


@dataclass
class SubGraphBatch:
    """Disjoint union of the sub-graphs of a (batch, length) point grid."""

    node_segments: np.ndarray  # (total_nodes,) road segment ids
    node_weights: np.ndarray   # (total_nodes,) Eq. 5 weights
    graph_ids: np.ndarray      # (total_nodes,) flat (b * l) graph index
    edge_index: np.ndarray     # (2, total_edges) into the flat node array
    batch_size: int
    length: int

    @property
    def num_graphs(self) -> int:
        return self.batch_size * self.length

    @property
    def num_nodes(self) -> int:
        return len(self.node_segments)


class SubGraphGenerator:
    """Builds :class:`PointSubGraph`/:class:`SubGraphBatch` objects."""

    def __init__(self, network: RoadNetwork, config: RNTrajRecConfig) -> None:
        self.network = network
        self.config = config
        self._cache: Dict[Tuple[int, int], PointSubGraph] = {}
        # Per-segment local adjacency is rebuilt per sub-graph from the
        # network's neighbor lists; set lookups keep this O(v + e).

    # ------------------------------------------------------------------
    def point_subgraph(self, x: float, y: float) -> PointSubGraph:
        """The weighted sub-graph around one GPS point (cached)."""
        key = (int(round(x)), int(round(y)))  # 1 m quantization
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        cfg = self.config
        hits = self.network.segments_within(x, y, cfg.receptive_delta)
        if not hits:
            sid, dist, _ = self.network.nearest_segment(x, y)
            hits = [(sid, dist)]
        hits = hits[: cfg.max_subgraph_nodes]

        segments = np.asarray([sid for sid, _ in hits], dtype=np.int64)
        distances = np.asarray([d for _, d in hits], dtype=np.float64)
        weights = np.maximum(gaussian_weight(distances, cfg.influence_gamma), 1e-8)

        local = {int(sid): i for i, sid in enumerate(segments)}
        edge_src: List[int] = []
        edge_dst: List[int] = []
        for sid, i in local.items():
            for neighbor in self.network.out_neighbors[sid]:
                j = local.get(int(neighbor))
                if j is not None:
                    edge_src.append(i)
                    edge_dst.append(j)
        # Self-loops keep every node reachable by its own message.
        for i in range(len(segments)):
            edge_src.append(i)
            edge_dst.append(i)

        result = PointSubGraph(
            segments=segments,
            edges=np.asarray([edge_src, edge_dst], dtype=np.int64),
            weights=weights,
        )
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    def batch(self, xy: np.ndarray) -> SubGraphBatch:
        """Flatten sub-graphs of an (b, l, 2) point array into one union."""
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 3 or xy.shape[2] != 2:
            raise ValueError(f"expected (batch, length, 2) points, got {xy.shape}")
        b, l = xy.shape[0], xy.shape[1]

        node_segments: List[np.ndarray] = []
        node_weights: List[np.ndarray] = []
        graph_ids: List[np.ndarray] = []
        edge_blocks: List[np.ndarray] = []
        offset = 0
        for gid, (px, py) in enumerate(xy.reshape(-1, 2)):
            sub = self.point_subgraph(float(px), float(py))
            v = len(sub.segments)
            node_segments.append(sub.segments)
            node_weights.append(sub.weights)
            graph_ids.append(np.full(v, gid, dtype=np.int64))
            edge_blocks.append(sub.edges + offset)
            offset += v

        return SubGraphBatch(
            node_segments=np.concatenate(node_segments),
            node_weights=np.concatenate(node_weights),
            graph_ids=np.concatenate(graph_ids),
            edge_index=np.concatenate(edge_blocks, axis=1),
            batch_size=b,
            length=l,
        )

    def clear_cache(self) -> None:
        self._cache.clear()
