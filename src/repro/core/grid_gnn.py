"""GridGNN — grid-partitioned road network representation (§IV-B).

Every road segment is described two ways at once:

1. the sequence of 50 m grid cells its geometry passes through, encoded by
   a GRU over grid-cell embeddings (Eq. 1), added to a per-segment ID
   embedding (Eq. 2);
2. M stacked GAT layers over the segment connectivity graph (Eqs. 3-4).

The result is concatenated with the 11 static features f_r and projected
to ``hidden_dim`` (the final X_road).  Alternative encoders (plain
GCN/GIN/GAT over ID embeddings) implement the Fig. 7(a) comparison.
"""

from __future__ import annotations

import numpy as np

from .. import nn, profile
from ..nn.tensor import Tensor
from ..geo.grid import Grid
from ..roadnet.network import RoadNetwork
from .config import RNTrajRecConfig


class GridGNN(nn.Module):
    """Road network encoder producing X_road ∈ R^{|V| × d}."""

    def __init__(self, network: RoadNetwork, grid: Grid, config: RNTrajRecConfig) -> None:
        super().__init__()
        self.network = network
        self.grid = grid
        self.config = config
        d = config.hidden_dim

        # Grid sequences are a static property of the geometry; the network
        # memoizes the padded (V, max_len) index matrix + validity mask so
        # every encoder over the same network+grid shares one pair (and
        # artifact-backed networks preload it without walking polylines).
        self._grid_seq, self._grid_mask = network.grid_sequences(grid)
        self._max_len = self._grid_seq.shape[1]
        num_segments = network.num_segments

        self.grid_embedding = nn.Embedding(grid.num_cells, d)
        self.road_embedding = nn.Embedding(num_segments, d)
        self.grid_gru = nn.GRUCell(d, d)
        self.gat_layers = nn.ModuleList(
            nn.GATLayer(d, d, num_heads=config.num_heads)
            for _ in range(config.num_road_gat_layers)
        )
        static = network.static_features()
        self._static = static
        self.fuse = nn.Linear(d + static.shape[1], d)

        # Self-loops keep isolated segments differentiable through GAT.
        # The looped index is memoized on the network and shared.
        self._edge_index = network.edge_index_loops()

    def grid_sequence(self, segment_id: int) -> np.ndarray:
        """The (unpadded) grid-cell index sequence of one segment."""
        length = int(self._grid_mask[segment_id].sum())
        return self._grid_seq[segment_id, :length]

    def forward(self) -> Tensor:
        """Compute X_road for the whole network in one pass."""
        d = self.config.hidden_dim
        num_segments = self.network.num_segments

        # --- Grid-sequence GRU (Eq. 1), batched over all segments -------
        with profile.section("road.grid_gru"):
            state = Tensor(np.zeros((num_segments, d)))
            for step in range(self._max_len):
                cell_embed = self.grid_embedding(self._grid_seq[:, step])
                candidate = self.grid_gru(cell_embed, state)
                # Only advance segments whose sequence is still running.
                mask = self._grid_mask[:, step][:, None]
                state = candidate * Tensor(mask) + state * Tensor(1.0 - mask)

        # --- Eq. 2: add the segment ID embedding ------------------------
        identity = self.road_embedding(np.arange(num_segments))
        hidden = (state + identity).relu()

        # --- Eqs. 3-4: M GAT layers over the connectivity graph ---------
        with profile.section("road.gat"):
            for layer in self.gat_layers:
                hidden = layer(hidden, self._edge_index)

        # --- Static feature fusion --------------------------------------
        combined = nn.concat([hidden, Tensor(self._static)], axis=-1)
        return self.fuse(combined)


class PlainRoadEncoder(nn.Module):
    """Fig. 7(a) alternatives: GCN / GIN / GAT over ID embeddings only."""

    def __init__(self, network: RoadNetwork, config: RNTrajRecConfig, kind: str) -> None:
        super().__init__()
        d = config.hidden_dim
        self.network = network
        self.road_embedding = nn.Embedding(network.num_segments, d)
        self.stack = nn.GraphStack(kind, d, config.num_road_gat_layers, num_heads=config.num_heads)
        static = network.static_features()
        self._static = static
        self.fuse = nn.Linear(d + static.shape[1], d)
        self._edge_index = network.edge_index_loops()

    def forward(self) -> Tensor:
        hidden = self.road_embedding(np.arange(self.network.num_segments))
        hidden = self.stack(hidden, self._edge_index)
        combined = nn.concat([hidden, Tensor(self._static)], axis=-1)
        return self.fuse(combined)


def build_road_encoder(network: RoadNetwork, grid: Grid, config: RNTrajRecConfig) -> nn.Module:
    """Factory keyed on ``config.road_encoder``."""
    kind = config.road_encoder.lower()
    if kind == "gridgnn":
        return GridGNN(network, grid, config)
    return PlainRoadEncoder(network, config, kind)
